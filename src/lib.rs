//! # cej — Optimizing Context-Enhanced Relational Joins
//!
//! Umbrella crate for the reproduction of *"Optimizing Context-Enhanced
//! Relational Joins"* (ICDE 2024).  It re-exports every substrate crate under
//! one roof and anchors the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! The substrates, bottom-up:
//!
//! * [`exec`] — the shared worker-pool execution layer (`CEJ_THREADS`).
//! * [`vector`] — dense vectors, kernels, tiled GEMM, top-k, partitioning.
//! * [`storage`] — columnar tables, schemas, selection bitmaps.
//! * [`embedding`] — FastText-style model, tokenizer, counting cache.
//! * [`index`] — from-scratch HNSW with probe statistics.
//! * [`relational`] — the extended algebra `E_µ`, optimizer, model registry.
//! * [`core`] — the join operators, cost model, access paths, physical
//!   planner/executor (EXPLAIN, prepared queries, persistent indexes), and
//!   the session API.
//! * [`workload`] — deterministic synthetic data generators.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use cej_core as core;
pub use cej_embedding as embedding;
pub use cej_exec as exec;
pub use cej_index as index;
pub use cej_relational as relational;
pub use cej_server as server;
pub use cej_storage as storage;
pub use cej_vector as vector;
pub use cej_workload as workload;
