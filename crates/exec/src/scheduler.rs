//! The persistent work-stealing scheduler behind [`crate::ExecPool`].
//!
//! Until PR 5 the pool spawned scoped threads per parallel call (~tens of
//! µs per call).  That is fine for a handful of coarse-grained operators,
//! but a server issuing many small joins pays the spawn cost on every
//! operator of every query.  [`Scheduler`] replaces it with the classic
//! work-stealing architecture:
//!
//! * **Long-lived workers**, spawned lazily up to the largest thread budget
//!   any [`crate::ExecPool`] has requested.  An idle worker parks on its
//!   *own* condvar and registers on an idle stack; a submitter pops one
//!   parked worker per queued token and notifies exactly that worker, so
//!   a submission never stampedes the whole pool awake (no thundering
//!   herd), and each wakeup is counted in [`PoolMetrics::wakeups`].
//! * **An injector queue** for cross-thread submission: a non-worker thread
//!   (the main thread, a server connection handler) pushes participation
//!   tokens there.
//! * **Per-worker deques**: a worker that submits a nested parallel call
//!   pushes its tokens onto its *own* deque (cheap, contention-free), where
//!   siblings can steal them.
//! * **Steal-from-random-victim**: an idle worker first drains its own
//!   deque (LIFO), then the injector (FIFO), then sweeps the other workers'
//!   deques starting from a randomised victim, stealing from the front
//!   (FIFO — the oldest, usually largest, unit of work).
//!
//! ## Batches and tokens
//!
//! A parallel call is represented by one heap-allocated [`BatchCore`]: the
//! task closure (type-erased; it may borrow the caller's stack, which is
//! why the scheduler never outlives a call's tokens unsafely — see below),
//! a shared claim counter, and completion state.  What flows through the
//! queues are **participation tokens** (`Arc<BatchCore>` clones): a worker
//! that pops one simply joins the batch and claims task indices from the
//! shared counter until the batch is drained.  The submitting thread always
//! participates too, so *every* batch completes even with zero workers
//! (`CEJ_THREADS=1`) and nested parallel calls from worker threads can
//! never deadlock: the nested caller drives its own batch to completion.
//!
//! ## Why the borrowed closure is safe
//!
//! The closure pointer inside a [`BatchCore`] dangles once the submitting
//! call returns, but a token only dereferences it after (a) registering in
//! `in_flight` and (b) claiming an index `< tasks` from the monotone
//! counter.  The submitter returns only once `in_flight == 0` **and** the
//! counter is exhausted (or the batch is poisoned) — after which any late
//! token observes an exhausted counter (or the poison flag) and exits
//! without touching the closure.  The `BatchCore` itself is reference
//! counted, so late tokens never touch freed memory at all.
//!
//! ## Determinism
//!
//! The scheduler executes exactly the task indices the pool hands it and
//! the pool reassembles results by index, so every determinism guarantee of
//! [`crate::ExecPool`] (input-order maps, length-only reduce chunking) is
//! preserved no matter which thread runs which chunk.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock, Weak};
use std::time::Duration;

use crate::MAX_THREADS;

/// How long an idle worker sleeps before re-checking the queues even
/// without a wakeup — a belt-and-braces guard, not the primary wake path
/// (submissions notify one parked worker per token).
const IDLE_PARK: Duration = Duration::from_millis(50);

/// A snapshot (or delta) of the scheduler's activity counters.
///
/// Cumulative process-wide counters; per-run deltas are computed with
/// [`PoolMetrics::delta_since`] and surfaced by the query layer in its
/// execution reports, so `EXPLAIN ANALYZE` can show scheduler contention
/// next to cardinality q-errors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Task indices executed through the scheduler (by workers *and* by
    /// submitting threads participating in their own batches).
    pub tasks_executed: u64,
    /// Tokens taken from another worker's deque.
    pub steals: u64,
    /// Tokens submitted through the injector queue (i.e. from threads that
    /// are not scheduler workers).
    pub injected: u64,
    /// Targeted wakeups issued to parked workers (one notified worker per
    /// queued token, not a notify-all broadcast).
    pub wakeups: u64,
    /// Tokens currently queued (injector + all deques) at snapshot time.
    pub queue_depth: usize,
    /// Worker threads currently alive.
    pub workers: usize,
}

impl PoolMetrics {
    /// The counter deltas since `earlier`; `queue_depth` and `workers` keep
    /// this (later) snapshot's values.
    pub fn delta_since(&self, earlier: &PoolMetrics) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            steals: self.steals.saturating_sub(earlier.steals),
            injected: self.injected.saturating_sub(earlier.injected),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            queue_depth: self.queue_depth,
            workers: self.workers,
        }
    }
}

/// One parallel call: a type-erased borrowed closure plus claim/completion
/// state.  Tokens (`Arc<BatchCore>` clones) flow through the scheduler's
/// queues; see the module docs for the safety argument.
struct BatchCore {
    /// Monomorphised trampoline invoking the erased closure.
    run: unsafe fn(*const (), usize),
    /// The caller's closure, borrowed for the duration of the call.
    ctx: *const (),
    /// Total task indices in `0..tasks`.
    tasks: usize,
    /// Next unclaimed index (monotone).
    next: AtomicUsize,
    /// Participants currently registered (claiming or executing).
    in_flight: AtomicUsize,
    /// Set when any task panicked; stops further claims.
    poisoned: AtomicBool,
    /// First panic payload, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion latch the submitter waits on.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced under the claim protocol described in
// the module docs, while the submitting call (which owns the referent) is
// still blocked in `run_batch`; the remaining fields are ordinary sync
// primitives.
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

impl BatchCore {
    /// Joins the batch: claims and executes indices until the batch is
    /// drained or poisoned.  Returns how many indices this participant
    /// executed.
    fn participate(&self) -> u64 {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let mut executed = 0u64;
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                break;
            }
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.tasks {
                break;
            }
            // SAFETY: i < tasks and we are registered in `in_flight`, so the
            // submitter is still blocked and `ctx` is alive.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                (self.run)(self.ctx, i);
            }));
            executed += 1;
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                self.poisoned.store(true, Ordering::Release);
            }
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        // Wake the submitter; the empty critical section pairs with its
        // predicate re-check under the same lock, so no wakeup is lost.
        drop(self.done_lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.done_cv.notify_all();
        executed
    }

    /// `true` once no participant is registered and no further claim can
    /// dereference the closure.
    fn finished(&self) -> bool {
        self.in_flight.load(Ordering::Acquire) == 0
            && (self.poisoned.load(Ordering::Acquire)
                || self.next.load(Ordering::Acquire) >= self.tasks)
    }

    /// Blocks until [`BatchCore::finished`].
    fn wait(&self) {
        let mut guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while !self.finished() {
            let (g, _) = self
                .done_cv
                .wait_timeout(guard, IDLE_PARK)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

/// A queued participation token.
type Token = Arc<BatchCore>;

type DequeRef = Arc<Mutex<VecDeque<Token>>>;

/// One worker's private parking slot.  A worker with nothing to run parks
/// on its own condvar; a submitter wakes exactly one chosen thief via
/// [`Shared::notify_workers`] instead of broadcasting to every sleeper.
struct Parker {
    /// `true` once a submitter has targeted this worker — the condvar
    /// predicate, so a notify that lands before the wait starts is never
    /// lost.
    notified: Mutex<bool>,
    cv: Condvar,
}

/// State shared between the scheduler handle and its workers.
struct Shared {
    injector: Mutex<VecDeque<Token>>,
    deques: RwLock<Vec<DequeRef>>,
    /// Per-worker parking slots, index-aligned with `deques`.
    parkers: RwLock<Vec<Arc<Parker>>>,
    /// Indices of currently-parked workers, LIFO: the most recently parked
    /// worker (warmest cache) is woken first.
    idle: Mutex<Vec<usize>>,
    /// Lock-free mirror of the worker count (the `handles` vector length),
    /// so the per-parallel-call fast paths (`workers()`, the
    /// `ensure_workers` no-growth check) never touch the handles mutex.
    worker_count: AtomicUsize,
    /// Tokens pushed but not yet popped, across injector and deques; the
    /// lock-free `queue_depth` reading and the workers' sleep predicate.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
    injected: AtomicU64,
    wakeups: AtomicU64,
}

impl Shared {
    fn new() -> Self {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: RwLock::new(Vec::new()),
            parkers: RwLock::new(Vec::new()),
            idle: Mutex::new(Vec::new()),
            worker_count: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            tasks_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Wakes up to `count` parked workers, one targeted notify each.
    ///
    /// The idle lock is released *before* the popped worker's parker lock
    /// is taken, while a parking worker acquires them in the opposite
    /// nesting (parker, then idle) — since this side never holds both at
    /// once there is no lock-order cycle.  A worker that is between
    /// "pushed onto the idle stack" and "waiting on its condvar" re-checks
    /// `pending` under its parker lock (and `pending` is incremented
    /// before this is called), so the wakeup cannot be lost.
    fn notify_workers(&self, count: usize) {
        for _ in 0..count {
            let idx = {
                let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
                match idle.pop() {
                    Some(idx) => idx,
                    // Nobody is parked: every worker is already awake and
                    // sweeping the queues, so the token will be found.
                    None => return,
                }
            };
            let parker = {
                let parkers = self.parkers.read().unwrap_or_else(|e| e.into_inner());
                parkers[idx].clone()
            };
            let mut notified = parker.notified.lock().unwrap_or_else(|e| e.into_inner());
            *notified = true;
            drop(notified);
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            parker.cv.notify_one();
        }
    }

    /// Removes `idx` from the idle stack unless a submitter already popped
    /// (claimed) it.
    fn deregister_idle(&self, idx: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = idle.iter().rposition(|&i| i == idx) {
            idle.swap_remove(pos);
        }
    }

    /// Pops a token for worker `idx`: own deque (LIFO) → injector (FIFO) →
    /// steal from a pseudo-randomly chosen victim's deque front.
    fn find_token(&self, idx: usize, rng: &mut u64) -> Option<Token> {
        let deques = self.deques.read().unwrap_or_else(|e| e.into_inner());
        if let Some(own) = deques.get(idx) {
            if let Some(token) = own.lock().unwrap_or_else(|e| e.into_inner()).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(token);
            }
        }
        if let Some(token) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(token);
        }
        let n = deques.len();
        if n > 1 {
            // xorshift64* — cheap per-worker victim randomisation.
            *rng ^= *rng << 13;
            *rng ^= *rng >> 7;
            *rng ^= *rng << 17;
            let start = (*rng as usize) % n;
            for off in 0..n {
                let victim = (start + off) % n;
                if victim == idx {
                    continue;
                }
                if let Some(token) = deques[victim]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front()
                {
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(token);
                }
            }
        }
        None
    }
}

thread_local! {
    /// Identifies the current thread as worker `index` of a scheduler, so
    /// nested submissions go to its own deque instead of the injector.
    static WORKER: RefCell<Option<(Weak<Shared>, usize)>> = const { RefCell::new(None) };
}

fn worker_main(shared: Arc<Shared>, idx: usize) {
    WORKER.with(|slot| *slot.borrow_mut() = Some((Arc::downgrade(&shared), idx)));
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((idx as u64 + 1) << 17);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(token) = shared.find_token(idx, &mut rng) {
            if shared.pending.load(Ordering::Acquire) > 0 {
                // Chain wake: more tokens remain, so recruit one more
                // thief before starting work — wakeups propagate one hop
                // per token instead of the submitter broadcasting.
                shared.notify_workers(1);
            }
            let executed = token.participate();
            shared.tasks_executed.fetch_add(executed, Ordering::Relaxed);
            continue;
        }
        // Park on this worker's own slot: arm the predicate, register on
        // the idle stack, then re-check the sleep condition under the
        // parker lock.  A submitter increments `pending` before popping
        // the stack, so a concurrently queued token is either observed by
        // the re-check or delivers a targeted notify once this lock is
        // released by the wait.
        let parker = {
            let parkers = shared.parkers.read().unwrap_or_else(|e| e.into_inner());
            parkers[idx].clone()
        };
        let mut notified = parker.notified.lock().unwrap_or_else(|e| e.into_inner());
        *notified = false;
        shared
            .idle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(idx);
        if shared.shutdown.load(Ordering::Acquire) || shared.pending.load(Ordering::Acquire) > 0 {
            drop(notified);
            shared.deregister_idle(idx);
            continue;
        }
        // Timed park: the timeout only guards against implementation bugs
        // ever stranding a worker; the targeted notify is the wake path.
        while !*notified {
            let (guard, timeout) = parker
                .cv
                .wait_timeout(notified, IDLE_PARK)
                .unwrap_or_else(|e| e.into_inner());
            notified = guard;
            if timeout.timed_out() {
                break;
            }
        }
        drop(notified);
        shared.deregister_idle(idx);
    }
}

/// The persistent work-stealing scheduler: long-lived workers, per-worker
/// deques, an injector for cross-thread submission, and graceful shutdown.
///
/// All [`crate::ExecPool`]s share [`Scheduler::global`]; constructing a
/// dedicated instance is mainly useful for tests and for embedding the
/// execution layer into another runtime.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics();
        f.debug_struct("Scheduler")
            .field("workers", &m.workers)
            .field("tasks_executed", &m.tasks_executed)
            .field("steals", &m.steals)
            .field("injected", &m.injected)
            .field("wakeups", &m.wakeups)
            .field("queue_depth", &m.queue_depth)
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler with `workers` worker threads (clamped to
    /// `MAX_THREADS`).  Workers spawn immediately; [`Scheduler::global`]
    /// instead grows lazily with demand.
    pub fn new(workers: usize) -> Self {
        let scheduler = Scheduler {
            shared: Arc::new(Shared::new()),
            handles: Mutex::new(Vec::new()),
        };
        scheduler.ensure_workers(workers);
        scheduler
    }

    /// The process-wide scheduler every [`crate::ExecPool`] submits to.
    /// Never shut down; its workers are reclaimed by process exit.
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler {
            shared: Arc::new(Shared::new()),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Grows the worker set to at least `target` threads (never shrinks;
    /// capped at [`MAX_THREADS`]).  Pools call this with `threads - 1`
    /// before submitting, so worker count tracks the largest budget in use.
    pub fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS);
        // lock-free fast path: the common case is "already big enough"
        if self.shared.worker_count.load(Ordering::Acquire) >= target {
            return;
        }
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        while handles.len() < target {
            let idx = handles.len();
            {
                let mut deques = self
                    .shared
                    .deques
                    .write()
                    .unwrap_or_else(|e| e.into_inner());
                debug_assert_eq!(deques.len(), idx);
                deques.push(Arc::new(Mutex::new(VecDeque::new())));
            }
            {
                let mut parkers = self
                    .shared
                    .parkers
                    .write()
                    .unwrap_or_else(|e| e.into_inner());
                debug_assert_eq!(parkers.len(), idx);
                parkers.push(Arc::new(Parker {
                    notified: Mutex::new(false),
                    cv: Condvar::new(),
                }));
            }
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cej-exec-{idx}"))
                .spawn(move || worker_main(shared, idx))
                .expect("spawning a scheduler worker");
            handles.push(handle);
        }
    }

    /// Worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.handles.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// A snapshot of the activity counters and queue depth.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            injected: self.shared.injected.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            queue_depth: self.shared.pending.load(Ordering::Acquire),
            workers: self.workers(),
        }
    }

    /// Runs `f(i)` for every `i in 0..tasks` with up to `helpers` scheduler
    /// workers participating alongside the calling thread.  Blocks until
    /// every task finished; re-raises the first task panic.
    ///
    /// This is the primitive [`crate::ExecPool`] builds its `parallel_*`
    /// API on; `f` may borrow the caller's stack.
    pub(crate) fn run_batch<F>(&self, tasks: usize, helpers: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), i: usize) {
            (*(ctx as *const F))(i);
        }
        let core: Token = Arc::new(BatchCore {
            run: trampoline::<F>,
            ctx: f as *const F as *const (),
            tasks,
            next: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        // Tokens beyond the worker count (or the task count) could never be
        // claimed usefully; with zero workers none are queued and the
        // caller simply runs the batch inline.
        let tokens = helpers.min(self.workers()).min(tasks.saturating_sub(1));
        if tokens > 0 {
            self.submit(&core, tokens);
        }

        let executed = core.participate();
        self.shared
            .tasks_executed
            .fetch_add(executed, Ordering::Relaxed);
        core.wait();

        let payload = core.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Queues `tokens` participation tokens for `core`: onto the current
    /// worker's own deque when called from one of this scheduler's workers,
    /// onto the injector otherwise.
    fn submit(&self, core: &Token, tokens: usize) {
        let own_deque = WORKER.with(|slot| {
            slot.borrow().as_ref().and_then(|(shared, idx)| {
                let shared = shared.upgrade()?;
                if Arc::ptr_eq(&shared, &self.shared) {
                    Some(*idx)
                } else {
                    None
                }
            })
        });
        match own_deque {
            Some(idx) => {
                let deques = self.shared.deques.read().unwrap_or_else(|e| e.into_inner());
                let mut deque = deques[idx].lock().unwrap_or_else(|e| e.into_inner());
                for _ in 0..tokens {
                    deque.push_back(core.clone());
                }
            }
            None => {
                let mut injector = self
                    .shared
                    .injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                for _ in 0..tokens {
                    injector.push_back(core.clone());
                }
                self.shared
                    .injected
                    .fetch_add(tokens as u64, Ordering::Relaxed);
            }
        }
        self.shared.pending.fetch_add(tokens, Ordering::AcqRel);
        self.shared.notify_workers(tokens);
    }

    /// Graceful shutdown: stops the workers after their current token and
    /// joins them.  Queued tokens of still-blocked submitters are not lost —
    /// the submitting threads themselves drain their batches.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Shutdown is the one broadcast: every parker is notified directly
        // (bypassing the idle stack) so no worker sleeps out its timeout.
        {
            let parkers = self
                .shared
                .parkers
                .read()
                .unwrap_or_else(|e| e.into_inner());
            for parker in parkers.iter() {
                let mut notified = parker.notified.lock().unwrap_or_else(|e| e.into_inner());
                *notified = true;
                drop(notified);
                parker.cv.notify_one();
            }
        }
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
        self.shared.worker_count.store(0, Ordering::Release);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    /// Spins until `predicate` holds, failing the test after `secs`.
    fn wait_until(secs: u64, what: &str, predicate: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while !predicate() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            // yield, not spin: these rendezvous involve more threads than a
            // small CI machine has cores
            std::thread::yield_now();
        }
    }

    #[test]
    fn run_batch_executes_every_index_with_workers() {
        let scheduler = Scheduler::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        scheduler.run_batch(100, 3, &|i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let metrics = scheduler.metrics();
        assert_eq!(metrics.tasks_executed, 100);
        assert_eq!(metrics.workers, 3);
        // Tokens of a drained batch may briefly linger queued; workers must
        // retire them as harmless no-ops.
        wait_until(10, "leftover tokens to drain", || {
            scheduler.metrics().queue_depth == 0
        });
        scheduler.shutdown();
    }

    #[test]
    fn zero_workers_runs_inline() {
        let scheduler = Scheduler::new(0);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        scheduler.run_batch(5, 4, &|i: usize| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(scheduler.metrics().injected, 0);
    }

    #[test]
    fn external_submission_goes_through_the_injector() {
        let scheduler = Scheduler::new(2);
        scheduler.run_batch(50, 2, &|_i: usize| {
            std::thread::sleep(Duration::from_micros(200));
        });
        let metrics = scheduler.metrics();
        assert!(
            metrics.injected >= 1,
            "external submissions must flow through the injector: {metrics:?}"
        );
        scheduler.shutdown();
    }

    #[test]
    fn nested_submission_from_a_worker_is_stolen_by_a_sibling() {
        // Outer batch: two rendezvous tasks, so exactly one of {main thread,
        // worker A} runs each.  The participant on the *worker* thread then
        // submits a nested two-task rendezvous batch: its token lands on
        // that worker's own deque, the worker claims inner task 0 and blocks
        // until inner task 1 runs — which only the *other* worker, by
        // stealing the token from the sibling deque, can do.  Completion
        // therefore proves the own-deque + steal-from-victim path end to
        // end; timeouts turn a broken steal path into a test failure.
        let scheduler = Scheduler::new(2);
        let outer_arrived = AtomicUsize::new(0);
        let inner_done = AtomicBool::new(false);
        scheduler.run_batch(2, 2, &|_outer: usize| {
            outer_arrived.fetch_add(1, Ordering::SeqCst);
            wait_until(10, "both outer participants", || {
                outer_arrived.load(Ordering::SeqCst) >= 2
            });
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("cej-exec-"));
            if on_worker {
                let inner_arrived = AtomicUsize::new(0);
                scheduler.run_batch(2, 1, &|_inner: usize| {
                    inner_arrived.fetch_add(1, Ordering::SeqCst);
                    wait_until(10, "the stolen inner task", || {
                        inner_arrived.load(Ordering::SeqCst) >= 2
                    });
                });
                inner_done.store(true, Ordering::SeqCst);
            } else {
                wait_until(10, "the worker-side nested batch", || {
                    inner_done.load(Ordering::SeqCst)
                });
            }
        });
        assert!(inner_done.load(Ordering::SeqCst));
        assert!(
            scheduler.metrics().steals >= 1,
            "the nested token must have been stolen: {:?}",
            scheduler.metrics()
        );
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_joins_workers_and_is_idempotent() {
        let scheduler = Scheduler::new(4);
        assert_eq!(scheduler.workers(), 4);
        scheduler.run_batch(16, 4, &|_i: usize| {});
        scheduler.shutdown();
        assert_eq!(scheduler.workers(), 0);
        scheduler.shutdown(); // second call is a no-op
    }

    #[test]
    fn metrics_delta() {
        let a = PoolMetrics {
            tasks_executed: 10,
            steals: 2,
            injected: 4,
            wakeups: 3,
            queue_depth: 7,
            workers: 2,
        };
        let b = PoolMetrics {
            tasks_executed: 25,
            steals: 3,
            injected: 9,
            wakeups: 8,
            queue_depth: 1,
            workers: 3,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.tasks_executed, 15);
        assert_eq!(d.steals, 1);
        assert_eq!(d.injected, 5);
        assert_eq!(d.wakeups, 5);
        assert_eq!(d.queue_depth, 1);
        assert_eq!(d.workers, 3);
    }

    #[test]
    fn parked_workers_are_woken_individually() {
        let scheduler = Scheduler::new(2);
        // Both workers park once their initial queue sweep comes up empty.
        wait_until(10, "both workers to park", || {
            scheduler
                .shared
                .idle
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
                == 2
        });
        // A worker deregisters transiently around its park timeout, so a
        // single submission could race past an empty idle stack; batches
        // are cheap, so retry until a targeted wakeup is observed.
        wait_until(10, "a targeted wakeup", || {
            let hits = AtomicUsize::new(0);
            scheduler.run_batch(8, 2, &|_i: usize| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 8);
            scheduler.metrics().wakeups >= 1
        });
        scheduler.shutdown();
    }
}
