//! # cej-exec
//!
//! The shared worker-pool execution layer of the workspace.
//!
//! Every data-parallel operator in the tree (the pair-wise NLJ, the blocked
//! GEMM of the tensor join, batched embedding, parallel HNSW construction)
//! used to hand-roll its own `std::thread::scope` row partitioning.  This
//! crate centralises that threading model behind one [`ExecPool`] with three
//! primitives — [`ExecPool::parallel_chunks`], [`ExecPool::parallel_map`],
//! and [`ExecPool::parallel_reduce`] — plus [`ExecPool::parallel_fill`] for
//! kernels that write pre-allocated output buffers in place.
//!
//! ## Scheduling model
//!
//! A pool owns a thread *budget*, not threads.  All pools submit to the
//! process-wide persistent [`Scheduler`] (see [`scheduler`]): long-lived
//! workers with per-worker deques, steal-from-random-victim, and an
//! injector queue for submissions from non-worker threads — so a server
//! issuing many small parallel operators pays queue pushes, not thread
//! spawns.  Work is split into chunks and participants *claim* chunks
//! dynamically from a shared atomic counter, but results are always
//! reassembled **in input order**, so callers observe the same output for
//! any thread count.  The calling thread always participates in its own
//! batch (closures may borrow the caller's stack, and a batch completes
//! even with zero workers); a pool's budget caps how many scheduler
//! workers join it.
//!
//! ## Determinism guarantees
//!
//! * `parallel_map` returns results in input order, bit-identical to the
//!   serial loop, for every thread count.
//! * `parallel_chunks` returns per-chunk results in ascending range order;
//!   concatenating them reproduces the serial left-to-right traversal.
//! * `parallel_reduce` partitions by a **length-only** rule (the thread
//!   count never influences chunk boundaries), so even non-associative
//!   reductions (e.g. float sums) are identical under `CEJ_THREADS=1` and
//!   `CEJ_THREADS=N`.
//! * A panic in any closure is propagated to the caller with its original
//!   payload once all workers have stopped; remaining unclaimed chunks are
//!   abandoned.
//!
//! ## Configuration
//!
//! [`ExecPool::global`] reads the `CEJ_THREADS` environment variable once
//! (defaulting to the machine's available parallelism); operators with their
//! own `threads` knob build a local pool via [`ExecPool::new`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod scheduler;

pub use scheduler::{PoolMetrics, Scheduler};

use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// Upper bound on worker threads, a guard against absurd `CEJ_THREADS`
/// values rather than a tuning parameter.
pub const MAX_THREADS: usize = 256;

/// Number of chunks handed out per worker thread: more chunks than workers
/// gives the dynamic scheduler room to balance uneven work.
const CHUNKS_PER_THREAD: usize = 4;

/// Chunk count used by [`ExecPool::parallel_reduce`]; a function of nothing
/// but this constant and the input length, so reduction order is independent
/// of the thread count.
const REDUCE_CHUNKS: usize = 64;

/// Parses a `CEJ_THREADS`-style value. `None` for unset, empty, unparsable,
/// or zero values (zero means "pick for me", like the unset default).
pub fn threads_from_env(value: Option<&str>) -> Option<usize> {
    let parsed: usize = value?.trim().parse().ok()?;
    if parsed == 0 {
        None
    } else {
        Some(parsed.min(MAX_THREADS))
    }
}

/// The process-wide default worker count: `CEJ_THREADS` when set, otherwise
/// the machine's available parallelism.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        threads_from_env(std::env::var("CEJ_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_THREADS)
        })
    })
}

/// A worker pool with a fixed thread budget.
///
/// Creating a pool is free — a pool is only a *budget* over the shared
/// persistent [`Scheduler`], so it can live in a config struct or be built
/// on the fly from an operator's `threads` knob.  A parallel call runs on
/// the calling thread plus up to `threads - 1` scheduler workers; nothing
/// is spawned per call and nothing keeps running between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

impl Default for ExecPool {
    fn default() -> Self {
        Self::new(default_threads())
    }
}

impl ExecPool {
    /// Creates a pool with the given thread budget (clamped to
    /// `1..=MAX_THREADS`).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The process-wide pool configured by `CEJ_THREADS`.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecPool::new(default_threads()))
    }

    /// The pool's thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..len` into at most `chunks` contiguous ranges of
    /// near-equal size, in ascending order.
    fn partition(len: usize, chunks: usize) -> Vec<Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let chunks = chunks.clamp(1, len);
        let base = len / chunks;
        let extra = len % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for i in 0..chunks {
            let size = base + usize::from(i < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }

    /// Runs `task(i)` for every `i in 0..tasks`, returning results in task
    /// order.  Participants (the calling thread plus up to `threads - 1`
    /// persistent scheduler workers) claim task indices from a shared
    /// counter; a panic in any task poisons the batch (siblings stop
    /// claiming) and is re-raised with its original payload once every
    /// in-flight task has stopped.
    fn run_indexed<R, F>(&self, tasks: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || tasks == 1 {
            // Budget-1 pools run inline on the calling thread, exactly like
            // the serial loop.
            return (0..tasks).map(task).collect();
        }

        /// Per-index result slots.  Each index is claimed exactly once, so
        /// every cell is written by exactly one participant; the scheduler's
        /// completion latch orders the writes before the collection below.
        struct Slots<R>(Vec<UnsafeCell<Option<R>>>);
        // SAFETY: disjoint per-index writes, ordered by the batch latch.
        unsafe impl<R: Send> Sync for Slots<R> {}

        let slots: Slots<R> = Slots((0..tasks).map(|_| UnsafeCell::new(None)).collect());
        // capture the Sync wrapper itself, not the (non-Sync) inner Vec that
        // 2021-edition disjoint capture would otherwise pick
        let slots_ref = &slots;
        let write_slot = |i: usize| {
            let r = task(i);
            // SAFETY: `i` was claimed exactly once (see `Slots`).
            unsafe { *slots_ref.0[i].get() = Some(r) };
        };

        let scheduler = Scheduler::global();
        let helpers = (self.threads - 1).min(tasks - 1);
        scheduler.ensure_workers(helpers);
        scheduler.run_batch(tasks, helpers, &write_slot);

        slots
            .0
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every claimed task produced a result")
            })
            .collect()
    }

    /// A snapshot of the shared scheduler's activity counters (tasks
    /// executed, steals, injector submissions, queue depth, worker count).
    /// Execution layers snapshot this around a query and report the delta —
    /// the scheduler-contention side of `EXPLAIN ANALYZE`.
    pub fn metrics() -> PoolMetrics {
        Scheduler::global().metrics()
    }

    /// Runs `f` over contiguous chunks of `0..len`, returning the per-chunk
    /// results in ascending range order.
    ///
    /// Chunk *boundaries* are an implementation detail (they depend on the
    /// thread budget), but because chunks tile `0..len` left to right,
    /// flattening the returned vector reproduces the serial traversal order
    /// exactly.
    pub fn parallel_chunks<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = Self::partition(len, self.threads * CHUNKS_PER_THREAD);
        self.run_indexed(ranges.len(), |i| f(ranges[i].clone()))
    }

    /// Maps `f` over `items`, returning results in input order — bit-for-bit
    /// what the serial `items.iter().map(f).collect()` would produce.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for chunk in self.parallel_chunks(items.len(), |range| {
            range.map(|i| f(&items[i])).collect::<Vec<R>>()
        }) {
            out.extend(chunk);
        }
        out
    }

    /// Folds `items` into per-chunk accumulators and combines them in chunk
    /// order.
    ///
    /// The chunking depends only on `items.len()`, so the combination order
    /// — and therefore the result, even for non-associative operations like
    /// float addition — is identical for every thread budget.
    pub fn parallel_reduce<T, A, I, F, C>(&self, items: &[T], identity: I, fold: F, combine: C) -> A
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, &T) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let ranges = Self::partition(items.len(), REDUCE_CHUNKS);
        let partials = self.run_indexed(ranges.len(), |i| {
            items[ranges[i].clone()].iter().fold(identity(), &fold)
        });
        partials.into_iter().fold(identity(), combine)
    }

    /// Runs `f` over contiguous row-chunks of a pre-allocated output buffer:
    /// `out` is treated as `rows` rows of `stride` elements and split into
    /// disjoint row-aligned slices, each passed (with its row range) to `f`
    /// exactly once.
    ///
    /// This is the in-place primitive the blocked GEMM uses — no worker
    /// allocates, and the caller keeps full control of peak memory.
    ///
    /// # Panics
    /// Panics when `out.len() != rows * stride`.
    pub fn parallel_fill<T, F>(&self, out: &mut [T], rows: usize, stride: usize, f: F)
    where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        assert_eq!(
            out.len(),
            rows * stride,
            "output buffer must hold rows * stride elements"
        );
        let ranges = Self::partition(rows, self.threads * CHUNKS_PER_THREAD);
        let mut parts: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(ranges.len());
        let mut rest = out;
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * stride);
            parts.push(Mutex::new(Some(chunk)));
            rest = tail;
        }
        self.run_indexed(ranges.len(), |i| {
            let chunk = parts[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each output chunk is claimed exactly once");
            f(ranges[i].clone(), chunk);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn threads_from_env_parsing() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("abc")), None);
        assert_eq!(threads_from_env(Some("0")), None);
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 8 ")), Some(8));
        assert_eq!(threads_from_env(Some("100000")), Some(MAX_THREADS));
    }

    #[test]
    fn pool_clamps_thread_budget() {
        assert_eq!(ExecPool::new(0).threads(), 1);
        assert_eq!(ExecPool::new(3).threads(), 3);
        assert_eq!(ExecPool::new(usize::MAX).threads(), MAX_THREADS);
        assert!(ExecPool::global().threads() >= 1);
        assert!(ExecPool::default().threads() >= 1);
    }

    #[test]
    fn partition_tiles_the_range() {
        assert!(ExecPool::partition(0, 4).is_empty());
        assert_eq!(ExecPool::partition(1, 4), vec![0..1]);
        let ranges = ExecPool::partition(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = ExecPool::partition(4, 100);
        assert_eq!(ranges.len(), 4);
    }

    #[test]
    fn parallel_map_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let got = ExecPool::new(threads).parallel_map(&items, |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_empty_and_tiny_inputs() {
        let pool = ExecPool::new(8);
        assert_eq!(pool.parallel_map::<u32, u32, _>(&[], |x| *x), vec![]);
        assert_eq!(pool.parallel_map(&[7u32], |x| x + 1), vec![8]);
        assert_eq!(pool.parallel_map(&[1u32, 2], |x| x * 10), vec![10, 20]);
    }

    #[test]
    fn parallel_chunks_flatten_in_order() {
        let pool = ExecPool::new(4);
        let chunks = pool.parallel_chunks(100, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<usize>>());
        assert!(pool.parallel_chunks(0, |r| r.len()).is_empty());
    }

    #[test]
    fn parallel_reduce_is_thread_count_invariant_for_floats() {
        // Sums of many different magnitudes: the result depends on the
        // association order, so this only passes because chunk boundaries are
        // a function of the length alone.
        let items: Vec<f32> = (0..10_000)
            .map(|i| (i as f32 * 0.37).sin() * 10f32.powi(i % 7 - 3))
            .collect();
        let reduce = |threads: usize| {
            ExecPool::new(threads).parallel_reduce(&items, || 0.0f32, |a, x| a + x, |a, b| a + b)
        };
        let serial = reduce(1);
        for threads in [2, 5, 16] {
            assert_eq!(serial.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn parallel_reduce_empty_input_yields_identity() {
        let pool = ExecPool::new(4);
        let sum = pool.parallel_reduce(
            &[] as &[u32],
            || 100u64,
            |a, x| a + u64::from(*x),
            |a, b| a + b,
        );
        assert_eq!(sum, 100);
    }

    #[test]
    fn parallel_fill_writes_every_cell() {
        let rows = 37;
        let stride = 5;
        let mut out = vec![0u32; rows * stride];
        ExecPool::new(4).parallel_fill(&mut out, rows, stride, |range, chunk| {
            for (local_row, row) in range.clone().enumerate() {
                for col in 0..stride {
                    chunk[local_row * stride + col] = (row * stride + col) as u32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    #[should_panic(expected = "output buffer must hold rows * stride elements")]
    fn parallel_fill_rejects_mis_sized_buffers() {
        let mut out = vec![0u8; 7];
        ExecPool::new(2).parallel_fill(&mut out, 2, 4, |_, _| {});
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let pool = ExecPool::new(4);
        let items: Vec<usize> = (0..500).collect();
        let err = std::panic::catch_unwind(|| {
            pool.parallel_map(&items, |&i| {
                if i == 321 {
                    panic!("worker exploded on item {i}");
                }
                i
            })
        })
        .expect_err("the worker panic must propagate");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("worker exploded on item 321"),
            "payload lost: {message:?}"
        );
    }

    #[test]
    fn poisoning_stops_sibling_workers_early() {
        // After one chunk panics, the *other* worker must stop claiming
        // chunks.  The panicking chunk abandons its own remaining items
        // either way, so the discriminating bound is "well below one full
        // worker's share": with 2 workers x 4 chunks/worker over 500 items
        // (~62 items per chunk), a surviving worker that kept claiming
        // would process ~437 items; with poisoning it finishes at most its
        // current chunk plus one more claimed before the flag was set
        // (~125 items, plus the ~1 from the poisoned chunk).
        let processed = AtomicU64::new(0);
        let pool = ExecPool::new(2);
        let items: Vec<usize> = (0..500).collect();
        let result = std::panic::catch_unwind(|| {
            pool.parallel_map(&items, |&i| {
                processed.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("poison");
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
                i
            })
        });
        assert!(result.is_err());
        let count = processed.load(Ordering::Relaxed);
        assert!(
            count < 250,
            "poisoning failed to stop the surviving worker early ({count} items processed)"
        );
    }

    #[test]
    fn pool_metrics_and_persistent_workers() {
        let pool = ExecPool::new(2);
        let before = ExecPool::metrics();
        let items: Vec<u64> = (0..100).collect();
        let _ = pool.parallel_map(&items, |x| x + 1);
        let after = ExecPool::metrics();
        let delta = after.delta_since(&before);
        // other tests share the global scheduler, so deltas are lower bounds
        assert!(delta.tasks_executed >= 1);
        assert!(
            after.workers >= 1,
            "an explicit budget-2 pool grows a worker"
        );
        // The worker set never shrinks, and a repeat call with the same
        // budget needs no growth.  Concurrent tests share the global
        // scheduler and may grow it in between, so assert the no-shrink
        // invariant plus a bound tied to this pool's own demand rather
        // than strict equality (which would be a cross-test race).
        let workers_now = Scheduler::global().workers();
        let _ = pool.parallel_map(&items, |x| x + 1);
        assert!(
            Scheduler::global().workers() >= workers_now,
            "the persistent worker set must never shrink"
        );
        let pool_demand = pool.threads() - 1;
        assert!(
            workers_now >= pool_demand,
            "a budget-{} pool must have grown at least {pool_demand} worker(s)",
            pool.threads()
        );
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        // With a budget of 1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let ids = ExecPool::new(1).parallel_map(&[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }
}
