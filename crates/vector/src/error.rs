//! Error type for the vector substrate.

use std::fmt;

/// Errors raised by vector and matrix operations.
///
/// The substrate is deliberately strict about shape mismatches: a dimension
/// error in the join pipeline almost always indicates that two different
/// embedding models (or model versions) were mixed, which the paper treats as
/// a semantic error (embeddings are only comparable under the same model µ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorError {
    /// Two operands had incompatible dimensionality.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A matrix was constructed from data whose length is not a multiple of
    /// the declared row width.
    RaggedData {
        /// Number of values supplied.
        len: usize,
        /// Declared row width.
        width: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of available entries.
        len: usize,
    },
    /// An operation that requires a non-empty input received an empty one.
    Empty(&'static str),
    /// An invalid parameter was supplied (e.g. a zero tile size).
    InvalidParameter(String),
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            VectorError::RaggedData { len, width } => {
                write!(
                    f,
                    "ragged matrix data: {len} values is not a multiple of width {width}"
                )
            }
            VectorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            VectorError::Empty(what) => write!(f, "{what} must not be empty"),
            VectorError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for VectorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = VectorError::DimensionMismatch { left: 3, right: 4 };
        assert_eq!(err.to_string(), "dimension mismatch: 3 vs 4");
    }

    #[test]
    fn display_ragged() {
        let err = VectorError::RaggedData { len: 10, width: 3 };
        assert!(err.to_string().contains("ragged"));
    }

    #[test]
    fn display_out_of_bounds() {
        let err = VectorError::IndexOutOfBounds { index: 5, len: 2 };
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn display_empty_and_invalid() {
        assert!(VectorError::Empty("input").to_string().contains("input"));
        assert!(VectorError::InvalidParameter("tile=0".into())
            .to_string()
            .contains("tile=0"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<VectorError>();
    }
}
