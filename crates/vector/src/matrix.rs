//! Row-major dense matrix holding batches of embeddings.

use serde::{Deserialize, Serialize};

use crate::error::VectorError;
use crate::vector::Vector;
use crate::Result;

/// A dense, row-major `f32` matrix.
///
/// In the tensor join formulation (paper Section IV-C, Figure 6) both join
/// inputs are materialised as matrices with **one embedding per row**:
/// an `|R| × d` matrix for the outer relation and an `|S| × d` matrix for the
/// inner relation.  The similarity matrix is then computed block-wise as
/// `R · Sᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`VectorError::RaggedData`] when `data.len()` is not
    /// `rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(VectorError::RaggedData {
                len: data.len(),
                width: cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix whose rows are the given vectors.
    ///
    /// # Errors
    /// Returns [`VectorError::Empty`] for an empty input and
    /// [`VectorError::DimensionMismatch`] when rows disagree on dimension.
    pub fn from_rows(rows: &[Vector]) -> Result<Self> {
        let first = rows.first().ok_or(VectorError::Empty("matrix rows"))?;
        let cols = first.dim();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.dim() != cols {
                return Err(VectorError::DimensionMismatch {
                    left: cols,
                    right: row.dim(),
                });
            }
            data.extend_from_slice(row.as_slice());
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows (tuples / embeddings).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (embedding dimensionality).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrows the full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the full row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when `i >= rows`.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if i >= self.rows {
            return Err(VectorError::IndexOutOfBounds {
                index: i,
                len: self.rows,
            });
        }
        Ok(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Mutably borrows row `i`.
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f32]> {
        if i >= self.rows {
            return Err(VectorError::IndexOutOfBounds {
                index: i,
                len: self.rows,
            });
        }
        Ok(&mut self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Copies row `i` into an owned [`Vector`].
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when `i >= rows`.
    pub fn row_vector(&self, i: usize) -> Result<Vector> {
        Ok(Vector::new(self.row(i)?.to_vec()))
    }

    /// Returns a new matrix consisting of rows `[start, end)`.
    ///
    /// This is the tuple-boundary partitioning used for mini-batching
    /// (paper Section V-B): partitions are along tuples, never dimensions.
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when the range is invalid.
    pub fn row_slice(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(VectorError::IndexOutOfBounds {
                index: end,
                len: self.rows,
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Borrows rows `[start, end)` as a contiguous slice (no copy).
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when the range is invalid.
    pub fn rows_as_slice(&self, start: usize, end: usize) -> Result<&[f32]> {
        if start > end || end > self.rows {
            return Err(VectorError::IndexOutOfBounds {
                index: end,
                len: self.rows,
            });
        }
        Ok(&self.data[start * self.cols..end * self.cols])
    }

    /// Appends a row to the matrix.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] when the row width differs
    /// (an empty matrix adopts the width of its first row).
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(VectorError::DimensionMismatch {
                left: self.cols,
                right: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Transposes the matrix (returns a new matrix).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Gathers the rows named by a selection vector into a new compact
    /// matrix (one output row per selected lane, in lane order; repeats are
    /// allowed).
    ///
    /// This is the columnar compaction step of the vectorised executor: a
    /// batch's surviving lanes are materialised in one pass instead of
    /// row-at-a-time `push_row` calls.
    ///
    /// # Errors
    /// Returns [`VectorError::IndexOutOfBounds`] when a lane exceeds the row
    /// count.
    pub fn gather_rows(&self, sel: &[u32]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(sel.len() * self.cols);
        for &lane in sel {
            let row = lane as usize;
            if row >= self.rows {
                return Err(VectorError::IndexOutOfBounds {
                    index: row,
                    len: self.rows,
                });
            }
            data.extend_from_slice(&self.data[row * self.cols..(row + 1) * self.cols]);
        }
        Ok(Matrix {
            rows: sel.len(),
            cols: self.cols,
            data,
        })
    }

    /// Memory footprint of the value buffer, in bytes.
    ///
    /// Used by Figure 13's memory-requirement accounting.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Converts every row into an owned [`Vector`].
    pub fn to_vectors(&self) -> Vec<Vector> {
        (0..self.rows)
            .map(|i| Vector::new(self.data[i * self.cols..(i + 1) * self.cols].to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_flat(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(2, 5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.as_slice().len(), 10);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 5).is_empty());
    }

    #[test]
    fn from_flat_rejects_ragged() {
        assert!(matches!(
            Matrix::from_flat(2, 3, vec![1.0; 5]),
            Err(VectorError::RaggedData { .. })
        ));
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m =
            Matrix::from_rows(&[Vector::new(vec![1.0, 2.0]), Vector::new(vec![3.0, 4.0])]).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_mixed_dims_and_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[Vector::zeros(2), Vector::zeros(3)]).is_err());
    }

    #[test]
    fn row_access() {
        let m = sample();
        assert_eq!(m.row(1).unwrap(), &[3.0, 4.0]);
        assert!(m.row(3).is_err());
        assert_eq!(m.row_vector(2).unwrap().as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn row_mut_modifies() {
        let mut m = sample();
        m.row_mut(0).unwrap()[1] = 9.0;
        assert_eq!(m.row(0).unwrap(), &[1.0, 9.0]);
        assert!(m.row_mut(5).is_err());
    }

    #[test]
    fn row_slice_copies_range() {
        let m = sample();
        let s = m.row_slice(1, 3).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        assert!(m.row_slice(2, 1).is_err());
        assert!(m.row_slice(0, 4).is_err());
    }

    #[test]
    fn rows_as_slice_is_borrowed_view() {
        let m = sample();
        assert_eq!(m.rows_as_slice(0, 2).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(m.rows_as_slice(0, 4).is_err());
    }

    #[test]
    fn push_row_grows_and_checks_width() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        m.push_row(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(0).unwrap(), &[1.0, 3.0, 5.0]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn bytes_accounts_buffer() {
        assert_eq!(sample().bytes(), 6 * 4);
    }

    #[test]
    fn gather_rows_compacts_selected_lanes() {
        let m = sample();
        let g = m.gather_rows(&[2, 0, 0]).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 1.0, 2.0]);
        let empty = m.gather_rows(&[]).unwrap();
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.cols(), 2);
        assert!(m.gather_rows(&[3]).is_err());
    }

    #[test]
    fn to_vectors_roundtrip() {
        let m = sample();
        let vs = m.to_vectors();
        assert_eq!(vs.len(), 3);
        assert_eq!(Matrix::from_rows(&vs).unwrap(), m);
    }
}
