//! Top-k selection over scored candidates.
//!
//! Index probes (HNSW) and top-k join predicates both need "keep the k best
//! scores seen so far".  [`TopK`] is a small bounded max-collector built on a
//! binary min-heap keyed by score, with deterministic tie-breaking on the id
//! so results are reproducible across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored candidate kept by [`TopK`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// Identifier of the candidate (row offset, node id, ...).
    pub id: usize,
    /// Similarity score (larger is better).
    pub score: f32,
}

impl TopKEntry {
    /// Creates a new entry.
    pub fn new(id: usize, score: f32) -> Self {
        Self { id, score }
    }
}

/// Reverse ordering wrapper so `BinaryHeap` (a max-heap) behaves as a
/// min-heap on score: the root is always the *worst* kept candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinByScore(TopKEntry);

impl Eq for MinByScore {}

impl Ord for MinByScore {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed comparison on score, ties broken by id (reversed too so the
        // heap root is the entry we'd evict first: lowest score, largest id).
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for MinByScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded collector retaining the `k` highest-scoring entries.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<MinByScore>,
}

impl TopK {
    /// Creates a collector for the best `k` entries.  `k == 0` collects
    /// nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; it is kept only if it beats the current k-th best.
    pub fn push(&mut self, id: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinByScore(TopKEntry::new(id, score)));
            return;
        }
        let worst = self.heap.peek().expect("non-empty heap").0;
        if score > worst.score || (score == worst.score && id < worst.id) {
            self.heap.pop();
            self.heap.push(MinByScore(TopKEntry::new(id, score)));
        }
    }

    /// Current worst kept score, if the collector is full.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|e| e.0.score)
        }
    }

    /// Number of entries currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector and returns entries sorted by descending score
    /// (ties broken by ascending id).
    pub fn into_sorted(self) -> Vec<TopKEntry> {
        let mut entries: Vec<TopKEntry> = self.heap.into_iter().map(|e| e.0).collect();
        entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        entries
    }
}

/// Convenience: select the `k` highest scores of an iterator of `(id, score)`.
pub fn top_k<I: IntoIterator<Item = (usize, f32)>>(k: usize, items: I) -> Vec<TopKEntry> {
    let mut collector = TopK::new(k);
    for (id, score) in items {
        collector.push(id, score);
    }
    collector.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let scores = vec![(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7), (4, 0.2)];
        let best = top_k(2, scores);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].id, 1);
        assert_eq!(best[1].id, 3);
    }

    #[test]
    fn k_zero_keeps_nothing() {
        let best = top_k(0, vec![(0, 1.0), (1, 2.0)]);
        assert!(best.is_empty());
    }

    #[test]
    fn fewer_items_than_k() {
        let best = top_k(10, vec![(0, 0.3), (1, 0.8)]);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].id, 1);
    }

    #[test]
    fn sorted_descending_with_deterministic_ties() {
        let best = top_k(3, vec![(5, 0.5), (2, 0.5), (9, 0.5), (1, 0.5)]);
        assert_eq!(best.len(), 3);
        // ties broken by smallest id kept and ascending id in output
        assert_eq!(best.iter().map(|e| e.id).collect::<Vec<_>>(), vec![1, 2, 5]);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.push(0, 0.4);
        assert_eq!(tk.threshold(), None);
        tk.push(1, 0.9);
        assert_eq!(tk.threshold(), Some(0.4));
        tk.push(2, 0.6);
        assert_eq!(tk.threshold(), Some(0.6));
        assert_eq!(tk.len(), 2);
        assert!(!tk.is_empty());
    }

    #[test]
    fn negative_scores_supported() {
        let best = top_k(2, vec![(0, -0.5), (1, -0.1), (2, -0.9)]);
        assert_eq!(best[0].id, 1);
        assert_eq!(best[1].id, 0);
    }

    #[test]
    fn large_input_matches_sort() {
        let items: Vec<(usize, f32)> = (0..1000)
            .map(|i| (i, ((i * 7919) % 1000) as f32 / 1000.0))
            .collect();
        let mut expected = items.clone();
        expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let got = top_k(25, items);
        let expected_ids: Vec<usize> = expected[..25].iter().map(|e| e.0).collect();
        let got_ids: Vec<usize> = got.iter().map(|e| e.id).collect();
        assert_eq!(got_ids, expected_ids);
    }
}
