//! Blocked similarity-matrix kernel (`A · Bᵀ`) — the physical backbone of the
//! tensor join.
//!
//! Given an `m × d` matrix `A` (outer relation embeddings) and an `n × d`
//! matrix `B` (inner relation embeddings), the tensor join needs the `m × n`
//! score matrix `D = A · Bᵀ` (paper Section IV-C, Figure 6).  This module
//! computes `D` (or a sub-block of it) with:
//!
//! * **register/cache tiling**: rows of `A` and `B` are processed in small
//!   tiles so the working set of `B` rows stays cache resident and is reused
//!   across many rows of `A` — exactly the cache-locality argument the paper
//!   makes for preferring the tensor formulation over per-pair NLJ.
//! * **kernel selection**: the innermost dot product dispatches through
//!   [`Kernel`], reproducing the SIMD / NO-SIMD axis; the vectorised family
//!   additionally routes through the process-wide runtime-dispatched lane
//!   width (`CEJ_SIMD`, see [`crate::kernels::dispatched_width`]), so one
//!   binary serves scalar, 4-lane, and 8-lane width classes.
//! * **optional multi-threading**: rows of `A` are split across the shared
//!   [`cej_exec::ExecPool`] worker pool, each worker writing a disjoint
//!   slice of the output.

use cej_exec::ExecPool;
use serde::{Deserialize, Serialize};

use crate::error::VectorError;
use crate::kernels::Kernel;
use crate::matrix::Matrix;
use crate::Result;

/// Configuration of the blocked similarity kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmConfig {
    /// Compute kernel for the innermost dot products.
    pub kernel: Kernel,
    /// Tile height (rows of `A` per tile).
    pub tile_rows: usize,
    /// Tile width (rows of `B` per tile).
    pub tile_cols: usize,
    /// Number of worker threads (1 = single-threaded).
    pub threads: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Unrolled,
            tile_rows: 64,
            tile_cols: 64,
            threads: 1,
        }
    }
}

impl GemmConfig {
    /// Single-threaded configuration with the given kernel.
    pub fn with_kernel(kernel: Kernel) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// Sets the number of threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the tile shape.
    pub fn tiles(mut self, rows: usize, cols: usize) -> Self {
        self.tile_rows = rows.max(1);
        self.tile_cols = cols.max(1);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.tile_rows == 0 || self.tile_cols == 0 {
            return Err(VectorError::InvalidParameter(
                "tile sizes must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// A dense `m × n` score matrix produced by [`similarity_matrix`].
///
/// Scores are raw dot products; callers that need cosine similarity must
/// normalise the inputs first (see [`crate::norm::normalize_matrix_rows`]),
/// which is how the tensor join implements cosine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    /// Number of outer (A) rows.
    pub a_rows: usize,
    /// Number of inner (B) rows.
    pub b_rows: usize,
    scores: Vec<f32>,
}

impl SimilarityMatrix {
    /// Score of pair `(a_row, b_row)`.
    #[inline]
    pub fn score(&self, a_row: usize, b_row: usize) -> f32 {
        self.scores[a_row * self.b_rows + b_row]
    }

    /// Borrow the scores of a single `A` row against every `B` row.
    #[inline]
    pub fn row(&self, a_row: usize) -> &[f32] {
        &self.scores[a_row * self.b_rows..(a_row + 1) * self.b_rows]
    }

    /// Flat row-major score buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.scores
    }

    /// Memory footprint of the score buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.scores.len() * std::mem::size_of::<f32>()
    }

    /// Collects every pair whose score is at least `threshold`.
    pub fn pairs_above(&self, threshold: f32) -> Vec<(usize, usize, f32)> {
        let mut out = Vec::new();
        for a in 0..self.a_rows {
            let row = self.row(a);
            for (b, &s) in row.iter().enumerate() {
                if s >= threshold {
                    out.push((a, b, s));
                }
            }
        }
        out
    }
}

/// Computes the full `m × n` score matrix `A · Bᵀ`.
///
/// # Errors
/// Returns [`VectorError::DimensionMismatch`] when the inputs disagree on the
/// embedding dimension, and [`VectorError::InvalidParameter`] for a
/// degenerate configuration.
pub fn similarity_matrix(a: &Matrix, b: &Matrix, config: &GemmConfig) -> Result<SimilarityMatrix> {
    config.validate()?;
    if a.cols() != b.cols() {
        return Err(VectorError::DimensionMismatch {
            left: a.cols(),
            right: b.cols(),
        });
    }
    let mut scores = vec![0.0f32; a.rows() * b.rows()];
    if a.rows() == 0 || b.rows() == 0 {
        return Ok(SimilarityMatrix {
            a_rows: a.rows(),
            b_rows: b.rows(),
            scores,
        });
    }
    block_into_with_pool(
        a.as_slice(),
        b.as_slice(),
        a.rows(),
        b.rows(),
        a.cols(),
        config,
        &ExecPool::new(config.threads),
        &mut scores,
    );
    Ok(SimilarityMatrix {
        a_rows: a.rows(),
        b_rows: b.rows(),
        scores,
    })
}

/// Computes a score block for raw row-major slices, writing into `out`
/// (which must have `a_rows * b_rows` elements).
///
/// This is the building block the tensor join uses for mini-batched
/// execution: it never allocates, so the caller fully controls the
/// intermediate-state memory budget (paper Section V-B, Figure 7).
pub fn block_into(
    a: &[f32],
    b: &[f32],
    a_rows: usize,
    b_rows: usize,
    dim: usize,
    config: &GemmConfig,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), a_rows * dim);
    debug_assert_eq!(b.len(), b_rows * dim);
    debug_assert_eq!(out.len(), a_rows * b_rows);
    let tr = config.tile_rows.max(1);
    let tc = config.tile_cols.max(1);
    let kernel = config.kernel;
    let mut ai = 0;
    while ai < a_rows {
        let a_end = (ai + tr).min(a_rows);
        let mut bi = 0;
        while bi < b_rows {
            let b_end = (bi + tc).min(b_rows);
            // Tile loop: the B tile (tc rows) stays hot in cache while it is
            // reused against every A row of the tile.
            for ar in ai..a_end {
                let a_row = &a[ar * dim..(ar + 1) * dim];
                let out_row = &mut out[ar * b_rows..(ar + 1) * b_rows];
                for br in bi..b_end {
                    let b_row = &b[br * dim..(br + 1) * dim];
                    out_row[br] = kernel.dot(a_row, b_row);
                }
            }
            bi = b_end;
        }
        ai = a_end;
    }
}

/// Multi-threaded variant of [`block_into`]: rows of `A` are split into
/// chunks scheduled on `pool`, each worker filling a disjoint row-aligned
/// slice of `out` in place (so the caller's memory budget still holds).
///
/// With a single-thread pool (or a single row of `A`) this degrades to a
/// plain [`block_into`] call on the current thread.
#[allow(clippy::too_many_arguments)]
pub fn block_into_with_pool(
    a: &[f32],
    b: &[f32],
    a_rows: usize,
    b_rows: usize,
    dim: usize,
    config: &GemmConfig,
    pool: &ExecPool,
    out: &mut [f32],
) {
    if pool.threads() <= 1 || a_rows < 2 {
        block_into(a, b, a_rows, b_rows, dim, config, out);
        return;
    }
    pool.parallel_fill(out, a_rows, b_rows, |rows, chunk| {
        let a_chunk = &a[rows.start * dim..rows.end * dim];
        block_into(a_chunk, b, rows.len(), b_rows, dim, config, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    fn matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
        };
        Matrix::from_flat(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    fn naive(a: &Matrix, b: &Matrix) -> Vec<f32> {
        let mut out = vec![0.0; a.rows() * b.rows()];
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.row(i).unwrap()[k] * b.row(j).unwrap()[k];
                }
                out[i * b.rows() + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_single_thread() {
        let a = matrix(17, 33, 1);
        let b = matrix(23, 33, 2);
        let got = similarity_matrix(&a, &b, &GemmConfig::default()).unwrap();
        let expected = naive(&a, &b);
        for (g, e) in got.as_slice().iter().zip(expected.iter()) {
            assert!(approx(*g, *e));
        }
    }

    #[test]
    fn matches_naive_multi_thread() {
        let a = matrix(40, 16, 3);
        let b = matrix(31, 16, 4);
        let cfg = GemmConfig::default().threads(4).tiles(8, 8);
        let got = similarity_matrix(&a, &b, &cfg).unwrap();
        let expected = naive(&a, &b);
        for (g, e) in got.as_slice().iter().zip(expected.iter()) {
            assert!(approx(*g, *e));
        }
    }

    #[test]
    fn scalar_and_unrolled_kernels_agree() {
        let a = matrix(9, 100, 5);
        let b = matrix(11, 100, 6);
        let s = similarity_matrix(&a, &b, &GemmConfig::with_kernel(Kernel::Scalar)).unwrap();
        let u = similarity_matrix(&a, &b, &GemmConfig::with_kernel(Kernel::Unrolled)).unwrap();
        for (x, y) in s.as_slice().iter().zip(u.as_slice().iter()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = matrix(3, 8, 7);
        let b = matrix(3, 9, 8);
        assert!(similarity_matrix(&a, &b, &GemmConfig::default()).is_err());
    }

    #[test]
    fn empty_inputs_yield_empty_scores() {
        let a = Matrix::zeros(0, 4);
        let b = matrix(3, 4, 9);
        let s = similarity_matrix(&a, &b, &GemmConfig::default()).unwrap();
        assert_eq!(s.a_rows, 0);
        assert!(s.as_slice().is_empty());
    }

    #[test]
    fn score_row_and_pair_access() {
        let a =
            Matrix::from_rows(&[Vector::new(vec![1.0, 0.0]), Vector::new(vec![0.0, 1.0])]).unwrap();
        let b =
            Matrix::from_rows(&[Vector::new(vec![1.0, 0.0]), Vector::new(vec![1.0, 1.0])]).unwrap();
        let s = similarity_matrix(&a, &b, &GemmConfig::default()).unwrap();
        assert!(approx(s.score(0, 0), 1.0));
        assert!(approx(s.score(0, 1), 1.0));
        assert!(approx(s.score(1, 0), 0.0));
        assert_eq!(s.row(1).len(), 2);
        assert_eq!(s.bytes(), 4 * 4);
    }

    #[test]
    fn pairs_above_threshold() {
        let a = Matrix::from_rows(&[Vector::new(vec![1.0, 0.0])]).unwrap();
        let b = Matrix::from_rows(&[
            Vector::new(vec![1.0, 0.0]),
            Vector::new(vec![0.0, 1.0]),
            Vector::new(vec![0.9, 0.1]),
        ])
        .unwrap();
        let s = similarity_matrix(&a, &b, &GemmConfig::default()).unwrap();
        let pairs = s.pairs_above(0.5);
        let ids: Vec<(usize, usize)> = pairs.iter().map(|p| (p.0, p.1)).collect();
        assert_eq!(ids, vec![(0, 0), (0, 2)]);
    }

    #[test]
    fn block_into_subblock_matches_full() {
        let a = matrix(10, 12, 11);
        let b = matrix(8, 12, 12);
        let full = similarity_matrix(&a, &b, &GemmConfig::default()).unwrap();
        // compute rows 4..10 of A against all of B as a standalone block
        let a_chunk = a.rows_as_slice(4, 10).unwrap();
        let mut block = vec![0.0f32; 6 * 8];
        block_into(
            a_chunk,
            b.as_slice(),
            6,
            8,
            12,
            &GemmConfig::default(),
            &mut block,
        );
        for r in 0..6 {
            for c in 0..8 {
                assert!(approx(block[r * 8 + c], full.score(r + 4, c)));
            }
        }
    }

    #[test]
    fn odd_tile_sizes_still_correct() {
        let a = matrix(13, 7, 21);
        let b = matrix(9, 7, 22);
        let cfg = GemmConfig::default().tiles(5, 3);
        let got = similarity_matrix(&a, &b, &cfg).unwrap();
        let expected = naive(&a, &b);
        for (g, e) in got.as_slice().iter().zip(expected.iter()) {
            assert!(approx(*g, *e));
        }
    }
}
