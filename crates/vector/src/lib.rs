//! # cej-vector
//!
//! Dense vector / tensor substrate for the context-enhanced relational join
//! (CEJ) reproduction of *"Optimizing Context-Enhanced Relational Joins"*
//! (ICDE 2024).
//!
//! This crate provides everything the join operators need to work on
//! high-dimensional embeddings while remaining completely model-agnostic:
//!
//! * [`Vector`] — an owned, fixed-dimension dense `f32` vector.
//! * [`Matrix`] — a row-major matrix used to hold batches of embeddings
//!   (one embedding per row), the representation used by the *tensor join*
//!   formulation of the paper (Section IV-C).
//! * [`kernels`] — scalar and hand-unrolled ("vectorised") inner-product and
//!   norm kernels.  The unrolled variants are written so that LLVM
//!   auto-vectorises them, reproducing the paper's SIMD / NO-SIMD axis
//!   without `unsafe` intrinsics.
//! * [`gemm`] — a blocked (tiled) similarity-matrix kernel `A · Bᵀ` with
//!   configurable tile sizes and optional multi-threading, the physical
//!   backbone of the tensor join (Figure 6 of the paper).
//! * [`distance`] — cosine similarity / distance, dot product and L2 metrics.
//! * [`topk`] — top-k selection used by index probes and top-k join
//!   predicates.
//! * [`partition`] — block partitioning helpers that derive mini-batch sizes
//!   from a buffer budget (Section V-B, Figure 7).
//!
//! The types here deliberately avoid any dependency on the embedding model or
//! the relational layer: the paper's core claim is a *separation of concerns*
//! where operators only ever see context-free tensors.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod distance;
pub mod error;
pub mod gemm;
pub mod kernels;
pub mod matrix;
pub mod norm;
pub mod partition;
pub mod stats;
pub mod topk;
pub mod vector;

pub use distance::{cosine_distance, cosine_similarity, dot, euclidean_distance, Metric};
pub use error::VectorError;
pub use gemm::{GemmConfig, SimilarityMatrix};
pub use kernels::{dispatched_width, dot_lanes, dot_select, filter_cmp, CmpOp, Kernel, SimdWidth};
pub use matrix::Matrix;
pub use norm::{l2_norm, normalize, normalize_matrix_rows};
pub use partition::{BlockPartition, BufferBudget};
pub use topk::{TopK, TopKEntry};
pub use vector::Vector;

/// Result alias used throughout the vector substrate.
pub type Result<T> = std::result::Result<T, VectorError>;
