//! Scalar and width-dispatched ("vectorised") compute kernels.
//!
//! The paper evaluates every operator both with and without SIMD
//! acceleration (Figures 8, 9, 11).  We reproduce that axis with two kernel
//! families:
//!
//! * **Scalar** kernels: a straightforward element-by-element loop with a
//!   single sequential accumulator.  The loop-carried dependency on the
//!   accumulator prevents LLVM from auto-vectorising the floating-point
//!   reduction, so this is a faithful stand-in for the paper's `NO-SIMD`
//!   configuration.
//! * **Lane-unrolled** kernels: a `W`-lane unrolled loop with independent
//!   partial accumulators, monomorphised per width ([`dot_lanes`]).  LLVM
//!   reliably turns the 4- and 8-lane bodies into packed SIMD instructions
//!   on x86-64 and aarch64, standing in for the paper's AVX-512 `SIMD`
//!   configuration.
//!
//! Operators take a [`Kernel`] value so benchmarks can switch between the
//! families at run time.  The lane width of the vectorised family is
//! **runtime-dispatched**: [`dispatched_width`] reads `CEJ_SIMD`
//! (`scalar` / `4` / `8`, default `8`) once per process and every
//! `Kernel::Unrolled` operation routes through the selected
//! width-specialised kernel.  Floating-point accumulation order is fixed
//! *per width class* — all dots computed under one width setting are
//! bit-identical run to run, and the default width 8 reproduces the
//! historical 8-lane unrolled kernel exactly, so checked-in CI baselines
//! and serve checksums are unchanged.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// Number of independent accumulator lanes used by the default unrolled
/// kernels (the `CEJ_SIMD=8` width class).
pub const UNROLL_LANES: usize = 8;

/// Lane width of the vectorised kernel family, selected once per process.
///
/// Each width class has a fixed accumulation order (W independent partial
/// sums folded left-to-right, then a sequential remainder), so results are
/// deterministic and bit-stable *within* a width class while different
/// classes may differ in the last bits — the reason CI legs pin the width
/// per job rather than per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SimdWidth {
    /// Single sequential accumulator (forces the vectorised family down the
    /// scalar path; `CEJ_SIMD=scalar`).
    Scalar,
    /// 4 accumulator lanes (`CEJ_SIMD=4`; SSE/NEON-width).
    W4,
    /// 8 accumulator lanes (`CEJ_SIMD=8`; AVX2-width) — the default, and
    /// bit-identical to the historical `dot_unrolled` kernel.
    #[default]
    W8,
}

impl SimdWidth {
    /// Number of accumulator lanes of this width class.
    pub fn lanes(&self) -> usize {
        match self {
            SimdWidth::Scalar => 1,
            SimdWidth::W4 => 4,
            SimdWidth::W8 => 8,
        }
    }

    /// Stable label for reports and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            SimdWidth::Scalar => "scalar",
            SimdWidth::W4 => "w4",
            SimdWidth::W8 => "w8",
        }
    }

    fn from_env() -> Self {
        match std::env::var("CEJ_SIMD").ok().as_deref() {
            Some("scalar") | Some("1") => SimdWidth::Scalar,
            Some("4") => SimdWidth::W4,
            _ => SimdWidth::W8,
        }
    }
}

/// The process-wide dispatched lane width (`CEJ_SIMD`, read once).
#[inline]
pub fn dispatched_width() -> SimdWidth {
    static WIDTH: OnceLock<SimdWidth> = OnceLock::new();
    *WIDTH.get_or_init(SimdWidth::from_env)
}

/// Which compute kernel family an operator should use.
///
/// See the module documentation for how this maps onto the paper's
/// SIMD / NO-SIMD experimental axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Element-at-a-time kernel with a single accumulator (paper: `NO-SIMD`).
    Scalar,
    /// 8-lane unrolled kernel that auto-vectorises (paper: `SIMD`).
    #[default]
    Unrolled,
}

impl Kernel {
    /// Dot product of two equally sized slices using this kernel.  The
    /// `Unrolled` family routes through the runtime-dispatched lane width
    /// (see [`dispatched_width`]); `Scalar` is always the sequential loop,
    /// independent of dispatch — it *is* the paper's NO-SIMD axis.
    ///
    /// # Panics
    /// Debug-asserts that the slices have equal length; in release builds the
    /// shorter length wins (consistent with `zip`).
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Kernel::Scalar => dot_scalar(a, b),
            Kernel::Unrolled => match dispatched_width() {
                SimdWidth::Scalar => dot_scalar(a, b),
                SimdWidth::W4 => dot_lanes::<4>(a, b),
                SimdWidth::W8 => dot_lanes::<8>(a, b),
            },
        }
    }

    /// L2 norm of a slice using this kernel (same dispatch rules as
    /// [`Kernel::dot`]).
    #[inline]
    pub fn l2_norm(&self, a: &[f32]) -> f32 {
        match self {
            Kernel::Scalar => l2_norm_scalar(a),
            Kernel::Unrolled => self.dot(a, a).sqrt(),
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Scalar => "NO-SIMD",
            Kernel::Unrolled => "SIMD",
        }
    }
}

/// Scalar dot product: one accumulator, no unrolling.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Width-specialised dot product with `W` independent accumulators,
/// monomorphised per lane width.
///
/// The inner loop iterates `chunks_exact` slices, so the bounds of every
/// lane access are known to LLVM and the body compiles to packed FMA /
/// mul-add instructions without bounds checks.  The accumulation order is
/// fixed per width: `W` per-lane partials, a left-to-right lane sum, then
/// the sequential remainder.  `W = 8` reproduces the historical
/// `dot_unrolled` kernel bit for bit.
#[inline]
pub fn dot_lanes<const W: usize>(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(W);
    let mut cb = b[..n].chunks_exact(W);
    let mut acc = [0.0f32; W];
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        // Independent accumulators break the reduction dependency chain so
        // the loop auto-vectorises into packed FMA/mul-add instructions.
        for lane in 0..W {
            acc[lane] += xs[lane] * ys[lane];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += x * y;
    }
    total
}

/// The historical 8-lane unrolled dot product — now an alias for
/// [`dot_lanes`]`::<8>` (the default width class).
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    dot_lanes::<UNROLL_LANES>(a, b)
}

/// Scalar L2 norm.
#[inline]
pub fn l2_norm_scalar(a: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in a {
        acc += x * x;
    }
    acc.sqrt()
}

/// Unrolled L2 norm.
#[inline]
pub fn l2_norm_unrolled(a: &[f32]) -> f32 {
    dot_unrolled(a, a).sqrt()
}

/// `out[i] += alpha * x[i]` (unrolled); used by embedding training updates.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, v) in out.iter_mut().zip(x.iter()) {
        *o += alpha * *v;
    }
}

/// Sum of a slice (8-lane partial accumulators, `chunks_exact` inner loop;
/// same accumulation order as the index-based predecessor).  Deliberately
/// *not* width-dispatched: it feeds embedding training, whose reductions
/// must stay identical across every CI leg.
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    let mut chunks = a.chunks_exact(UNROLL_LANES);
    let mut acc = [0.0f32; UNROLL_LANES];
    for xs in &mut chunks {
        for lane in 0..UNROLL_LANES {
            acc[lane] += xs[lane];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for v in chunks.remainder() {
        total += *v;
    }
    total
}

/// Comparison operator for the selection-vector filter kernel
/// [`filter_cmp`].  Mirrors the relational layer's comparison semantics so
/// batch predicate evaluation can dispatch simple `column <op> literal`
/// filters straight to a tight, auto-vectorisable loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Whether `lhs <op> rhs` holds.  `None` orderings (NaN) compare false
    /// for every operator except `NotEq`, matching IEEE semantics.
    #[inline]
    pub fn holds<T: PartialOrd>(&self, lhs: &T, rhs: &T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::NotEq => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::LtEq => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::GtEq => lhs >= rhs,
        }
    }
}

/// Selection-vector filter: compacts the lanes of `sel` whose value passes
/// `value <op> rhs` into a fresh selection vector.
///
/// `sel` holds row offsets into `values`; only selected lanes are compared,
/// so a filter above a filter touches survivors only — the vectorised
/// executor's "mark, don't copy" contract.
///
/// The compare/compact split is width-dispatched: under a vector width `W`
/// the selection vector is walked in `W`-lane groups, the comparisons of a
/// group are evaluated branch-free into a mask, and only then are the
/// surviving lanes compacted — the classic SIMD predicate-then-compress
/// shape.  Compaction preserves lane order, so the output is identical for
/// every width (only the instruction mix differs).
///
/// # Panics
/// Debug-asserts that every selected lane is in bounds; release builds
/// panic on out-of-bounds lanes via the slice index.
#[inline]
pub fn filter_cmp<T: PartialOrd + Copy>(values: &[T], sel: &[u32], op: CmpOp, rhs: T) -> Vec<u32> {
    match dispatched_width() {
        SimdWidth::Scalar => filter_cmp_lanes::<1, T>(values, sel, op, rhs),
        SimdWidth::W4 => filter_cmp_lanes::<4, T>(values, sel, op, rhs),
        SimdWidth::W8 => filter_cmp_lanes::<8, T>(values, sel, op, rhs),
    }
}

/// Width-specialised body of [`filter_cmp`].
#[inline]
fn filter_cmp_lanes<const W: usize, T: PartialOrd + Copy>(
    values: &[T],
    sel: &[u32],
    op: CmpOp,
    rhs: T,
) -> Vec<u32> {
    let mut out = Vec::with_capacity(sel.len());
    let mut chunks = sel.chunks_exact(W);
    for lanes in &mut chunks {
        // Compare pass: no branches, so the W comparisons vectorise.
        let mut mask = [false; W];
        for i in 0..W {
            mask[i] = op.holds(&values[lanes[i] as usize], &rhs);
        }
        // Compact pass: survivors keep their lane order.
        for i in 0..W {
            if mask[i] {
                out.push(lanes[i]);
            }
        }
    }
    for &lane in chunks.remainder() {
        if op.holds(&values[lane as usize], &rhs) {
            out.push(lane);
        }
    }
    out
}

/// Selection-vector dot product: scores `query` against only the selected
/// rows of a row-major `rows × dim` buffer, producing one score per
/// selected lane (in lane order).
///
/// This is the batched probe-side primitive: a join operator consuming a
/// column batch scores exactly the survivors of the batch's selection
/// vector, skipping filtered lanes entirely.
///
/// # Panics
/// Panics (via slice indexing) when a selected lane is out of bounds for
/// the buffer.
#[inline]
pub fn dot_select(
    kernel: Kernel,
    query: &[f32],
    data: &[f32],
    dim: usize,
    sel: &[u32],
) -> Vec<f32> {
    let mut out = Vec::with_capacity(sel.len());
    for &lane in sel {
        let start = lane as usize * dim;
        out.push(kernel.dot(query, &data[start..start + dim]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn scalar_and_unrolled_dot_agree() {
        let a: Vec<f32> = (0..103).map(|i| (i as f32) * 0.01 - 0.5).collect();
        let b: Vec<f32> = (0..103).map(|i| ((i * 7) % 13) as f32 * 0.1).collect();
        assert!(approx(dot_scalar(&a, &b), dot_unrolled(&a, &b)));
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        assert_eq!(dot_scalar(&[], &[]), 0.0);
        assert_eq!(dot_unrolled(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_lanes() {
        let a = vec![1.0f32; 13];
        let b = vec![2.0f32; 13];
        assert!(approx(dot_unrolled(&a, &b), 26.0));
    }

    #[test]
    fn norms_agree() {
        let a: Vec<f32> = (0..57).map(|i| i as f32 * 0.3).collect();
        assert!(approx(l2_norm_scalar(&a), l2_norm_unrolled(&a)));
    }

    #[test]
    fn kernel_dispatch_matches_free_functions() {
        let a: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..40).map(|i| (40 - i) as f32).collect();
        assert_eq!(Kernel::Scalar.dot(&a, &b), dot_scalar(&a, &b));
        assert_eq!(Kernel::Unrolled.dot(&a, &b), dot_unrolled(&a, &b));
        assert_eq!(Kernel::Scalar.l2_norm(&a), l2_norm_scalar(&a));
        assert_eq!(Kernel::Unrolled.l2_norm(&a), l2_norm_unrolled(&a));
    }

    #[test]
    fn kernel_labels() {
        assert_eq!(Kernel::Scalar.label(), "NO-SIMD");
        assert_eq!(Kernel::Unrolled.label(), "SIMD");
        assert_eq!(Kernel::default(), Kernel::Unrolled);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0f32, 2.0, 3.0];
        let mut out = vec![10.0f32, 10.0, 10.0];
        axpy(0.5, &x, &mut out);
        assert_eq!(out, vec![10.5, 11.0, 11.5]);
    }

    #[test]
    fn sum_matches_iterator_sum() {
        let a: Vec<f32> = (0..29).map(|i| i as f32).collect();
        let expected: f32 = a.iter().sum();
        assert!(approx(sum(&a), expected));
    }

    #[test]
    fn filter_cmp_matches_scalar_reference() {
        let values: Vec<i64> = (0..100).map(|i| (i * 37 + 11) % 100).collect();
        let sel: Vec<u32> = (0..100).step_by(3).collect();
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            let fast = filter_cmp(&values, &sel, op, 50i64);
            let reference: Vec<u32> = sel
                .iter()
                .copied()
                .filter(|&lane| op.holds(&values[lane as usize], &50i64))
                .collect();
            assert_eq!(fast, reference, "op {op:?}");
        }
    }

    #[test]
    fn filter_cmp_float_nan_lanes_fail_ordered_comparisons() {
        let values = [1.0f64, f64::NAN, 3.0];
        let sel = [0u32, 1, 2];
        assert_eq!(filter_cmp(&values, &sel, CmpOp::Gt, 0.0), vec![0, 2]);
        assert_eq!(filter_cmp(&values, &sel, CmpOp::NotEq, 1.0), vec![1, 2]);
    }

    #[test]
    fn dot_select_matches_per_row_dot_for_both_kernels() {
        let dim = 24;
        let rows = 17;
        let data: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let query: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).cos()).collect();
        let sel: Vec<u32> = vec![0, 3, 3, 9, 16];
        for kernel in [Kernel::Scalar, Kernel::Unrolled] {
            let scores = dot_select(kernel, &query, &data, dim, &sel);
            assert_eq!(scores.len(), sel.len());
            for (score, &lane) in scores.iter().zip(sel.iter()) {
                let start = lane as usize * dim;
                let reference = kernel.dot(&query, &data[start..start + dim]);
                assert_eq!(*score, reference, "lane {lane}");
            }
        }
        assert!(dot_select(Kernel::Unrolled, &query, &data, dim, &[]).is_empty());
    }

    #[test]
    fn width_classes_agree_approximately() {
        let a: Vec<f32> = (0..103).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..103).map(|i| (i as f32 * 0.11).cos()).collect();
        let reference = dot_scalar(&a, &b);
        assert!(approx(dot_lanes::<4>(&a, &b), reference));
        assert!(approx(dot_lanes::<8>(&a, &b), reference));
    }

    #[test]
    fn width_eight_is_bit_identical_to_the_legacy_unrolled_kernel() {
        let a: Vec<f32> = (0..257).map(|i| (i as f32 * 0.013).sin()).collect();
        let b: Vec<f32> = (0..257).map(|i| (i as f32 * 0.029).cos()).collect();
        assert_eq!(
            dot_lanes::<8>(&a, &b).to_bits(),
            dot_unrolled(&a, &b).to_bits()
        );
    }

    #[test]
    fn filter_cmp_output_is_identical_across_widths() {
        let values: Vec<i64> = (0..97).map(|i| (i * 31 + 7) % 50).collect();
        let sel: Vec<u32> = (0..97).step_by(2).collect();
        for op in [CmpOp::Lt, CmpOp::GtEq, CmpOp::Eq] {
            let s1 = filter_cmp_lanes::<1, i64>(&values, &sel, op, 25);
            let s4 = filter_cmp_lanes::<4, i64>(&values, &sel, op, 25);
            let s8 = filter_cmp_lanes::<8, i64>(&values, &sel, op, 25);
            assert_eq!(s1, s4, "op {op:?}");
            assert_eq!(s1, s8, "op {op:?}");
        }
    }

    #[test]
    fn simd_width_labels_and_lanes() {
        assert_eq!(SimdWidth::Scalar.lanes(), 1);
        assert_eq!(SimdWidth::W4.lanes(), 4);
        assert_eq!(SimdWidth::W8.lanes(), 8);
        assert_eq!(SimdWidth::Scalar.label(), "scalar");
        assert_eq!(SimdWidth::W4.label(), "w4");
        assert_eq!(SimdWidth::W8.label(), "w8");
        assert_eq!(SimdWidth::default(), SimdWidth::W8);
        if std::env::var("CEJ_SIMD").is_err() {
            assert_eq!(
                dispatched_width(),
                SimdWidth::W8,
                "default dispatch is 8 lanes"
            );
        }
    }

    #[test]
    fn cmp_op_holds_all_operators() {
        assert!(CmpOp::Eq.holds(&1, &1));
        assert!(CmpOp::NotEq.holds(&1, &2));
        assert!(CmpOp::Lt.holds(&1, &2));
        assert!(CmpOp::LtEq.holds(&2, &2));
        assert!(CmpOp::Gt.holds(&3, &2));
        assert!(CmpOp::GtEq.holds(&2, &2));
        assert!(!CmpOp::Eq.holds(&1, &2));
    }
}
