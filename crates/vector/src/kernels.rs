//! Scalar and unrolled ("vectorised") compute kernels.
//!
//! The paper evaluates every operator both with and without SIMD
//! acceleration (Figures 8, 9, 11).  We reproduce that axis with two kernel
//! families:
//!
//! * **Scalar** kernels: a straightforward element-by-element loop with a
//!   single sequential accumulator.  The loop-carried dependency on the
//!   accumulator prevents LLVM from auto-vectorising the floating-point
//!   reduction, so this is a faithful stand-in for the paper's `NO-SIMD`
//!   configuration.
//! * **Unrolled** kernels: an 8-lane unrolled loop with independent partial
//!   accumulators.  LLVM reliably turns this into packed SIMD instructions on
//!   x86-64 and aarch64, standing in for the paper's AVX-512 `SIMD`
//!   configuration.
//!
//! Operators take a [`Kernel`] value so benchmarks can switch between the two
//! at run time.

use serde::{Deserialize, Serialize};

/// Number of independent accumulator lanes used by the unrolled kernels.
pub const UNROLL_LANES: usize = 8;

/// Which compute kernel family an operator should use.
///
/// See the module documentation for how this maps onto the paper's
/// SIMD / NO-SIMD experimental axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Element-at-a-time kernel with a single accumulator (paper: `NO-SIMD`).
    Scalar,
    /// 8-lane unrolled kernel that auto-vectorises (paper: `SIMD`).
    #[default]
    Unrolled,
}

impl Kernel {
    /// Dot product of two equally sized slices using this kernel.
    ///
    /// # Panics
    /// Debug-asserts that the slices have equal length; in release builds the
    /// shorter length wins (consistent with `zip`).
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Kernel::Scalar => dot_scalar(a, b),
            Kernel::Unrolled => dot_unrolled(a, b),
        }
    }

    /// L2 norm of a slice using this kernel.
    #[inline]
    pub fn l2_norm(&self, a: &[f32]) -> f32 {
        match self {
            Kernel::Scalar => l2_norm_scalar(a),
            Kernel::Unrolled => l2_norm_unrolled(a),
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Scalar => "NO-SIMD",
            Kernel::Unrolled => "SIMD",
        }
    }
}

/// Scalar dot product: one accumulator, no unrolling.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Unrolled dot product with [`UNROLL_LANES`] independent accumulators.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let chunks = n / UNROLL_LANES;
    let mut acc = [0.0f32; UNROLL_LANES];
    for c in 0..chunks {
        let base = c * UNROLL_LANES;
        // Independent accumulators break the reduction dependency chain so
        // the loop auto-vectorises into packed FMA/mul-add instructions.
        for lane in 0..UNROLL_LANES {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for i in (chunks * UNROLL_LANES)..n {
        total += a[i] * b[i];
    }
    total
}

/// Scalar L2 norm.
#[inline]
pub fn l2_norm_scalar(a: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in a {
        acc += x * x;
    }
    acc.sqrt()
}

/// Unrolled L2 norm.
#[inline]
pub fn l2_norm_unrolled(a: &[f32]) -> f32 {
    dot_unrolled(a, a).sqrt()
}

/// `out[i] += alpha * x[i]` (unrolled); used by embedding training updates.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, v) in out.iter_mut().zip(x.iter()) {
        *o += alpha * *v;
    }
}

/// Sum of a slice (unrolled partial accumulators).
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    let chunks = a.len() / UNROLL_LANES;
    let mut acc = [0.0f32; UNROLL_LANES];
    for c in 0..chunks {
        let base = c * UNROLL_LANES;
        for lane in 0..UNROLL_LANES {
            acc[lane] += a[base + lane];
        }
    }
    let mut total: f32 = acc.iter().sum();
    for v in &a[chunks * UNROLL_LANES..] {
        total += *v;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn scalar_and_unrolled_dot_agree() {
        let a: Vec<f32> = (0..103).map(|i| (i as f32) * 0.01 - 0.5).collect();
        let b: Vec<f32> = (0..103).map(|i| ((i * 7) % 13) as f32 * 0.1).collect();
        assert!(approx(dot_scalar(&a, &b), dot_unrolled(&a, &b)));
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        assert_eq!(dot_scalar(&[], &[]), 0.0);
        assert_eq!(dot_unrolled(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_lanes() {
        let a = vec![1.0f32; 13];
        let b = vec![2.0f32; 13];
        assert!(approx(dot_unrolled(&a, &b), 26.0));
    }

    #[test]
    fn norms_agree() {
        let a: Vec<f32> = (0..57).map(|i| i as f32 * 0.3).collect();
        assert!(approx(l2_norm_scalar(&a), l2_norm_unrolled(&a)));
    }

    #[test]
    fn kernel_dispatch_matches_free_functions() {
        let a: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..40).map(|i| (40 - i) as f32).collect();
        assert_eq!(Kernel::Scalar.dot(&a, &b), dot_scalar(&a, &b));
        assert_eq!(Kernel::Unrolled.dot(&a, &b), dot_unrolled(&a, &b));
        assert_eq!(Kernel::Scalar.l2_norm(&a), l2_norm_scalar(&a));
        assert_eq!(Kernel::Unrolled.l2_norm(&a), l2_norm_unrolled(&a));
    }

    #[test]
    fn kernel_labels() {
        assert_eq!(Kernel::Scalar.label(), "NO-SIMD");
        assert_eq!(Kernel::Unrolled.label(), "SIMD");
        assert_eq!(Kernel::default(), Kernel::Unrolled);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0f32, 2.0, 3.0];
        let mut out = vec![10.0f32, 10.0, 10.0];
        axpy(0.5, &x, &mut out);
        assert_eq!(out, vec![10.5, 11.0, 11.5]);
    }

    #[test]
    fn sum_matches_iterator_sum() {
        let a: Vec<f32> = (0..29).map(|i| i as f32).collect();
        let expected: f32 = a.iter().sum();
        assert!(approx(sum(&a), expected));
    }
}
