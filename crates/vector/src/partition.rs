//! Tuple-boundary partitioning and buffer budgets for mini-batched execution.
//!
//! The naive tensor join materialises the full `|R| × |S|` score matrix,
//! which for two 100 k-row inputs is 40 GB of FP32 (paper Section V-B).  The
//! paper's remedy is to partition both inputs along tuple boundaries into
//! mini-batches so that each intermediate block fits a caller-supplied buffer
//! budget (Figure 7).  This module computes those partitions.

use serde::{Deserialize, Serialize};

use crate::error::VectorError;
use crate::Result;

/// A half-open row range `[start, end)` of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowRange {
    /// First row of the block (inclusive).
    pub start: usize,
    /// One past the last row of the block.
    pub end: usize,
}

impl RowRange {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the range covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Partition of `total` rows into consecutive blocks of at most `block` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPartition {
    ranges: Vec<RowRange>,
    total: usize,
    block: usize,
}

impl BlockPartition {
    /// Splits `total` rows into blocks of at most `block` rows.
    ///
    /// # Errors
    /// Returns [`VectorError::InvalidParameter`] when `block == 0` and
    /// `total > 0`.
    pub fn new(total: usize, block: usize) -> Result<Self> {
        if total > 0 && block == 0 {
            return Err(VectorError::InvalidParameter(
                "block size must be non-zero".into(),
            ));
        }
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < total {
            let end = (start + block).min(total);
            ranges.push(RowRange { start, end });
            start = end;
        }
        Ok(Self {
            ranges,
            total,
            block: block.max(1),
        })
    }

    /// The block ranges in order.
    pub fn ranges(&self) -> &[RowRange] {
        &self.ranges
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` when there are no blocks (zero input rows).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of rows partitioned.
    pub fn total_rows(&self) -> usize {
        self.total
    }

    /// The configured maximum block size.
    pub fn block_size(&self) -> usize {
        self.block
    }
}

/// A byte budget for the intermediate score matrix of the tensor join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferBudget {
    /// Maximum number of bytes the intermediate block may occupy.
    pub bytes: usize,
}

impl BufferBudget {
    /// A budget of `bytes` bytes.
    pub fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// A budget of `mib` mebibytes.
    pub fn from_mib(mib: usize) -> Self {
        Self {
            bytes: mib * 1024 * 1024,
        }
    }

    /// An effectively unlimited budget (the "No Batch" configuration of
    /// Figure 13).
    pub fn unlimited() -> Self {
        Self { bytes: usize::MAX }
    }

    /// Maximum number of `f32` cells the intermediate block may hold.
    pub fn max_cells(&self) -> usize {
        self.bytes / std::mem::size_of::<f32>()
    }

    /// Derives (outer, inner) mini-batch row counts for joining `outer_rows`
    /// with `inner_rows` so that `outer_batch * inner_batch` score cells fit
    /// within the budget.
    ///
    /// The split keeps batches roughly square (both sides get ~√cells) but
    /// never exceeds the actual relation sizes, and always returns at least
    /// one row per side so progress is guaranteed even under a tiny budget.
    pub fn batch_shape(&self, outer_rows: usize, inner_rows: usize) -> (usize, usize) {
        if outer_rows == 0 || inner_rows == 0 {
            return (outer_rows.max(1), inner_rows.max(1));
        }
        let cells = self.max_cells().max(1);
        if outer_rows.saturating_mul(inner_rows) <= cells {
            return (outer_rows, inner_rows);
        }
        let side = (cells as f64).sqrt().floor() as usize;
        let mut inner = side.clamp(1, inner_rows);
        let mut outer = (cells / inner).clamp(1, outer_rows);
        // If one side is smaller than the square side, give the freed capacity
        // to the other side.
        if inner == inner_rows {
            outer = (cells / inner).clamp(1, outer_rows);
        } else if outer == outer_rows {
            inner = (cells / outer).clamp(1, inner_rows);
        }
        (outer.max(1), inner.max(1))
    }

    /// Intermediate-state bytes required by a `(outer, inner)` block shape.
    pub fn block_bytes(outer: usize, inner: usize) -> usize {
        outer * inner * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let p = BlockPartition::new(10, 3).unwrap();
        let ranges = p.ranges();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], RowRange { start: 0, end: 3 });
        assert_eq!(ranges[3], RowRange { start: 9, end: 10 });
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
        assert_eq!(p.total_rows(), 10);
        assert_eq!(p.block_size(), 3);
    }

    #[test]
    fn partition_exact_multiple() {
        let p = BlockPartition::new(8, 4).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.ranges().iter().all(|r| r.len() == 4));
    }

    #[test]
    fn partition_zero_rows_is_empty() {
        let p = BlockPartition::new(0, 5).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn partition_zero_block_rejected() {
        assert!(BlockPartition::new(5, 0).is_err());
        // but zero rows with zero block is fine
        assert!(BlockPartition::new(0, 0).is_ok());
    }

    #[test]
    fn partition_block_larger_than_total() {
        let p = BlockPartition::new(3, 100).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.ranges()[0], RowRange { start: 0, end: 3 });
    }

    #[test]
    fn row_range_helpers() {
        let r = RowRange { start: 2, end: 2 };
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn unlimited_budget_never_splits() {
        let b = BufferBudget::unlimited();
        assert_eq!(b.batch_shape(100_000, 100_000), (100_000, 100_000));
    }

    #[test]
    fn budget_shape_fits_budget() {
        let b = BufferBudget::from_mib(1); // 262144 cells
        let (o, i) = b.batch_shape(100_000, 100_000);
        assert!(o * i <= b.max_cells());
        assert!(o >= 1 && i >= 1);
    }

    #[test]
    fn budget_small_relations_untouched() {
        let b = BufferBudget::from_mib(64);
        assert_eq!(b.batch_shape(100, 200), (100, 200));
    }

    #[test]
    fn budget_asymmetric_relations() {
        let b = BufferBudget::from_bytes(4 * 1000); // 1000 cells
        let (o, i) = b.batch_shape(10, 100_000);
        assert!(o * i <= 1000);
        assert!(o >= 1 && i >= 1);
        // the small side should not be shrunk below its size unnecessarily
        assert!(o <= 10);
    }

    #[test]
    fn budget_tiny_always_progresses() {
        let b = BufferBudget::from_bytes(1);
        let (o, i) = b.batch_shape(50, 60);
        assert_eq!((o, i), (1, 1));
    }

    #[test]
    fn block_bytes_accounting() {
        assert_eq!(BufferBudget::block_bytes(10, 20), 800);
    }

    #[test]
    fn from_mib_conversion() {
        assert_eq!(BufferBudget::from_mib(2).bytes, 2 * 1024 * 1024);
        assert_eq!(BufferBudget::from_mib(1).max_cells(), 262_144);
    }
}
