//! Normalisation utilities.
//!
//! The tensor join exploits the identity `cos(a, b) = â · b̂` (cosine equals
//! dot product of normalised inputs, paper Section IV-C).  Normalising each
//! input relation once — `O(|R| + |S|)` work — turns every pair-wise cosine
//! into a plain dot product, which is what lets the join be expressed as a
//! dense matrix multiplication.

use crate::kernels::Kernel;
use crate::matrix::Matrix;

/// L2 norm of a slice using the default vectorised kernel (routed through
/// the runtime-dispatched lane width, see
/// [`crate::kernels::dispatched_width`]).
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    Kernel::Unrolled.l2_norm(a)
}

/// Normalises a slice in place; zero vectors are left untouched.
#[inline]
pub fn normalize(a: &mut [f32]) {
    normalize_with(a, Kernel::Unrolled);
}

/// Normalises a slice in place using an explicit kernel.
#[inline]
pub fn normalize_with(a: &mut [f32], kernel: Kernel) {
    let n = kernel.l2_norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in a.iter_mut() {
            *v *= inv;
        }
    }
}

/// Normalises every row of a matrix in place and returns the original row
/// norms (useful when the caller needs to undo the normalisation or report
/// magnitudes).
pub fn normalize_matrix_rows(m: &mut Matrix) -> Vec<f32> {
    normalize_matrix_rows_with(m, Kernel::Unrolled)
}

/// [`normalize_matrix_rows`] with an explicit kernel.
pub fn normalize_matrix_rows_with(m: &mut Matrix, kernel: Kernel) -> Vec<f32> {
    let rows = m.rows();
    let cols = m.cols();
    let data = m.as_mut_slice();
    let mut norms = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let n = kernel.l2_norm(row);
        norms.push(n);
        if n > 0.0 {
            let inv = 1.0 / n;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
    norms
}

/// Returns `true` when every row of the matrix has (approximately) unit norm
/// or is the zero vector.  Used by debug assertions in the tensor join.
pub fn rows_are_normalized(m: &Matrix, tolerance: f32) -> bool {
    (0..m.rows()).all(|r| {
        let n = l2_norm(m.row(r).expect("row in range"));
        n == 0.0 || (n - 1.0).abs() <= tolerance
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Vector;

    #[test]
    fn normalize_slice() {
        let mut a = [3.0, 4.0];
        normalize(&mut a);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_slice_is_noop() {
        let mut a = [0.0, 0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn normalize_with_scalar_kernel_matches_unrolled() {
        let mut a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut b = a;
        normalize_with(&mut a, Kernel::Scalar);
        normalize_with(&mut b, Kernel::Unrolled);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn normalize_matrix_rows_returns_norms() {
        let mut m = Matrix::from_rows(&[
            Vector::new(vec![3.0, 4.0]),
            Vector::new(vec![0.0, 0.0]),
            Vector::new(vec![1.0, 0.0]),
        ])
        .unwrap();
        let norms = normalize_matrix_rows(&mut m);
        assert!((norms[0] - 5.0).abs() < 1e-6);
        assert_eq!(norms[1], 0.0);
        assert!((norms[2] - 1.0).abs() < 1e-6);
        assert!(rows_are_normalized(&m, 1e-5));
    }

    #[test]
    fn rows_are_normalized_detects_unnormalized() {
        let m = Matrix::from_rows(&[Vector::new(vec![2.0, 0.0])]).unwrap();
        assert!(!rows_are_normalized(&m, 1e-5));
    }

    #[test]
    fn normalized_dot_equals_cosine() {
        let a = Vector::new(vec![0.2, 0.7, -0.3, 1.2]);
        let b = Vector::new(vec![0.9, -0.1, 0.5, 0.4]);
        let cos = a.cosine_similarity(&b).unwrap();
        let dot_norm = a.normalized().dot(&b.normalized()).unwrap();
        assert!((cos - dot_norm).abs() < 1e-5);
    }
}
