//! Small statistics helpers shared by the benchmark harness and tests.

/// Summary statistics over a set of `f64` samples (e.g. per-run timings).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty input.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = sorted[0];
        let max = sorted[count - 1];
        let median = percentile(&sorted, 50.0);
        let stddev = if count > 1 {
            let var =
                samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (count - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            min,
            max,
            median,
            stddev,
        })
    }
}

/// Linear-interpolation percentile of a **sorted** slice; `p` in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[4.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.stddev - 1.5811388).abs() < 1e-5);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 40.0);
        assert_eq!(percentile(&sorted, 50.0), 25.0);
    }

    #[test]
    fn percentile_of_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn median_of_unsorted_input_handled_by_summary() {
        let s = Summary::from_samples(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }
}
