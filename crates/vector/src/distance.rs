//! Distance and similarity metrics over dense vectors.
//!
//! The paper's context-enhanced join is defined over *similarity expressions*
//! between embeddings, with cosine similarity as the running example
//! (Section III-A).  This module provides the metric implementations plus a
//! [`Metric`] enum that operators and indexes use to agree on the comparison
//! semantics.

use serde::{Deserialize, Serialize};

use crate::kernels::{dot_unrolled, l2_norm_unrolled};

/// The similarity / distance metric an operator or index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Cosine similarity (higher is more similar, range `[-1, 1]`).
    #[default]
    Cosine,
    /// Raw inner product (higher is more similar).  Equivalent to cosine on
    /// pre-normalised inputs — the equivalence the tensor join exploits.
    InnerProduct,
    /// Euclidean (L2) distance (lower is more similar).
    Euclidean,
}

impl Metric {
    /// Similarity score under this metric.
    ///
    /// For [`Metric::Euclidean`] the *negated* distance is returned so that
    /// "larger is better" holds for every metric, which keeps top-k selection
    /// uniform across metrics.
    #[inline]
    pub fn similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Cosine => cosine_similarity(a, b),
            Metric::InnerProduct => dot(a, b),
            Metric::Euclidean => -euclidean_distance(a, b),
        }
    }

    /// `true` when larger scores mean "more similar" for the *raw* metric
    /// value (before the sign normalisation applied by [`Metric::similarity`]).
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, Metric::Euclidean)
    }

    /// Whether the metric is invariant to the scale of its inputs.
    pub fn scale_invariant(&self) -> bool {
        matches!(self, Metric::Cosine)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::InnerProduct => "ip",
            Metric::Euclidean => "l2",
        }
    }
}

/// Dot product of two slices (unrolled kernel).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled(a, b)
}

/// Cosine similarity `A·B / (‖A‖‖B‖)`.
///
/// Returns `0.0` when either input has zero norm, so degenerate embeddings
/// never satisfy a positive similarity threshold.
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm_unrolled(a);
    let nb = l2_norm_unrolled(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot_unrolled(a, b) / (na * nb)
}

/// Cosine distance `1 - cos(a, b)`.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Euclidean (L2) distance between two slices.
#[inline]
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(approx(cosine_similarity(&a, &b), 1.0));
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = [1.0, 0.0];
        let b = [-1.0, 0.0];
        assert!(approx(cosine_similarity(&a, &b), -1.0));
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert_eq!(cosine_similarity(&b, &a), 0.0);
    }

    #[test]
    fn cosine_distance_complements_similarity() {
        let a = [0.3, 0.5, -0.2];
        let b = [0.1, 0.9, 0.4];
        assert!(approx(
            cosine_distance(&a, &b),
            1.0 - cosine_similarity(&a, &b)
        ));
    }

    #[test]
    fn euclidean_distance_of_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(euclidean_distance(&a, &a), 0.0);
    }

    #[test]
    fn euclidean_distance_matches_manual() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!(approx(euclidean_distance(&a, &b), 5.0));
    }

    #[test]
    fn metric_similarity_sign_convention() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        // all metrics: larger = more similar
        assert!(Metric::Cosine.similarity(&a, &a) > Metric::Cosine.similarity(&a, &b));
        assert!(Metric::InnerProduct.similarity(&a, &a) > Metric::InnerProduct.similarity(&a, &b));
        assert!(Metric::Euclidean.similarity(&a, &a) > Metric::Euclidean.similarity(&a, &b));
    }

    #[test]
    fn inner_product_equals_cosine_on_normalized_inputs() {
        let a = [0.6, 0.8];
        let b = [0.8, 0.6];
        assert!(approx(
            Metric::InnerProduct.similarity(&a, &b),
            Metric::Cosine.similarity(&a, &b)
        ));
    }

    #[test]
    fn metric_metadata() {
        assert!(Metric::Cosine.higher_is_better());
        assert!(Metric::InnerProduct.higher_is_better());
        assert!(!Metric::Euclidean.higher_is_better());
        assert!(Metric::Cosine.scale_invariant());
        assert!(!Metric::InnerProduct.scale_invariant());
        assert_eq!(Metric::Cosine.label(), "cosine");
        assert_eq!(Metric::default(), Metric::Cosine);
    }
}
