//! Owned dense `f32` vector type used for single embeddings.

use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::error::VectorError;
use crate::kernels;
use crate::Result;

/// An owned, dense, fixed-dimension `f32` vector.
///
/// `Vector` is the unit of data produced by the embedding model (`E_mu` in
/// the paper) for a single tuple.  Batches of vectors are stored as rows of a
/// [`crate::Matrix`], which is what the tensor join operates on.
///
/// The paper treats embeddings as *atomic* values from the DBMS's point of
/// view (Section IV): the engine never decomposes them, it only applies
/// whole-vector expressions such as cosine similarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a vector from raw components.
    pub fn new(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![0.0; dim],
        }
    }

    /// Creates a vector of dimension `dim` with every component equal to `value`.
    pub fn splat(dim: usize, value: f32) -> Self {
        Self {
            data: vec![value; dim],
        }
    }

    /// Dimensionality of the vector.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has zero components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the components as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Borrow the components mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// L2 (Euclidean) norm of the vector.
    pub fn norm(&self) -> f32 {
        kernels::l2_norm_unrolled(&self.data)
    }

    /// Returns a normalised (unit-length) copy of the vector.
    ///
    /// A zero vector is returned unchanged: the cosine similarity of a zero
    /// vector against anything is defined as `0.0` by this crate, mirroring
    /// how the paper's operators never match empty embeddings.
    pub fn normalized(&self) -> Self {
        let mut out = self.clone();
        out.normalize();
        out
    }

    /// Normalises the vector in place (see [`Vector::normalized`]).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for v in &mut self.data {
                *v /= n;
            }
        }
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] when dimensions differ.
    pub fn dot(&self, other: &Vector) -> Result<f32> {
        if self.dim() != other.dim() {
            return Err(VectorError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(kernels::dot_unrolled(&self.data, &other.data))
    }

    /// Cosine similarity with another vector.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] when dimensions differ.
    pub fn cosine_similarity(&self, other: &Vector) -> Result<f32> {
        if self.dim() != other.dim() {
            return Err(VectorError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(crate::distance::cosine_similarity(&self.data, &other.data))
    }

    /// Adds `other` into `self` component-wise.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] when dimensions differ.
    pub fn add_assign(&mut self, other: &Vector) -> Result<()> {
        if self.dim() != other.dim() {
            return Err(VectorError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Multiplies every component by `factor`.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns the component-wise mean of a non-empty set of vectors.
    ///
    /// Used by the embedding model to compose sub-word n-gram vectors into a
    /// word embedding.
    ///
    /// # Errors
    /// Returns [`VectorError::Empty`] for an empty input and
    /// [`VectorError::DimensionMismatch`] when inputs disagree on dimension.
    pub fn mean(vectors: &[Vector]) -> Result<Vector> {
        let first = vectors.first().ok_or(VectorError::Empty("mean input"))?;
        let mut acc = Vector::zeros(first.dim());
        for v in vectors {
            acc.add_assign(v)?;
        }
        acc.scale(1.0 / vectors.len() as f32);
        Ok(acc)
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Vector::new(data)
    }
}

impl From<&[f32]> for Vector {
    fn from(data: &[f32]) -> Self {
        Vector::new(data.to_vec())
    }
}

impl Index<usize> for Vector {
    type Output = f32;

    fn index(&self, index: usize) -> &Self::Output {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut Self::Output {
        &mut self.data[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_and_dim() {
        let v = Vector::zeros(8);
        assert_eq!(v.dim(), 8);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn splat_fills_value() {
        let v = Vector::splat(4, 2.5);
        assert_eq!(v.as_slice(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn norm_of_unit_axes() {
        let v = Vector::new(vec![3.0, 4.0]);
        assert!(approx(v.norm(), 5.0));
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = Vector::new(vec![3.0, 4.0, 0.0, 0.0]);
        v.normalize();
        assert!(approx(v.norm(), 1.0));
        assert!(approx(v[0], 0.6));
        assert!(approx(v[1], 0.8));
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = Vector::zeros(4);
        v.normalize();
        assert_eq!(v.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn dot_product_matches_manual() {
        let a = Vector::new(vec![1.0, 2.0, 3.0]);
        let b = Vector::new(vec![4.0, 5.0, 6.0]);
        assert!(approx(a.dot(&b).unwrap(), 32.0));
    }

    #[test]
    fn dot_dimension_mismatch_errors() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(
            a.dot(&b),
            Err(VectorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cosine_similarity_of_identical_vectors_is_one() {
        let a = Vector::new(vec![0.2, -0.4, 0.9, 1.5]);
        assert!(approx(a.cosine_similarity(&a).unwrap(), 1.0));
    }

    #[test]
    fn cosine_similarity_of_orthogonal_vectors_is_zero() {
        let a = Vector::new(vec![1.0, 0.0]);
        let b = Vector::new(vec![0.0, 1.0]);
        assert!(approx(a.cosine_similarity(&b).unwrap(), 0.0));
    }

    #[test]
    fn cosine_dimension_mismatch_errors() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(5);
        assert!(a.cosine_similarity(&b).is_err());
    }

    #[test]
    fn mean_of_two_vectors() {
        let a = Vector::new(vec![1.0, 2.0]);
        let b = Vector::new(vec![3.0, 4.0]);
        let m = Vector::mean(&[a, b]).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn mean_of_empty_errors() {
        assert!(matches!(Vector::mean(&[]), Err(VectorError::Empty(_))));
    }

    #[test]
    fn mean_dimension_mismatch_errors() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(Vector::mean(&[a, b]).is_err());
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Vector::new(vec![1.0, 1.0]);
        let b = Vector::new(vec![2.0, 3.0]);
        a.add_assign(&b).unwrap();
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn indexing_and_from_impls() {
        let mut v: Vector = vec![1.0f32, 2.0].into();
        v[0] = 9.0;
        assert_eq!(v[0], 9.0);
        let s: Vector = [5.0f32, 6.0].as_slice().into();
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn into_inner_returns_buffer() {
        let v = Vector::new(vec![1.0, -2.0, 3.5]);
        assert_eq!(v.into_inner(), vec![1.0, -2.0, 3.5]);
    }
}
