//! Per-query latency accounting.
//!
//! Every executed query (`RUN` / `PROBE` / `ANALYZE`) records its service
//! time here; `STATS` and the load-generator reports read the percentile
//! summary.  Samples are exact microseconds over a bounded sliding window
//! (a ring of the most recent [`MAX_SAMPLES`]): exact percentiles beat
//! sketch error bars when CI gates on p95, and the bound keeps a
//! long-running server's memory (and `STATS` cost) constant.

use std::sync::Mutex;

/// Size of the sliding sample window.  512 KiB of `u64`s: far more than any
/// percentile needs, small enough to sort on every `STATS`.
pub const MAX_SAMPLES: usize = 65_536;

/// Percentile summary over the recorded samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples in the window (total recordings may exceed this
    /// once the sliding window wraps).
    pub count: usize,
    /// Median service time in microseconds.
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// Worst observed service time in microseconds.
    pub max_us: u64,
    /// Mean service time in microseconds.
    pub mean_us: u64,
}

/// The bounded ring of recent samples.
#[derive(Debug, Default)]
struct Ring {
    samples_us: Vec<u64>,
    /// Next write position once the ring is full.
    cursor: usize,
}

/// A concurrent recorder of service times (see module docs).
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    ring: Mutex<Ring>,
}

/// Index of the `q`-quantile in a sorted sample of `len` values
/// (nearest-rank, clamped).  Shared with the load generator's client-side
/// percentiles so server- and bench-reported numbers use one formula.
pub fn nearest_rank(len: usize, q: f64) -> usize {
    ((len as f64 * q).ceil() as usize).clamp(1, len) - 1
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one service time in microseconds.  Once the sliding window
    /// is full, the oldest sample is overwritten.
    pub fn record_us(&self, micros: u64) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples_us.len() < MAX_SAMPLES {
            ring.samples_us.push(micros);
        } else {
            let cursor = ring.cursor;
            ring.samples_us[cursor] = micros;
            ring.cursor = (cursor + 1) % MAX_SAMPLES;
        }
    }

    /// Drops all samples (the load generator resets between client counts).
    pub fn reset(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.samples_us.clear();
        ring.cursor = 0;
    }

    /// The percentile summary over the current sample window.
    pub fn summary(&self) -> LatencySummary {
        let mut samples = self
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .samples_us
            .clone();
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: u64 = samples.iter().sum();
        LatencySummary {
            count,
            p50_us: samples[nearest_rank(count, 0.50)],
            p95_us: samples[nearest_rank(count, 0.95)],
            p99_us: samples[nearest_rank(count, 0.99)],
            max_us: samples[count - 1],
            mean_us: total / count as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarises_to_zeros() {
        assert_eq!(LatencyRecorder::new().summary(), LatencySummary::default());
    }

    #[test]
    fn percentiles_over_a_known_distribution() {
        let recorder = LatencyRecorder::new();
        for v in 1..=100u64 {
            recorder.record_us(v);
        }
        let s = recorder.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
        recorder.reset();
        assert_eq!(recorder.summary().count, 0);
    }

    #[test]
    fn single_sample() {
        let recorder = LatencyRecorder::new();
        recorder.record_us(42);
        let s = recorder.summary();
        assert_eq!((s.p50_us, s.p95_us, s.p99_us, s.max_us), (42, 42, 42, 42));
    }

    #[test]
    fn window_is_bounded_and_slides() {
        let recorder = LatencyRecorder::new();
        // fill the window with large values, then wrap with small ones
        for _ in 0..MAX_SAMPLES {
            recorder.record_us(1_000_000);
        }
        assert_eq!(recorder.summary().count, MAX_SAMPLES);
        for _ in 0..MAX_SAMPLES {
            recorder.record_us(1);
        }
        let s = recorder.summary();
        assert_eq!(s.count, MAX_SAMPLES, "window never exceeds the bound");
        assert_eq!(s.max_us, 1, "old samples must have been overwritten");
    }

    #[test]
    fn concurrent_recording() {
        let recorder = std::sync::Arc::new(LatencyRecorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    recorder.record_us(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(recorder.summary().count, 1000);
    }
}
