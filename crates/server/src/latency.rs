//! Per-query latency accounting.
//!
//! Every executed query (`RUN` / `PROBE` / `ANALYZE`) records its service
//! time here; `STATS` and the load-generator reports read the percentile
//! summary.  Samples land in a log-bucketed [`cej_obs::Histogram`]
//! (16 sub-buckets per octave): memory is bounded by the fixed bucket
//! table no matter how long the server runs, a summary is one array walk
//! instead of a 65k-sample sort, and — unlike the sliding ring this
//! replaced — percentiles cover the full recorded history with no
//! recency bias.  Reported quantiles are *exact-enough*: the bucket lower
//! bound, at most one bucket width (≈4.4%) below the true sample, exact
//! for sub-32µs samples and for the tracked maximum.

use cej_obs::Histogram;

/// Percentile summary over the recorded samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples recorded since the last reset.
    pub count: usize,
    /// Median service time in microseconds.
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// Worst observed service time in microseconds.
    pub max_us: u64,
    /// Mean service time in microseconds.
    pub mean_us: u64,
}

/// A concurrent recorder of service times (see module docs).  Cloning
/// shares the underlying histogram cells — how the serving layer registers
/// the same data under `METRICS`.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    histogram: Histogram,
}

/// Index of the `q`-quantile in a sorted sample of `len` values
/// (nearest-rank, clamped).  Shared with the load generator's client-side
/// percentiles so server- and bench-reported numbers use one formula.
pub fn nearest_rank(len: usize, q: f64) -> usize {
    ((len as f64 * q).ceil() as usize).clamp(1, len) - 1
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying histogram handle (shares the cells) — what the
    /// serving layer registers into its metrics registry.
    pub fn histogram(&self) -> Histogram {
        self.histogram.clone()
    }

    /// Records one service time in microseconds.  Lock-free.
    pub fn record_us(&self, micros: u64) {
        self.histogram.observe(micros);
    }

    /// Drops all samples (the load generator resets between client counts).
    pub fn reset(&self) {
        self.histogram.reset();
    }

    /// The percentile summary over everything recorded since the last
    /// reset.
    pub fn summary(&self) -> LatencySummary {
        let count = self.histogram.count();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: count as usize,
            p50_us: self.histogram.quantile(0.50),
            p95_us: self.histogram.quantile(0.95),
            p99_us: self.histogram.quantile(0.99),
            max_us: self.histogram.max(),
            mean_us: self.histogram.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarises_to_zeros() {
        assert_eq!(LatencyRecorder::new().summary(), LatencySummary::default());
    }

    #[test]
    fn percentiles_over_a_known_distribution() {
        let recorder = LatencyRecorder::new();
        for v in 1..=100u64 {
            recorder.record_us(v);
        }
        let s = recorder.summary();
        assert_eq!(s.count, 100);
        // 50 sits exactly on a bucket boundary; 95 and 99 report their
        // bucket's lower bound, within one ≈4.4% bucket width below
        assert_eq!(s.p50_us, 50);
        assert!((91..=95).contains(&s.p95_us), "p95={}", s.p95_us);
        assert!((95..=99).contains(&s.p99_us), "p99={}", s.p99_us);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
        recorder.reset();
        assert_eq!(recorder.summary().count, 0);
    }

    #[test]
    fn single_sample() {
        let recorder = LatencyRecorder::new();
        recorder.record_us(42);
        let s = recorder.summary();
        assert_eq!((s.p50_us, s.p95_us, s.p99_us, s.max_us), (42, 42, 42, 42));
    }

    #[test]
    fn quantiles_never_exceed_the_tracked_maximum() {
        let recorder = LatencyRecorder::new();
        for _ in 0..10_000 {
            recorder.record_us(1_000_000);
        }
        for _ in 0..10_000 {
            recorder.record_us(1);
        }
        let s = recorder.summary();
        assert_eq!(s.count, 20_000, "full history, no sliding window");
        assert!(s.p99_us <= s.max_us);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.p50_us, 1, "half the samples are 1µs");
    }

    #[test]
    fn concurrent_recording() {
        let recorder = std::sync::Arc::new(LatencyRecorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    recorder.record_us(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(recorder.summary().count, 1000);
    }
}
