//! # cej-server
//!
//! The multi-client serving front end of the engine: a TCP server speaking
//! a small line-oriented text protocol ([`protocol`]) over a **shared**
//! [`ContextJoinSession`].
//!
//! The paper's economics — embedding and index costs amortised across many
//! queries — only materialise in a long-lived service, so this crate turns
//! the per-query machinery of PR 3/4 (prepared queries, persistent indexes,
//! statistics) into a system:
//!
//! * **Shared session, per-connection handles.**  Every connection thread
//!   owns a clone of the session handle; catalog, model registry, embedding
//!   caches, and the persistent index manager are `Arc`-shared behind it,
//!   so one client's cold query warms every other client.
//! * **Connection threads feed the shared scheduler.**  Queries execute on
//!   their connection's thread; every parallel operator inside them submits
//!   work to the persistent work-stealing scheduler's injector
//!   ([`cej_exec::Scheduler`]), where the long-lived workers pick it up —
//!   no thread is spawned per query.
//! * **Admission control** ([`admission::AdmissionGate`]): a hard cap on
//!   in-flight queries plus a bounded wait queue; beyond both, clients get
//!   `ERR busy` immediately instead of collapsing the server.
//! * **Latency accounting** ([`latency::LatencyRecorder`]): every query's
//!   service time is recorded; `STATS` reports exact p50/p95/p99.
//!
//! ## Protocol
//!
//! See [`protocol`] for the grammar.  `PREPARE` stores a named statement in
//! the connection's statement cache (plan-once); `RUN` executes it
//! (execute-many, all shared caches warm); `BIND` derives a new statement
//! at a different similarity threshold without replanning; `PROBE` joins
//! ad-hoc request text against a registered table through a prepared
//! template — the "user query string" path of a live service.
//!
//! ## Live incremental views
//!
//! `SUBSCRIBE <id>` turns a prepared statement into a standing query
//! ([`cej_core::StandingQuery`]): from then on, any connection's
//! `APPLY <table> …` mutation that changes its result pushes a checksummed
//! `DELTA` frame to the subscribing connection.  Every connection owns a
//! dedicated flusher thread parked on the server-wide [`FrameNudge`]: a
//! successful `APPLY` bumps its generation and wakes every flusher, so
//! frames go out the moment they are queued instead of waiting for a
//! 100ms idle tick.  A per-connection writer mutex keeps frames from
//! interleaving with response payloads; [`Client::wait_delta`] receives
//! them.  Maintenance is incremental where the delta-propagation engine is
//! exact and a transparent full re-run otherwise — either way the frame is
//! an exact result diff.
//!
//! ## Observability
//!
//! Each server owns a [`cej_obs::Registry`] aggregating every stat family —
//! admission, query latency, persistent indexes, embedding caches, the
//! work-stealing pool, incremental-view maintenance, the DELTA fan-out
//! cache, and trace capture.  `METRICS` renders it in Prometheus text
//! exposition format; `STATS` stays the legacy single-line view over the
//! same registry.  `RUN`/`ANALYZE`/`PROBE` execute under a
//! [`cej_obs::Trace`] (sampled by `CEJ_TRACE_SAMPLE`, forced for queries
//! crossing `CEJ_SLOW_QUERY_MS`); `TRACE LAST`, `TRACE <id>`, and
//! `TRACE SLOW` render captured span trees over the wire.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod latency;
pub mod protocol;

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cej_core::{ContextJoinSession, PreparedQuery, StandingQuery};
use cej_obs::Trace;
use cej_storage::TableBuilder;

use admission::AdmissionGate;
use latency::LatencyRecorder;
use protocol::{
    build_delta, render_delta, render_delta_body, render_delta_header, render_table, render_text,
    Command, StatementSpec, TraceTarget,
};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port — the default, made
    /// for tests and benchmarks).
    pub addr: String,
    /// Maximum concurrently executing queries (admission cap).
    pub max_inflight: usize,
    /// Maximum queries waiting for an execution slot before `ERR busy`.
    pub max_queued: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 8,
            max_queued: 32,
        }
    }
}

/// State shared by the acceptor and every connection thread.
struct ServerShared {
    session: ContextJoinSession,
    gate: Arc<AdmissionGate>,
    latency: LatencyRecorder,
    shutdown: AtomicBool,
    connections: AtomicU64,
    frames: Arc<DeltaFrameCache>,
    /// Per-server metrics registry (every stat family registers here; see
    /// [`Server::metrics`]).  Collector closures capture their own `Arc` /
    /// shared-cell handles, never `ServerShared` itself, so no reference
    /// cycle forms.
    registry: cej_obs::Registry,
    /// Queries executed (`RUN` / `ANALYZE` / `PROBE` / `APPLY`), registered
    /// as `cej_queries_total`.
    queries: cej_obs::Counter,
    /// Flusher rounds that wrote at least one `DELTA` frame, registered as
    /// `cej_frame_wakeups_total`.
    frame_wakeups: cej_obs::Counter,
    /// Wakes every connection's frame flusher after an `APPLY` queues
    /// standing-query frames.
    nudge: FrameNudge,
}

/// A generation-counting condvar that replaces the old 100ms idle-tick
/// frame flush: `APPLY` bumps the generation ([`FrameNudge::notify`]) and
/// every per-connection flusher parked in [`FrameNudge::wait`] drains its
/// subscription mailboxes immediately.
struct FrameNudge {
    generation: Mutex<u64>,
    frames_ready: Condvar,
}

impl FrameNudge {
    fn new() -> Self {
        Self {
            generation: Mutex::new(0),
            frames_ready: Condvar::new(),
        }
    }

    /// Bumps the generation and wakes every waiting flusher.
    fn notify(&self) {
        let mut generation = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *generation += 1;
        self.frames_ready.notify_all();
    }

    /// Waits until the generation moves past `seen` or `fallback` elapses
    /// (the safety net for shutdown and frames queued outside `APPLY`);
    /// returns the generation observed on wake.
    fn wait(&self, seen: u64, fallback: Duration) -> u64 {
        let guard = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        let (guard, _timeout) = self
            .frames_ready
            .wait_timeout_while(guard, fallback, |generation| *generation == seen)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }
}

/// Bounded entries kept in the [`DeltaFrameCache`] (FIFO eviction).  Each
/// entry is one rendered frame body; old applies are flushed to every
/// subscriber almost immediately, so a small window is plenty.
const DELTA_CACHE_CAPACITY: usize = 256;

/// Shared rendered DELTA-frame bodies, keyed by
/// `(plan fingerprint, apply seq, refreshed)`.
///
/// Standing queries over the same physical plan emit frames with identical
/// bodies for the same [`cej_core::ResultDelta::seq`] (the body carries no
/// subscription id — see [`render_delta_body`]), so when N connections
/// subscribe to the same statement each table change is rendered **once**
/// and written N times with per-subscriber headers.  The `refreshed` flag
/// is part of the key because per-subscription maintenance policies may
/// propagate exactly for one query and fall back to a full re-run for
/// another.  Snapshot frames (`seq == 0`) depend on per-subscriber mailbox
/// state and bypass the cache.
struct DeltaFrameCache {
    inner: Mutex<DeltaFrameCacheInner>,
    /// Bodies served from cache (frames fanned out without re-rendering).
    hits: AtomicU64,
    /// Bodies rendered because no subscriber had produced them yet.
    misses: AtomicU64,
}

#[derive(Default)]
struct DeltaFrameCacheInner {
    bodies: HashMap<(u64, u64, bool), Arc<String>>,
    order: VecDeque<(u64, u64, bool)>,
}

impl DeltaFrameCache {
    fn new() -> Self {
        Self {
            inner: Mutex::new(DeltaFrameCacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached body for `(fingerprint, seq, refreshed)`, or
    /// renders it via `render` and publishes it.  Rendering happens outside
    /// the lock; when two connections race, the first publication wins and
    /// both writes share one allocation.
    fn body(
        &self,
        fingerprint: u64,
        seq: u64,
        refreshed: bool,
        render: impl FnOnce() -> String,
    ) -> Arc<String> {
        let key = (fingerprint, seq, refreshed);
        {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(body) = inner.bodies.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(body);
            }
        }
        let rendered = Arc::new(render());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // first publication wins the race; a loser's render is discarded
        let body = Arc::clone(inner.bodies.entry(key).or_insert_with(|| rendered));
        if !inner.order.contains(&key) {
            inner.order.push_back(key);
        }
        while inner.order.len() > DELTA_CACHE_CAPACITY {
            if let Some(evicted) = inner.order.pop_front() {
                inner.bodies.remove(&evicted);
            }
        }
        body
    }

    fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A running server: bound listener, acceptor thread, connection threads.
///
/// Dropping (or [`Server::shutdown`]) stops accepting, asks connection
/// threads to wind down after their current request, and joins everything —
/// the graceful-shutdown path.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving `session` under `config`.  The session
    /// handle is shared: callers keep their own handle to observe cache /
    /// index state while the server runs.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn start(session: ContextJoinSession, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gate = Arc::new(AdmissionGate::new(config.max_inflight, config.max_queued));
        let latency = LatencyRecorder::new();
        let frames = Arc::new(DeltaFrameCache::new());
        let registry = cej_obs::Registry::new();
        let queries = registry.counter(
            "cej_queries_total",
            "Queries executed (RUN, ANALYZE, PROBE, APPLY)",
        );
        let frame_wakeups = registry.counter(
            "cej_frame_wakeups_total",
            "Flusher rounds that wrote at least one DELTA frame",
        );
        register_collectors(&registry, &session, &gate, &latency, &frames);
        let shared = Arc::new(ServerShared {
            session,
            gate,
            latency,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            frames,
            registry,
            queries,
            frame_wakeups,
            nudge: FrameNudge::new(),
        });
        let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = shared.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("cej-server-accept".to_string())
                .spawn(move || accept_loop(listener, shared, connections))?
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served session (a shared handle).
    pub fn session(&self) -> ContextJoinSession {
        self.shared.session.clone()
    }

    /// The per-query latency summary recorded so far.
    pub fn latency(&self) -> latency::LatencySummary {
        self.shared.latency.summary()
    }

    /// Drops all recorded latency samples (between load-generator phases).
    pub fn reset_latency(&self) {
        self.shared.latency.reset();
    }

    /// Admission counters.
    pub fn admission(&self) -> admission::AdmissionStats {
        self.shared.gate.stats()
    }

    /// The full metrics registry in Prometheus text exposition format —
    /// exactly what the `METRICS` verb serves over the wire.
    pub fn metrics(&self) -> String {
        self.shared.registry.render()
    }

    /// Graceful shutdown: stop accepting, let every connection finish its
    /// current request, join all threads.  Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.connections.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Registers every stat family as scrape-time collectors: admission,
/// latency, persistent indexes, embedding caches, the work-stealing pool,
/// incremental-view maintenance, the DELTA fan-out cache, and trace
/// capture.  `STATS` re-sources its legacy line from these same entries
/// ([`render_stats`]), so the two surfaces can never drift.
fn register_collectors(
    registry: &cej_obs::Registry,
    session: &ContextJoinSession,
    gate: &Arc<AdmissionGate>,
    latency: &LatencyRecorder,
    frames: &Arc<DeltaFrameCache>,
) {
    let g = Arc::clone(gate);
    registry.counter_fn(
        "cej_admission_admitted_total",
        "Queries granted an execution slot",
        move || g.stats().admitted,
    );
    let g = Arc::clone(gate);
    registry.counter_fn(
        "cej_admission_rejected_total",
        "Queries answered ERR busy (inflight cap and wait queue both full)",
        move || g.stats().rejected,
    );
    let g = Arc::clone(gate);
    registry.gauge_fn(
        "cej_admission_inflight",
        "Queries currently holding an execution slot",
        move || g.stats().inflight as u64,
    );
    let g = Arc::clone(gate);
    registry.gauge_fn(
        "cej_admission_queued",
        "Queries currently waiting for an execution slot",
        move || g.stats().queued as u64,
    );
    let g = Arc::clone(gate);
    registry.gauge_fn(
        "cej_admission_peak_inflight",
        "Highest concurrent in-flight count observed",
        move || g.stats().peak_inflight as u64,
    );
    registry.histogram_handle(
        "cej_query_latency_us",
        "Per-query service time in microseconds",
        latency.histogram(),
    );

    let s = session.clone();
    registry.counter_fn(
        "cej_index_builds_total",
        "Persistent vector indexes built (cache misses)",
        move || s.index_manager().stats().builds,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_index_hits_total",
        "Lookups served by an already-built persistent index",
        move || s.index_manager().stats().hits,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_index_invalidations_total",
        "Persistent indexes dropped by table re-registration",
        move || s.index_manager().stats().invalidations,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_index_evictions_total",
        "Persistent indexes evicted by the memory budget (LRU)",
        move || s.index_manager().stats().evictions,
    );
    let s = session.clone();
    registry.gauge_fn(
        "cej_index_resident",
        "Persistent indexes currently resident",
        move || s.index_manager().stats().resident as u64,
    );
    let s = session.clone();
    registry.gauge_fn(
        "cej_index_memory_bytes",
        "Bytes held by resident persistent indexes",
        move || s.index_manager().stats().memory_bytes as u64,
    );

    let s = session.clone();
    registry.counter_fn(
        "cej_embed_model_calls_total",
        "Real embedding-model invocations (cache misses and uncached calls)",
        move || s.embedding_caches().stats().model_calls,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_embed_cache_hits_total",
        "Embedding calls served from the shared cache",
        move || s.embedding_caches().stats().cache_hits,
    );

    registry.counter_fn(
        "cej_pool_tasks_total",
        "Task indices executed through the work-stealing scheduler",
        || cej_exec::ExecPool::metrics().tasks_executed,
    );
    registry.counter_fn(
        "cej_pool_steals_total",
        "Tokens taken from another worker's deque",
        || cej_exec::ExecPool::metrics().steals,
    );
    registry.counter_fn(
        "cej_pool_injected_total",
        "Tokens submitted through the scheduler's injector queue",
        || cej_exec::ExecPool::metrics().injected,
    );
    registry.counter_fn(
        "cej_pool_wakeups_total",
        "Targeted wakeups issued to parked scheduler workers",
        || cej_exec::ExecPool::metrics().wakeups,
    );
    registry.gauge_fn(
        "cej_pool_queue_depth",
        "Tokens currently queued across the injector and all deques",
        || cej_exec::ExecPool::metrics().queue_depth as u64,
    );
    registry.gauge_fn(
        "cej_pool_workers",
        "Scheduler worker threads currently alive",
        || cej_exec::ExecPool::metrics().workers as u64,
    );

    let s = session.clone();
    registry.gauge_fn(
        "cej_ivm_standing",
        "Standing queries currently registered",
        move || s.ivm_stats().standing as u64,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_ivm_deltas_applied_total",
        "Table deltas applied through the session",
        move || s.ivm_stats().deltas_applied,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_ivm_propagations_total",
        "Standing-query updates handled by exact delta propagation",
        move || s.ivm_stats().propagations,
    );
    let s = session.clone();
    registry.counter_fn(
        "cej_ivm_refreshes_total",
        "Standing-query updates handled by a full re-run",
        move || s.ivm_stats().refreshes,
    );
    registry.histogram_handle(
        "cej_ivm_propagation_latency_us",
        "Delta-propagation latency per standing-query update, microseconds",
        session.ivm_latency_histogram(),
    );

    let f = Arc::clone(frames);
    registry.counter_fn(
        "cej_frame_renders_total",
        "DELTA frame bodies rendered (fan-out cache misses)",
        move || f.stats().1,
    );
    let f = Arc::clone(frames);
    registry.counter_fn(
        "cej_frame_shares_total",
        "DELTA frame bodies served from the fan-out cache",
        move || f.stats().0,
    );

    registry.counter_fn(
        "cej_traces_captured_total",
        "Query traces captured into the in-memory ring",
        cej_obs::traces_captured,
    );
    registry.counter_fn(
        "cej_slow_queries_total",
        "Queries that crossed the slow-query threshold",
        cej_obs::slow_query_count,
    );
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("cej-server-conn-{conn_id}"))
                    .spawn(move || connection_loop(stream, shared, conn_id))
                    .expect("spawning a connection thread");
                let mut guard = connections.lock().unwrap_or_else(|e| e.into_inner());
                // reap finished connections so a long-lived server under
                // connection churn does not accumulate dead JoinHandles
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Per-connection statement cache entry.
enum Statement {
    Prepared(PreparedQuery<'static>),
    ProbeTemplate(StatementSpec),
}

fn connection_loop(stream: TcpStream, shared: Arc<ServerShared>, conn_id: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut statements: HashMap<String, Statement> = HashMap::new();
    let subscriptions: Arc<Mutex<HashMap<u64, StandingQuery>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let alive = Arc::new(AtomicBool::new(true));
    // the flusher thread owns every standing-query frame write for this
    // connection: it parks on the server's frame nudge and drains the
    // subscription mailboxes the moment an APPLY queues frames, instead of
    // waiting out the old 100ms idle tick.  The writer mutex keeps frames
    // and response payloads from interleaving.
    let flusher = {
        let writer = Arc::clone(&writer);
        let subscriptions = Arc::clone(&subscriptions);
        let shared = Arc::clone(&shared);
        let alive = Arc::clone(&alive);
        std::thread::Builder::new()
            .name(format!("cej-server-flush-{conn_id}"))
            .spawn(move || flusher_loop(&writer, &subscriptions, &shared, &alive))
            .ok()
    };
    // one session handle per connection, all sharing the server's state
    let mut session = shared.session.clone();
    let probe_table = format!("__probe_{conn_id}");
    let mut last_trace: Option<u64> = None;
    let mut line = String::new();

    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // a timeout mid-line leaves already-read bytes in `line`;
                // keep them and continue accumulating (only a completed
                // line may be cleared).  The read timeout survives purely
                // as a shutdown poll — frames are the flusher's job now.
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let response = match Command::parse(&line) {
            Err(message) => format!("ERR {message}\n"),
            Ok(Command::Quit) => {
                let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                let _ = w.write_all(b"OK bye\n");
                break;
            }
            Ok(command) => dispatch(
                command,
                &shared,
                &mut session,
                &mut statements,
                &subscriptions,
                &probe_table,
                &mut last_trace,
            ),
        };
        line.clear();
        {
            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
            if w.write_all(response.as_bytes()).is_err() || w.flush().is_err() {
                break;
            }
        }
        // honour shutdown between requests: a client pipelining
        // back-to-back commands never hits the read-timeout branch
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    // wind the flusher down before reaping state it reads
    alive.store(false, Ordering::Release);
    shared.nudge.notify();
    if let Some(handle) = flusher {
        let _ = handle.join();
    }
    // reap this connection's scratch state from the shared catalog and
    // deregister its standing queries so they stop accumulating frames
    let subs: Vec<u64> = {
        let guard = subscriptions.lock().unwrap_or_else(|e| e.into_inner());
        guard.keys().copied().collect()
    };
    for sub in subs {
        session.unsubscribe(sub);
    }
    session.unregister_table(&probe_table);
}

/// One connection's frame-flusher thread: parks on the server-wide
/// [`FrameNudge`] (with a 100ms fallback so shutdown and raced edges are
/// never missed) and drains the subscription mailboxes each wake.
fn flusher_loop(
    writer: &Mutex<TcpStream>,
    subscriptions: &Mutex<HashMap<u64, StandingQuery>>,
    shared: &ServerShared,
    alive: &AtomicBool,
) {
    let mut seen = 0u64;
    while alive.load(Ordering::Acquire) && !shared.shutdown.load(Ordering::Acquire) {
        seen = shared.nudge.wait(seen, Duration::from_millis(100));
        if flush_deltas(writer, subscriptions, shared).is_err() {
            break; // client gone; the reader loop notices on its side
        }
    }
}

/// Writes every pending frame of this connection's standing queries, in
/// subscription order (frames within one subscription are already ordered
/// by the mailbox).
///
/// Change-driven frames (`seq != 0`) go through the server-wide
/// [`DeltaFrameCache`]: the body is rendered once per
/// `(plan fingerprint, apply seq)` and every subscriber — on this
/// connection or any other — writes the shared allocation behind its own
/// header line.  Snapshot frames are rendered directly.  Mailbox draining
/// and body rendering happen before the writer lock is taken, so a flush
/// round never blocks a response write on render work; rounds that found
/// at least one frame count into `cej_frame_wakeups_total`.
fn flush_deltas(
    writer: &Mutex<TcpStream>,
    subscriptions: &Mutex<HashMap<u64, StandingQuery>>,
    shared: &ServerShared,
) -> std::io::Result<()> {
    let mut subs: Vec<(u64, StandingQuery)> = {
        let guard = subscriptions.lock().unwrap_or_else(|e| e.into_inner());
        guard
            .iter()
            .map(|(sub, query)| (*sub, query.clone()))
            .collect()
    };
    subs.sort_by_key(|(sub, _)| *sub);
    let mut pending: Vec<(String, Option<Arc<String>>)> = Vec::new();
    for (sub, query) in &subs {
        let fingerprint = query.fingerprint();
        while let Some(frame) = query.poll() {
            if frame.seq == 0 {
                pending.push((render_delta(*sub, &frame), None));
            } else {
                let body = shared
                    .frames
                    .body(fingerprint, frame.seq, frame.refreshed, || {
                        render_delta_body(&frame)
                    });
                pending.push((render_delta_header(*sub, &frame), Some(body)));
            }
        }
    }
    if pending.is_empty() {
        return Ok(());
    }
    shared.frame_wakeups.inc();
    let mut writer = writer.lock().unwrap_or_else(|e| e.into_inner());
    for (header, body) in pending {
        writer.write_all(header.as_bytes())?;
        if let Some(body) = body {
            writer.write_all(body.as_bytes())?;
        }
    }
    writer.flush()
}

/// Executes one parsed command, returning the full response payload.
/// `last_trace` remembers the most recent trace id this connection's
/// queries captured — what `TRACE LAST` resolves first, so concurrent
/// connections don't read each other's traces.
fn dispatch(
    command: Command,
    shared: &ServerShared,
    session: &mut ContextJoinSession,
    statements: &mut HashMap<String, Statement>,
    subscriptions: &Mutex<HashMap<u64, StandingQuery>>,
    probe_table: &str,
    last_trace: &mut Option<u64>,
) -> String {
    match command {
        Command::Ping => "OK pong\n".to_string(),
        Command::Quit => unreachable!("handled by the connection loop"),
        Command::Stats => render_stats(shared),
        Command::Metrics => render_text(&shared.registry.render()),
        Command::Trace { target } => render_trace(target, *last_trace),
        Command::Prepare { id, spec } => match spec.as_ref() {
            StatementSpec::ProbeTemplate { .. } => {
                statements.insert(id.clone(), Statement::ProbeTemplate(*spec));
                format!("OK prepared {id} (probe template)\n")
            }
            _ => match spec
                .to_plan(None)
                .map_err(cej_err)
                .and_then(|plan| session.prepare(&plan))
            {
                Ok(prepared) => {
                    statements.insert(id.clone(), Statement::Prepared(prepared.detach()));
                    format!("OK prepared {id}\n")
                }
                Err(e) => format!("ERR {e}\n"),
            },
        },
        Command::Bind {
            id,
            new_id,
            threshold,
            at,
        } => match statements.get(&id) {
            Some(Statement::Prepared(prepared)) => {
                let bound = match at {
                    Some(index) => prepared.bind_threshold_at(index, threshold),
                    None => prepared.bind_threshold(threshold),
                };
                match bound {
                    Ok(bound) => {
                        statements.insert(new_id.clone(), Statement::Prepared(bound));
                        format!("OK bound {new_id} sim>={threshold}\n")
                    }
                    Err(e) => format!("ERR {e}\n"),
                }
            }
            Some(Statement::ProbeTemplate(_)) => {
                "ERR probe templates have no threshold to bind\n".to_string()
            }
            None => format!("ERR unknown statement `{id}`\n"),
        },
        Command::Explain { id } => match statements.get(&id) {
            Some(Statement::Prepared(prepared)) => render_text(&prepared.explain()),
            Some(Statement::ProbeTemplate(_)) => {
                "ERR probe templates plan per request; PROBE then ANALYZE\n".to_string()
            }
            None => format!("ERR unknown statement `{id}`\n"),
        },
        Command::Run { id } => {
            let Some(statement) = statements.get(&id) else {
                return format!("ERR unknown statement `{id}`\n");
            };
            let Statement::Prepared(prepared) = statement else {
                return "ERR probe templates execute via PROBE <id> <text>\n".to_string();
            };
            let trace = Trace::start(&format!("RUN {id}"));
            let response = admit_and_time(shared, &trace, || match prepared.run_traced(&trace) {
                Ok(report) => render_table(&report.table),
                Err(e) => format!("ERR {e}\n"),
            });
            if let Some(trace_id) = trace.finish() {
                *last_trace = Some(trace_id);
            }
            response
        }
        Command::Analyze { id } => {
            let Some(Statement::Prepared(prepared)) = statements.get(&id) else {
                return format!("ERR unknown or non-runnable statement `{id}`\n");
            };
            let trace = Trace::start(&format!("ANALYZE {id}"));
            let response = admit_and_time(shared, &trace, || {
                match prepared.explain_analyze_traced(&trace) {
                    Ok(analyzed) => render_text(&analyzed.text),
                    Err(e) => format!("ERR {e}\n"),
                }
            });
            if let Some(trace_id) = trace.finish() {
                *last_trace = Some(trace_id);
            }
            response
        }
        Command::Probe { id, text } => {
            let Some(Statement::ProbeTemplate(spec)) = statements.get(&id) else {
                return format!("ERR `{id}` is not a probe template\n");
            };
            let spec = spec.clone();
            let trace = Trace::start(&format!("PROBE {id}"));
            let response = admit_and_time(shared, &trace, || {
                let table = match TableBuilder::new().utf8("text", vec![text.clone()]).build() {
                    Ok(t) => t,
                    Err(e) => return format!("ERR {e}\n"),
                };
                session.register_table(probe_table, table);
                let outcome = spec
                    .to_plan(Some(probe_table))
                    .map_err(cej_err)
                    .and_then(|plan| session.execute_traced(&plan, &trace));
                match outcome {
                    Ok(report) => render_table(&report.table),
                    Err(e) => format!("ERR {e}\n"),
                }
            });
            if let Some(trace_id) = trace.finish() {
                *last_trace = Some(trace_id);
            }
            response
        }
        Command::Subscribe { id } => match statements.get(&id) {
            Some(Statement::Prepared(prepared)) => match prepared.clone().subscribe() {
                Ok(query) => {
                    let sub = query.id();
                    subscriptions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(sub, query);
                    // let the flusher pick up any seed frame promptly
                    shared.nudge.notify();
                    format!("OK subscribed {sub}\n")
                }
                Err(e) => format!("ERR {e}\n"),
            },
            Some(Statement::ProbeTemplate(_)) => {
                "ERR probe templates cannot be subscribed\n".to_string()
            }
            None => format!("ERR unknown statement `{id}`\n"),
        },
        Command::Unsubscribe { sub } => {
            let removed = subscriptions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&sub);
            if removed.is_none() {
                return format!("ERR unknown subscription `{sub}`\n");
            }
            session.unsubscribe(sub);
            format!("OK unsubscribed {sub}\n")
        }
        Command::Apply { table, spec } => {
            // apply_delta opens its own trace internally; the admission
            // span has nowhere to land, so the wrapper gets a disabled one
            let trace = Trace::disabled();
            admit_and_time(shared, &trace, || {
                let schema = match session.catalog().table(&table) {
                    Ok(t) => t.schema().clone(),
                    Err(e) => return format!("ERR {e}\n"),
                };
                let delta = match build_delta(&spec, &schema) {
                    Ok(d) => d,
                    Err(message) => return format!("ERR {message}\n"),
                };
                match session.apply_delta(&table, &delta) {
                    Ok(report) => {
                        // frames are queued: wake every connection's flusher
                        shared.nudge.notify();
                        format!(
                            "OK applied {table} v{} +{} -{} standing={} propagated={} refreshed={}\n",
                            report.version,
                            report.added_rows,
                            report.removed_rows,
                            report.standing_updated,
                            report.propagated,
                            report.refreshed,
                        )
                    }
                    Err(e) => format!("ERR {e}\n"),
                }
            })
        }
    }
}

/// Renders a `TRACE` verb response from the global capture ring and
/// slow-query log.
fn render_trace(target: TraceTarget, last_trace: Option<u64>) -> String {
    match target {
        TraceTarget::Last => match last_trace
            .and_then(cej_obs::trace_by_id)
            .or_else(cej_obs::last_trace)
        {
            Some(trace) => render_text(&trace.render()),
            None => "ERR no traces captured yet\n".to_string(),
        },
        TraceTarget::Id(id) => match cej_obs::trace_by_id(id) {
            Some(trace) => render_text(&trace.render()),
            None => format!("ERR no trace `{id}` in the capture ring\n"),
        },
        TraceTarget::Slow => {
            let slow = cej_obs::slow_queries();
            if slow.is_empty() {
                return "ERR no slow queries captured\n".to_string();
            }
            use std::fmt::Write as _;
            let mut out = String::new();
            for entry in slow {
                let _ = writeln!(
                    out,
                    "trace {} label=\"{}\" total_us={} fingerprint={:016x}",
                    entry.trace_id, entry.label, entry.total_us, entry.fingerprint
                );
            }
            render_text(&out)
        }
    }
}

/// Wraps a query body in admission control and latency accounting; time
/// spent waiting for an execution slot lands in an `admission.wait` span
/// when the query is traced.
fn admit_and_time(shared: &ServerShared, trace: &Trace, body: impl FnOnce() -> String) -> String {
    let wait = trace.span("admission.wait");
    let Ok(permit) = shared.gate.acquire() else {
        drop(wait);
        return "ERR busy (admission queue full, retry)\n".to_string();
    };
    drop(wait);
    let start = Instant::now();
    let response = body();
    let elapsed_us = start.elapsed().as_micros() as u64;
    drop(permit);
    shared.latency.record_us(elapsed_us);
    shared.queries.inc();
    response
}

/// Converts protocol-level plan errors into the engine error type's display.
fn cej_err(message: String) -> cej_core::CoreError {
    cej_core::CoreError::InvalidInput(message)
}

/// Renders the `STATS` line: admission, latency, caches, indexes, pool,
/// and incremental-view maintenance counters.  Every counter and gauge is
/// re-sourced from the metrics registry by name — `STATS` is a view over
/// the same entries `METRICS` exposes, so the two surfaces cannot drift.
/// Percentiles come from the registered histograms' shared cells.  New
/// keys are only ever appended, keeping the line backward compatible.
fn render_stats(shared: &ServerShared) -> String {
    let value = |name: &str| shared.registry.value(name).unwrap_or(0);
    let latency = shared.latency.summary();
    let ivm = shared.session.ivm_stats();
    format!(
        "OK queries={} inflight={} queued={} admitted={} rejected={} peak_inflight={} \
         p50_us={} p95_us={} p99_us={} max_us={} \
         index_builds={} index_hits={} index_evictions={} index_resident={} index_bytes={} \
         embed_calls={} embed_hits={} \
         pool_tasks={} pool_steals={} pool_injected={} pool_wakeups={} pool_queue_depth={} pool_workers={} \
         standing={} deltas_applied={} ivm_propagations={} ivm_refreshes={} \
         ivm_p50_us={} ivm_p95_us={} ivm_p99_us={} \
         frame_renders={} frame_shares={} frame_wakeups={}\n",
        value("cej_queries_total"),
        value("cej_admission_inflight"),
        value("cej_admission_queued"),
        value("cej_admission_admitted_total"),
        value("cej_admission_rejected_total"),
        value("cej_admission_peak_inflight"),
        latency.p50_us,
        latency.p95_us,
        latency.p99_us,
        latency.max_us,
        value("cej_index_builds_total"),
        value("cej_index_hits_total"),
        value("cej_index_evictions_total"),
        value("cej_index_resident"),
        value("cej_index_memory_bytes"),
        value("cej_embed_model_calls_total"),
        value("cej_embed_cache_hits_total"),
        value("cej_pool_tasks_total"),
        value("cej_pool_steals_total"),
        value("cej_pool_injected_total"),
        value("cej_pool_wakeups_total"),
        value("cej_pool_queue_depth"),
        value("cej_pool_workers"),
        value("cej_ivm_standing"),
        value("cej_ivm_deltas_applied_total"),
        value("cej_ivm_propagations_total"),
        value("cej_ivm_refreshes_total"),
        ivm.latency_us.0,
        ivm.latency_us.1,
        ivm.latency_us.2,
        value("cej_frame_renders_total"),
        value("cej_frame_shares_total"),
        value("cej_frame_wakeups_total"),
    )
}

/// A tiny blocking client for tests, benchmarks, and the load generator:
/// sends one request line, reads one full response (`OK`/`ERR` line, or a
/// framed `ROWS`/`TEXT` payload), and collects asynchronous `DELTA` frames
/// ([`Client::wait_delta`]).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// `DELTA` frames that arrived while a response was being read.
    pending: VecDeque<DeltaFrame>,
}

/// One streamed standing-query frame, as parsed off the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// Subscription id the frame belongs to.
    pub subscription: u64,
    /// Base-table version after the delta that produced this frame (0 for
    /// overflow snapshot frames).
    pub version: u64,
    /// Result rows added.
    pub added: usize,
    /// Result rows removed.
    pub removed: usize,
    /// `delta`, `refresh`, or `snapshot`.
    pub kind: String,
    /// Header + signed (`+`/`-` prefixed) rows, as sent.
    pub lines: Vec<String>,
    /// FNV-1a checksum the server computed over the payload.
    pub checksum: u64,
}

/// One parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK <detail>`.
    Ok(String),
    /// `ERR <message>`.
    Err(String),
    /// A `ROWS` payload: rows as raw tab-separated lines (header first) and
    /// the server-computed checksum from the `END` line.
    Rows {
        /// Header + data lines.
        lines: Vec<String>,
        /// FNV-1a checksum the server computed over the payload.
        checksum: u64,
    },
    /// A `TEXT` payload.
    Text(Vec<String>),
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            pending: VecDeque::new(),
        })
    }

    /// Sends one request line and reads the complete response.  `DELTA`
    /// frames the server flushed before the response are stashed for
    /// [`Client::wait_delta`], never lost.
    ///
    /// # Errors
    /// Propagates I/O errors and malformed framing.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let first = loop {
            let mut first = String::new();
            self.read_line(&mut first)?;
            let first = first.trim_end().to_string();
            if first.starts_with("DELTA ") {
                let frame = self.read_delta_body(&first)?;
                self.pending.push_back(frame);
                continue;
            }
            break first;
        };
        if let Some(detail) = first.strip_prefix("OK") {
            return Ok(Response::Ok(detail.trim().to_string()));
        }
        if let Some(message) = first.strip_prefix("ERR ") {
            return Ok(Response::Err(message.to_string()));
        }
        if let Some(counts) = first.strip_prefix("ROWS ") {
            let rows: usize = counts
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| bad_frame(&first))?;
            let mut lines = Vec::with_capacity(rows + 1);
            for _ in 0..rows + 1 {
                let mut l = String::new();
                self.read_line(&mut l)?;
                lines.push(l.trim_end().to_string());
            }
            let mut end = String::new();
            self.read_line(&mut end)?;
            let checksum = end
                .trim_end()
                .strip_prefix("END ")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| bad_frame(&end))?;
            return Ok(Response::Rows { lines, checksum });
        }
        if let Some(count) = first.strip_prefix("TEXT ") {
            let n: usize = count.parse().map_err(|_| bad_frame(&first))?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                let mut l = String::new();
                self.read_line(&mut l)?;
                lines.push(l.trim_end().to_string());
            }
            return Ok(Response::Text(lines));
        }
        Err(bad_frame(&first))
    }

    /// Waits up to `timeout` for the next asynchronous `DELTA` frame —
    /// stashed ones first, then the wire.  Returns `None` on timeout.
    ///
    /// # Errors
    /// Propagates I/O errors and malformed framing.
    pub fn wait_delta(&mut self, timeout: Duration) -> std::io::Result<Option<DeltaFrame>> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(Some(frame));
        }
        let deadline = Instant::now() + timeout;
        self.reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut buf = String::new();
        let frame = loop {
            match self.reader.read_line(&mut buf) {
                Ok(0) => break None, // server closed: no more frames
                Ok(_) => {
                    let line = buf.trim_end().to_string();
                    buf.clear();
                    if line.is_empty() {
                        continue;
                    }
                    if !line.starts_with("DELTA ") {
                        self.reader.get_ref().set_read_timeout(None)?;
                        return Err(bad_frame(&line));
                    }
                    // the header is in: the body follows immediately, read
                    // it blocking
                    self.reader.get_ref().set_read_timeout(None)?;
                    break Some(self.read_delta_body(&line)?);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // a timeout mid-line keeps the partial bytes in `buf`
                    if Instant::now() >= deadline && buf.is_empty() {
                        break None;
                    }
                }
                Err(e) => {
                    self.reader.get_ref().set_read_timeout(None)?;
                    return Err(e);
                }
            }
        };
        self.reader.get_ref().set_read_timeout(None)?;
        Ok(frame)
    }

    /// Reads the body of a `DELTA` frame whose header line was just read.
    fn read_delta_body(&mut self, header: &str) -> std::io::Result<DeltaFrame> {
        let fields: Vec<&str> = header.split_whitespace().collect();
        let ["DELTA", sub, version, added, removed, _cols, kind] = fields.as_slice() else {
            return Err(bad_frame(header));
        };
        let parse =
            |token: &str| -> std::io::Result<u64> { token.parse().map_err(|_| bad_frame(header)) };
        let (subscription, version) = (parse(sub)?, parse(version)?);
        let (added, removed) = (parse(added)? as usize, parse(removed)? as usize);
        let mut lines = Vec::with_capacity(1 + added + removed);
        for _ in 0..1 + added + removed {
            let mut l = String::new();
            self.read_line(&mut l)?;
            lines.push(l.trim_end().to_string());
        }
        let mut end = String::new();
        self.read_line(&mut end)?;
        let checksum = end
            .trim_end()
            .strip_prefix("END ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad_frame(&end))?;
        Ok(DeltaFrame {
            subscription,
            version,
            added,
            removed,
            kind: (*kind).to_string(),
            lines,
            checksum,
        })
    }

    /// Reads one line, retrying through read timeouts (the server sets none
    /// on client sockets, but loaded servers may respond slowly).
    fn read_line(&mut self, buf: &mut String) -> std::io::Result<()> {
        loop {
            match self.reader.read_line(buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => return Ok(()),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn bad_frame(line: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed response frame: `{line}`"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_embedding::{FastTextConfig, FastTextModel};

    /// Star-schema session: orders → customers → regions by hash joins,
    /// products by similarity on the order note.
    fn star_session() -> ContextJoinSession {
        let mut s = ContextJoinSession::new();
        s.register_table(
            "orders",
            TableBuilder::new()
                .int64("order_id", vec![1, 2, 3, 4, 5, 6])
                .int64("cust_fk", vec![10, 10, 20, 20, 30, 30])
                .int64("total", vec![50, 150, 250, 80, 120, 300])
                .utf8(
                    "note",
                    vec![
                        "barbecue grill".into(),
                        "database server".into(),
                        "barbecue tongs".into(),
                        "laptop sleeve".into(),
                        "database book".into(),
                        "garden barbecue".into(),
                    ],
                )
                .build()
                .unwrap(),
        );
        s.register_table(
            "customers",
            TableBuilder::new()
                .int64("cust_id", vec![10, 20, 30])
                .int64("region_fk", vec![100, 100, 200])
                .utf8(
                    "cust_name",
                    vec!["ada".into(), "grace".into(), "edsger".into()],
                )
                .build()
                .unwrap(),
        );
        s.register_table(
            "regions",
            TableBuilder::new()
                .int64("region_id", vec![100, 200])
                .utf8("region_name", vec!["west".into(), "east".into()])
                .build()
                .unwrap(),
        );
        s.register_table(
            "products",
            TableBuilder::new()
                .int64("product_id", vec![1000, 2000, 3000])
                .utf8(
                    "title",
                    vec![
                        "barbecues and grills".into(),
                        "database systems".into(),
                        "notebook computers".into(),
                    ],
                )
                .build()
                .unwrap(),
        );
        let model = FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap();
        s.register_model("ft", model);
        for table in ["orders", "customers", "regions", "products"] {
            s.catalog().analyze(table).unwrap();
        }
        s
    }

    const FOUR_TABLE_QUERY: &str = "PREPARE q QUERY orders \
         JOIN customers ON orders.cust_fk=customers.cust_id \
         JOIN regions ON customers.region_fk=regions.region_id \
         EJOIN products ON note~title MODEL ft SIM 0.4 \
         WHERE orders.total >= 100";

    #[test]
    fn four_table_query_round_trips_with_verified_checksum() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.request(FOUR_TABLE_QUERY).unwrap(),
            Response::Ok(_)
        ));
        let Response::Rows { lines, checksum } = client.request("RUN q").unwrap() else {
            panic!("expected rows");
        };
        // re-derive the checksum client-side from the framed payload: the
        // server's END line must cover exactly the header and rows it sent
        let mut payload = String::new();
        for line in &lines {
            payload.push_str(line);
            payload.push('\n');
        }
        assert_eq!(checksum, protocol::fnv1a(payload.as_bytes()));
        // header carries the 4-table output schema
        let header = &lines[0];
        for column in ["l_order_id", "l_cust_name", "l_region_name", "r_title"] {
            assert!(header.contains(column), "header missing {column}: {header}");
        }
        // the >=100 filter keeps the 300-total garden-barbecue order, whose
        // customer sits in the east region
        assert!(
            lines[1..]
                .iter()
                .any(|l| l.contains("garden barbecue") && l.contains("east")),
            "expected east-region barbecue row in {lines:?}"
        );
        assert!(
            lines[1..].iter().all(|l| !l.contains("\t50\t")),
            "filtered-out total leaked into {lines:?}"
        );
        // repeat runs are byte-identical (prepared-statement contract)
        let Response::Rows {
            checksum: again, ..
        } = client.request("RUN q").unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(checksum, again);
        // the plan and its estimates render
        let Response::Text(explain) = client.request("EXPLAIN q").unwrap() else {
            panic!("expected text");
        };
        assert!(
            explain.iter().any(|l| l.contains("HashJoin")),
            "{explain:?}"
        );
        server.shutdown();
    }

    #[test]
    fn legacy_and_query_forms_of_a_two_table_join_agree() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // legacy two-table form …
        assert!(matches!(
            client
                .request("PREPARE legacy JOIN orders.note products.title MODEL ft SIM 0.4 LWHERE total >= 100")
                .unwrap(),
            Response::Ok(_)
        ));
        // … and its documented QUERY equivalent
        assert!(matches!(
            client
                .request(
                    "PREPARE new QUERY orders EJOIN products ON note~title MODEL ft SIM 0.4 \
                     WHERE orders.total >= 100"
                )
                .unwrap(),
            Response::Ok(_)
        ));
        let Response::Rows { checksum: a, lines } = client.request("RUN legacy").unwrap() else {
            panic!("expected rows");
        };
        let Response::Rows { checksum: b, .. } = client.request("RUN new").unwrap() else {
            panic!("expected rows");
        };
        assert!(lines.len() > 1, "legacy form returned no rows");
        assert_eq!(a, b, "legacy and QUERY forms must serve identical bytes");
        server.shutdown();
    }

    /// Extracts `<sub>` from an `OK subscribed <sub>` detail.
    fn sub_id(response: Response) -> u64 {
        let Response::Ok(detail) = response else {
            panic!("expected OK subscribed, got {response:?}");
        };
        detail
            .strip_prefix("subscribed ")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed subscribe detail `{detail}`"))
    }

    /// Re-derives a frame's checksum from its framed payload.
    fn frame_checksum(frame: &DeltaFrame) -> u64 {
        let mut payload = String::new();
        for line in &frame.lines {
            payload.push_str(line);
            payload.push('\n');
        }
        protocol::fnv1a(payload.as_bytes())
    }

    #[test]
    fn apply_streams_delta_frames_to_standing_subscriptions() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let wait = Duration::from_secs(10);

        // subscriber 1: the multi-way four-table query
        let mut multi = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            multi.request(FOUR_TABLE_QUERY).unwrap(),
            Response::Ok(_)
        ));
        let multi_sub = sub_id(multi.request("SUBSCRIBE q").unwrap());

        // subscriber 2: a top-k ejoin over the same fact table
        let mut topk = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            topk.request("PREPARE t QUERY orders EJOIN products ON note~title MODEL ft TOPK 1")
                .unwrap(),
            Response::Ok(_)
        ));
        let topk_sub = sub_id(topk.request("SUBSCRIBE t").unwrap());

        // a third connection mutates the fact table: both subscribers get
        // exact checksummed frames
        let mut applier = Client::connect(server.local_addr()).unwrap();
        let Response::Ok(detail) = applier
            .request("APPLY orders APPEND 7|30|500|garden barbecue")
            .unwrap()
        else {
            panic!("expected OK applied");
        };
        assert!(detail.starts_with("applied orders v1 +1 -0"), "{detail}");
        assert!(detail.contains("standing=2"), "{detail}");

        let frame = multi.wait_delta(wait).unwrap().expect("multi-way frame");
        assert_eq!(frame.subscription, multi_sub);
        assert_eq!(frame.version, 1);
        assert_eq!(frame.kind, "delta", "append must propagate incrementally");
        assert_eq!(frame.removed, 0);
        assert!(
            frame.added >= 1,
            "appended order must join through: {frame:?}"
        );
        assert_eq!(frame.checksum, frame_checksum(&frame));
        // the new order (cust 30 → east region) rides every added row
        assert!(
            frame.lines[1..]
                .iter()
                .all(|l| l.starts_with('+') && l.contains("garden barbecue") && l.contains("east")),
            "{frame:?}"
        );

        let frame = topk.wait_delta(wait).unwrap().expect("top-k frame");
        assert_eq!(frame.subscription, topk_sub);
        assert_eq!((frame.added, frame.removed), (1, 0), "{frame:?}");
        assert_eq!(frame.kind, "delta");
        assert_eq!(frame.checksum, frame_checksum(&frame));

        // deleting the row streams the inverse diff to both subscribers
        let Response::Ok(detail) = applier.request("APPLY orders DELETE order_id 7").unwrap()
        else {
            panic!("expected OK applied");
        };
        assert!(detail.starts_with("applied orders v2 +0 -1"), "{detail}");

        let frame = multi
            .wait_delta(wait)
            .unwrap()
            .expect("multi-way delete frame");
        assert_eq!(frame.version, 2);
        assert_eq!(frame.added, 0);
        assert!(frame.removed >= 1, "{frame:?}");
        assert!(
            frame.lines[1..].iter().all(|l| l.starts_with('-')),
            "{frame:?}"
        );
        let frame = topk.wait_delta(wait).unwrap().expect("top-k delete frame");
        assert_eq!((frame.added, frame.removed), (0, 1), "{frame:?}");

        // the maintained results drained back to the seed state: a fresh
        // RUN of the same statement is byte-identical to before the churn
        let Response::Rows { lines, .. } = multi.request("RUN q").unwrap() else {
            panic!("expected rows");
        };
        assert!(
            lines[1..].iter().all(|l| !l.contains("\t500\t")),
            "{lines:?}"
        );

        // UNSUBSCRIBE stops the stream for that subscriber only
        assert!(matches!(
            topk.request(&format!("UNSUBSCRIBE {topk_sub}")).unwrap(),
            Response::Ok(_)
        ));
        assert!(matches!(
            applier
                .request("APPLY orders UPSERT order_id 2|10|175|garden barbecue")
                .unwrap(),
            Response::Ok(_)
        ));
        let frame = multi.wait_delta(wait).unwrap().expect("upsert frame");
        assert_eq!(frame.version, 3);
        assert!(
            topk.wait_delta(Duration::from_millis(300))
                .unwrap()
                .is_none(),
            "unsubscribed connection must not receive frames"
        );

        // server stats expose the maintenance counters
        let Response::Ok(stats) = applier.request("STATS").unwrap() else {
            panic!("expected stats");
        };
        assert!(stats.contains("standing=1"), "{stats}");
        assert!(stats.contains("deltas_applied=3"), "{stats}");
        assert!(stats.contains("ivm_p50_us="), "{stats}");

        // unknown ids and malformed payloads answer ERR, never disconnect
        assert!(matches!(
            applier.request("SUBSCRIBE ghost").unwrap(),
            Response::Err(_)
        ));
        assert!(matches!(
            applier.request("UNSUBSCRIBE 9999").unwrap(),
            Response::Err(_)
        ));
        assert!(matches!(
            applier.request("APPLY orders APPEND 1|2").unwrap(),
            Response::Err(_)
        ));
        assert!(matches!(
            applier.request("APPLY ghost APPEND 1|2|3|x").unwrap(),
            Response::Err(_)
        ));
        server.shutdown();
    }

    #[test]
    fn same_statement_fanout_renders_each_frame_body_once() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let wait = Duration::from_secs(10);

        // two subscriptions over the SAME prepared statement on one
        // connection: flush order within a connection is deterministic
        // (ascending subscription id), so the first write renders the frame
        // body and the second must be served from the shared cache
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client
                .request("PREPARE t QUERY orders EJOIN products ON note~title MODEL ft TOPK 1")
                .unwrap(),
            Response::Ok(_)
        ));
        let sub_a = sub_id(client.request("SUBSCRIBE t").unwrap());
        let sub_b = sub_id(client.request("SUBSCRIBE t").unwrap());
        assert_ne!(sub_a, sub_b);

        let mut applier = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            applier
                .request("APPLY orders APPEND 7|30|500|garden barbecue")
                .unwrap(),
            Response::Ok(_)
        ));

        // both subscriptions stream the change; everything but the header's
        // subscription id is byte-identical (same body allocation)
        let first = client.wait_delta(wait).unwrap().expect("first frame");
        let second = client.wait_delta(wait).unwrap().expect("second frame");
        assert_eq!(
            (first.subscription, second.subscription),
            (sub_a.min(sub_b), sub_a.max(sub_b))
        );
        assert_eq!(first.version, second.version);
        assert_eq!(first.kind, second.kind);
        assert_eq!(first.lines, second.lines);
        assert_eq!(first.checksum, second.checksum);
        assert_eq!(first.checksum, frame_checksum(&first));

        // the cache proves the fan-out: one render, one shared write
        let Response::Ok(stats) = applier.request("STATS").unwrap() else {
            panic!("expected stats");
        };
        assert!(stats.contains("frame_renders=1"), "{stats}");
        assert!(stats.contains("frame_shares=1"), "{stats}");

        // a second apply reuses nothing across versions: render counts grow
        assert!(matches!(
            applier.request("APPLY orders DELETE order_id 7").unwrap(),
            Response::Ok(_)
        ));
        let d1 = client.wait_delta(wait).unwrap().expect("delete frame a");
        let d2 = client.wait_delta(wait).unwrap().expect("delete frame b");
        assert_eq!(d1.lines, d2.lines);
        let Response::Ok(stats) = applier.request("STATS").unwrap() else {
            panic!("expected stats");
        };
        assert!(stats.contains("frame_renders=2"), "{stats}");
        assert!(stats.contains("frame_shares=2"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn bind_at_targets_one_of_two_thresholds_over_the_wire() {
        let mut session = star_session();
        session.register_table(
            "slogans",
            TableBuilder::new()
                .utf8(
                    "slogan",
                    vec!["grills for barbecue fans".into(), "fast databases".into()],
                )
                .build()
                .unwrap(),
        );
        session.catalog().analyze("slogans").unwrap();
        let mut server = Server::start(session, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client
                .request(
                    "PREPARE q2 QUERY orders EJOIN products ON note~title MODEL ft SIM 0.4 \
                     EJOIN slogans ON l_note~slogan MODEL ft SIM 0.4"
                )
                .unwrap(),
            Response::Ok(_)
        ));
        // untargeted BIND on a two-threshold plan is ambiguous
        let Response::Err(message) = client.request("BIND q2 q2hi 0.9").unwrap() else {
            panic!("expected ERR");
        };
        assert!(message.contains("ambiguous threshold bind"), "{message}");
        // targeted BIND succeeds and the statement runs
        assert!(matches!(
            client.request("BIND q2 q2hi 0.99 AT 0").unwrap(),
            Response::Ok(_)
        ));
        assert!(matches!(
            client.request("RUN q2hi").unwrap(),
            Response::Rows { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn metrics_verb_exposes_every_stat_family() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.request(FOUR_TABLE_QUERY).unwrap(),
            Response::Ok(_)
        ));
        assert!(matches!(
            client.request("RUN q").unwrap(),
            Response::Rows { .. }
        ));
        let Response::Text(lines) = client.request("METRICS").unwrap() else {
            panic!("expected TEXT exposition");
        };
        let text = lines.join("\n");
        for family in [
            "cej_queries_total",
            "cej_admission_admitted_total",
            "cej_query_latency_us_bucket",
            "cej_query_latency_us_count",
            "cej_index_builds_total",
            "cej_embed_model_calls_total",
            "cej_pool_tasks_total",
            "cej_ivm_deltas_applied_total",
            "cej_ivm_propagation_latency_us_count",
            "cej_frame_renders_total",
            "cej_frame_wakeups_total",
            "cej_traces_captured_total",
        ] {
            assert!(text.contains(family), "metrics missing {family}:\n{text}");
        }
        assert!(
            text.contains("# HELP cej_queries_total")
                && text.contains("# TYPE cej_queries_total counter"),
            "{text}"
        );
        // one RUN went through: the counter and latency histogram saw it
        assert!(text.contains("cej_queries_total 1"), "{text}");
        assert!(text.contains("cej_query_latency_us_count 1"), "{text}");
        // the in-process accessor serves the same exposition
        assert!(server.metrics().contains("cej_queries_total"));
        server.shutdown();
    }

    #[test]
    fn trace_verbs_render_the_span_tree_of_the_last_query() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // nothing traced on this connection yet is only an error when the
        // global ring is also empty, which concurrent tests may not
        // guarantee — so don't assert the empty case here
        assert!(matches!(
            client.request(FOUR_TABLE_QUERY).unwrap(),
            Response::Ok(_)
        ));
        assert!(matches!(
            client.request("RUN q").unwrap(),
            Response::Rows { .. }
        ));
        let Response::Text(lines) = client.request("TRACE LAST").unwrap() else {
            panic!("expected TEXT trace");
        };
        let text = lines.join("\n");
        assert!(text.contains("label=\"RUN q\""), "{text}");
        for span in [
            "phase.rewrite",
            "phase.order",
            "phase.lower",
            "phase.execute",
        ] {
            assert!(text.contains(span), "trace missing {span}:\n{text}");
        }
        assert!(text.contains("admission.wait"), "{text}");
        assert!(text.contains("HashJoin"), "{text}");
        // TRACE <id> answers the same tree; a bogus id answers ERR
        let trace_id = lines[0]
            .split_whitespace()
            .nth(1)
            .and_then(|t| t.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("malformed trace header `{}`", lines[0]));
        let Response::Text(by_id) = client.request(&format!("TRACE {trace_id}")).unwrap() else {
            panic!("expected TEXT trace by id");
        };
        assert_eq!(lines, by_id);
        assert!(matches!(
            client.request("TRACE 18446744073709551614").unwrap(),
            Response::Err(_)
        ));
        server.shutdown();
    }

    #[test]
    fn apply_wakes_the_frame_flusher_without_waiting_for_an_idle_tick() {
        let mut server = Server::start(star_session(), ServerConfig::default()).unwrap();
        let wait = Duration::from_secs(10);
        let mut subscriber = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            subscriber
                .request("PREPARE t QUERY orders EJOIN products ON note~title MODEL ft TOPK 1")
                .unwrap(),
            Response::Ok(_)
        ));
        let sub = sub_id(subscriber.request("SUBSCRIBE t").unwrap());

        let mut applier = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            applier
                .request("APPLY orders APPEND 7|30|500|garden barbecue")
                .unwrap(),
            Response::Ok(_)
        ));
        let frame = subscriber.wait_delta(wait).unwrap().expect("delta frame");
        assert_eq!(frame.subscription, sub);
        // the flusher round that delivered it counted a wakeup
        let Response::Ok(stats) = applier.request("STATS").unwrap() else {
            panic!("expected stats");
        };
        let wakeups: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("frame_wakeups="))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no frame_wakeups in `{stats}`"));
        assert!(wakeups >= 1, "{stats}");
        server.shutdown();
    }
}
