//! The line-oriented text protocol `cej-server` speaks.
//!
//! One request per line, whitespace-separated tokens, case-sensitive
//! keywords; the full grammar (also documented in the README's Serving
//! section):
//!
//! ```text
//! PING
//! QUIT
//! STATS
//! METRICS
//! TRACE (LAST | SLOW | <trace-id>)
//! PREPARE <id> QUERY <table>
//!         [JOIN <table> ON <ta>.<ca>=<tb>.<cb>]...
//!         [EJOIN <table> ON <lcol>~<rcol> MODEL <model> (TOPK <k> | SIM <t>)]...
//!         [WHERE <table>.<col> <op> <value>]...
//! BIND <id> <new-id> <threshold> [AT <index>]
//! RUN <id>
//! EXPLAIN <id>
//! ANALYZE <id>
//! PROBE <id> <text…>
//! SUBSCRIBE <id>
//! UNSUBSCRIBE <sub>
//! APPLY <table> APPEND <row>[;<row>]…
//! APPLY <table> DELETE <key-column> <key>[;<key>]…
//! APPLY <table> UPSERT <key-column> <row>[;<row>]…
//! ```
//!
//! plus the legacy statement kinds, kept for pre-N-table clients (each is a
//! special case of `QUERY` — the README's "Query API" section documents the
//! mapping):
//!
//! ```text
//! PREPARE <id> SCAN <table> [WHERE <col> <op> <value>]...
//! PREPARE <id> JOIN <lt>.<lcol> <rt>.<rcol> MODEL <model> (TOPK <k> | SIM <t>)
//!         [LWHERE <col> <op> <value>] [RWHERE <col> <op> <value>]
//! PREPARE <id> PROBE <rt>.<rcol> MODEL <model> TOPK <k>
//! ```
//!
//! `QUERY` composes any number of hash equi-joins (`JOIN … ON a.x=b.y`,
//! column names preserved, one side must name the table being added) and
//! context-enhanced joins (`EJOIN … ON lcol~rcol`, output renamed `l_*` /
//! `r_*` plus `similarity`) over filtered scans; the optimizer's DP pass
//! picks the execution order, so clause order only affects naming, not cost.
//! `WHERE <table>.<col>` clauses attach to that table's scan before any
//! join.  `BIND … AT <index>` targets the index-th `SIM` ejoin (explain
//! order, 0-based) when a plan has several.
//!
//! `<op>` is one of `= != < <= > >=`; `<value>` parses as an integer, then
//! a float, then falls back to a string token.  Responses are
//! `OK <detail>` / `ERR <message>` single lines, except row payloads:
//!
//! ```text
//! ROWS <n> <cols>
//! <tab-separated column names>
//! <tab-separated row> × n
//! END <fnv1a-64-checksum-hex>
//! ```
//!
//! and text payloads (`EXPLAIN` / `ANALYZE` / `METRICS` / `TRACE`):
//! `TEXT <n>` followed by `n` lines.  The `END` checksum covers the header
//! and every row in order, so clients can assert byte-identical results
//! across servers and thread counts without hashing themselves.
//!
//! ## Observability verbs
//!
//! `METRICS` renders the server's unified metrics registry in Prometheus
//! text exposition format (`# HELP`/`# TYPE` plus samples; histograms as
//! cumulative `_bucket{le="…"}` series) — the scrape surface.  `TRACE LAST`
//! renders the span tree of the last query traced *on this connection*
//! (falling back to the most recent trace process-wide), `TRACE <id>`
//! renders a specific trace by the id reported in slow-query entries, and
//! `TRACE SLOW` lists the slow-query log (queries at or above
//! `CEJ_SLOW_QUERY_MS`, traced even when sampling is off).  Tracing of
//! served queries follows `CEJ_TRACE_SAMPLE` (default: every query).
//!
//! ## Incremental views on the wire
//!
//! `APPLY` mutates a registered table (rows are `|`-separated cells in
//! schema column order, `;` separates rows; cells may contain spaces but
//! not `|`, `;`, tabs, or newlines; each cell parses as the column's
//! declared type, so the payload stays untyped like `WHERE` values).
//! `SUBSCRIBE <id>` turns the prepared statement `<id>` into a standing
//! query and answers `OK subscribed <sub>`; from then on every `APPLY`
//! that changes its result pushes one asynchronous frame to the
//! subscribing connection (flushed between requests, never inside a
//! response):
//!
//! ```text
//! DELTA <sub> <version> <n-added> <n-removed> <cols> <delta|refresh|snapshot>
//! <tab-separated column names>
//! +<tab-separated row> × n-added
//! -<tab-separated row> × n-removed
//! END <fnv1a-64-checksum-hex>
//! ```
//!
//! `version` is the mutated base table's version after the delta,
//! `refresh` marks a frame produced by a full re-run (still an exact
//! diff), and `snapshot` marks a mailbox-overflow recovery frame whose
//! `+` rows are the complete current result (replace, don't patch).  The
//! `END` checksum covers the header and signed rows like `ROWS`.
//!
//! This module is pure (parsing and rendering only) and unit-tested
//! without sockets.

use cej_core::ResultDelta;
use cej_relational::{col, lit_f64, lit_i64, lit_str, Expr, LogicalPlan, SimilarityPredicate};
use cej_storage::{Column, DataType, Delta, Field, ScalarValue, Schema, Table};

/// One filter clause of a prepared statement.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereClause {
    /// Column the predicate applies to.
    pub column: String,
    /// Comparison operator token (`=`, `!=`, `<`, `<=`, `>`, `>=`).
    pub op: String,
    /// Raw value token (typed at plan-build time).
    pub value: String,
}

impl WhereClause {
    /// Lowers the clause to an [`Expr`], typing the value as int → float →
    /// string in that order.
    ///
    /// # Errors
    /// Returns a message for unknown operators.
    pub fn to_expr(&self) -> Result<Expr, String> {
        let value = if let Ok(i) = self.value.parse::<i64>() {
            lit_i64(i)
        } else if let Ok(f) = self.value.parse::<f64>() {
            lit_f64(f)
        } else {
            lit_str(&self.value)
        };
        let lhs = col(&self.column);
        Ok(match self.op.as_str() {
            "=" => lhs.eq(value),
            "!=" => lhs.not_eq(value),
            "<" => lhs.lt(value),
            "<=" => lhs.lt_eq(value),
            ">" => lhs.gt(value),
            ">=" => lhs.gt_eq(value),
            other => return Err(format!("unknown operator `{other}`")),
        })
    }
}

/// One `JOIN <table> ON <ta>.<ca>=<tb>.<cb>` step of a `QUERY` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// The table this step adds to the query.
    pub table: String,
    /// Join column on the accumulated left side (a column of an
    /// already-added table; names are preserved by hash joins).
    pub left_column: String,
    /// Join column on the added table.
    pub right_column: String,
}

/// One `EJOIN <table> ON <lcol>~<rcol> MODEL <m> …` step of a `QUERY`
/// statement.
#[derive(Debug, Clone, PartialEq)]
pub struct EjoinStep {
    /// The table this step adds to the query.
    pub table: String,
    /// Text column on the accumulated left side (post-rename name if a
    /// previous `EJOIN` already prefixed it).
    pub left_column: String,
    /// Text column on the added table.
    pub right_column: String,
    /// Embedding model name.
    pub model: String,
    /// Similarity predicate.
    pub predicate: SimilarityPredicate,
}

/// A statement spec a client registered with `PREPARE`.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementSpec {
    /// `QUERY <table> [JOIN …]… [EJOIN …]… [WHERE …]…` — the N-table query
    /// form: filtered scans composed by hash equi-joins and context-enhanced
    /// joins, join order chosen by the optimizer.
    Query {
        /// First table of the query.
        base: String,
        /// Hash equi-join steps, in clause order.
        joins: Vec<JoinStep>,
        /// Context-enhanced join steps, applied after the equi-joins (the
        /// DP pass may sink equi-joins below them).
        ejoins: Vec<EjoinStep>,
        /// Per-table filters: `(table, clause)`, attached to that table's
        /// scan.
        filters: Vec<(String, WhereClause)>,
    },
    /// Legacy `SCAN <table> [WHERE …]…` — equivalent to
    /// `QUERY <table> [WHERE <table>.<col> …]…`; kept for pre-N-table
    /// clients.
    Scan {
        /// Scanned table.
        table: String,
        /// Conjunctive filters, applied in order.
        filters: Vec<WhereClause>,
    },
    /// Legacy `JOIN …` — a context-enhanced join between two registered
    /// tables; equivalent to `QUERY <lt> EJOIN <rt> ON <lc>~<rc> MODEL …`
    /// with per-table `WHERE` clauses.  Kept for pre-N-table clients.
    Join {
        /// Outer table.
        left_table: String,
        /// Outer join column.
        left_column: String,
        /// Inner table.
        right_table: String,
        /// Inner join column.
        right_column: String,
        /// Embedding model name.
        model: String,
        /// Similarity predicate.
        predicate: SimilarityPredicate,
        /// Optional filter on the outer table.
        left_where: Option<WhereClause>,
        /// Optional filter on the inner table.
        right_where: Option<WhereClause>,
    },
    /// `PROBE …` — a template joining one ad-hoc probe string (supplied per
    /// `PROBE <id> <text>` request) against a registered table.
    ProbeTemplate {
        /// Inner table.
        right_table: String,
        /// Inner join column.
        right_column: String,
        /// Embedding model name.
        model: String,
        /// Neighbours returned per probe.
        k: usize,
    },
}

impl StatementSpec {
    /// Builds the logical plan for this spec.  For probe templates,
    /// `probe_table` names the (per-connection) one-row table holding the
    /// ad-hoc text in column `text`.
    ///
    /// # Errors
    /// Returns a message for untypable filters.
    pub fn to_plan(&self, probe_table: Option<&str>) -> Result<LogicalPlan, String> {
        match self {
            StatementSpec::Query {
                base,
                joins,
                ejoins,
                filters,
            } => {
                let filtered_scan = |table: &str| -> Result<LogicalPlan, String> {
                    let mut plan = LogicalPlan::scan(table);
                    for (t, clause) in filters {
                        if t == table {
                            plan = plan.select(clause.to_expr()?);
                        }
                    }
                    Ok(plan)
                };
                let mut plan = filtered_scan(base)?;
                for step in joins {
                    plan = LogicalPlan::join(
                        plan,
                        filtered_scan(&step.table)?,
                        &step.left_column,
                        &step.right_column,
                    );
                }
                for step in ejoins {
                    plan = LogicalPlan::e_join(
                        plan,
                        filtered_scan(&step.table)?,
                        &step.left_column,
                        &step.right_column,
                        &step.model,
                        step.predicate,
                    );
                }
                Ok(plan)
            }
            StatementSpec::Scan { table, filters } => {
                let mut plan = LogicalPlan::scan(table);
                for clause in filters {
                    plan = plan.select(clause.to_expr()?);
                }
                Ok(plan)
            }
            StatementSpec::Join {
                left_table,
                left_column,
                right_table,
                right_column,
                model,
                predicate,
                left_where,
                right_where,
            } => {
                let mut left = LogicalPlan::scan(left_table);
                if let Some(clause) = left_where {
                    left = left.select(clause.to_expr()?);
                }
                let mut right = LogicalPlan::scan(right_table);
                if let Some(clause) = right_where {
                    right = right.select(clause.to_expr()?);
                }
                Ok(LogicalPlan::e_join(
                    left,
                    right,
                    left_column,
                    right_column,
                    model,
                    *predicate,
                ))
            }
            StatementSpec::ProbeTemplate {
                right_table,
                right_column,
                model,
                k,
            } => {
                let probe = probe_table.ok_or("probe template requires a probe table")?;
                Ok(LogicalPlan::e_join(
                    LogicalPlan::scan(probe),
                    LogicalPlan::scan(right_table),
                    "text",
                    right_column,
                    model,
                    SimilarityPredicate::TopK(*k),
                ))
            }
        }
    }
}

/// The mutation payload of an `APPLY` request.  Row and key payloads stay
/// raw strings at parse time — the protocol layer has no schema access —
/// and are typed against the target table's schema by [`build_delta`] at
/// dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplySpec {
    /// `APPEND <row>[;<row>]…` — rows in schema column order.
    Append {
        /// Raw `;`-separated rows of `|`-separated cells.
        rows: String,
    },
    /// `DELETE <key-column> <key>[;<key>]…` — multiset delete by key.
    Delete {
        /// Column the keys are matched against.
        key_column: String,
        /// Raw `;`-separated key values.
        keys: String,
    },
    /// `UPSERT <key-column> <row>[;<row>]…` — insert-or-replace by key.
    Upsert {
        /// Column upsert keys are matched against.
        key_column: String,
        /// Raw `;`-separated replacement rows of `|`-separated cells.
        rows: String,
    },
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Close the connection.
    Quit,
    /// Server / session statistics.
    Stats,
    /// Register a statement under an id.
    Prepare {
        /// Statement id.
        id: String,
        /// The statement (boxed: specs dwarf the other variants).
        spec: Box<StatementSpec>,
    },
    /// Re-bind a prepared threshold join to a new threshold.
    Bind {
        /// Source statement id.
        id: String,
        /// Id the re-bound statement registers under.
        new_id: String,
        /// New similarity threshold.
        threshold: f32,
        /// Which `SIM` ejoin to rebind (explain order, 0-based) when the
        /// plan has several; `None` requires an unambiguous single target.
        at: Option<usize>,
    },
    /// Execute a prepared statement.
    Run {
        /// Statement id.
        id: String,
    },
    /// Render the physical plan of a prepared statement.
    Explain {
        /// Statement id.
        id: String,
    },
    /// Execute and render estimated-vs-actual rows (`EXPLAIN ANALYZE`).
    Analyze {
        /// Statement id.
        id: String,
    },
    /// Execute a probe template against ad-hoc text.
    Probe {
        /// Template id.
        id: String,
        /// The probe text (rest of the line, may contain spaces).
        text: String,
    },
    /// Mutate a registered table and propagate to standing queries.
    Apply {
        /// Target table.
        table: String,
        /// The mutation payload.
        spec: ApplySpec,
    },
    /// Turn a prepared statement into a standing query streaming `DELTA`
    /// frames to this connection.
    Subscribe {
        /// Statement id.
        id: String,
    },
    /// Cancel a standing query by its subscription id.
    Unsubscribe {
        /// Subscription id (as returned by `OK subscribed <sub>`).
        sub: u64,
    },
    /// Render the metrics registry in Prometheus text exposition format.
    Metrics,
    /// Render a captured query trace (span tree) or the slow-query log.
    Trace {
        /// Which trace to render.
        target: TraceTarget,
    },
}

/// Target of a `TRACE` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTarget {
    /// The last trace captured on this connection (process-wide fallback).
    Last,
    /// The slow-query log.
    Slow,
    /// A specific trace by id.
    Id(u64),
}

/// Splits `table.column` into its parts.
fn table_column(token: &str) -> Result<(String, String), String> {
    match token.split_once('.') {
        Some((t, c)) if !t.is_empty() && !c.is_empty() => Ok((t.to_string(), c.to_string())),
        _ => Err(format!("expected <table>.<column>, got `{token}`")),
    }
}

/// Parses trailing `WHERE`-style clauses (`keyword col op value` triples).
fn parse_clause(tokens: &[&str]) -> Result<WhereClause, String> {
    match tokens {
        [column, op, value, ..] => Ok(WhereClause {
            column: (*column).to_string(),
            op: (*op).to_string(),
            value: (*value).to_string(),
        }),
        _ => Err("filter clause needs <col> <op> <value>".to_string()),
    }
}

impl Command {
    /// Parses one request line.
    ///
    /// # Errors
    /// Returns a human-readable message for malformed requests; the server
    /// relays it as `ERR <message>`.
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&head, rest)) = tokens.split_first() else {
            return Err("empty request".to_string());
        };
        match head {
            "PING" => Ok(Command::Ping),
            "QUIT" => Ok(Command::Quit),
            "STATS" => Ok(Command::Stats),
            "METRICS" => Ok(Command::Metrics),
            "TRACE" => {
                let [target] = rest else {
                    return Err("TRACE takes LAST, SLOW, or a trace id".to_string());
                };
                let target = match *target {
                    "LAST" => TraceTarget::Last,
                    "SLOW" => TraceTarget::Slow,
                    id => TraceTarget::Id(id.parse().map_err(|_| format!("bad trace id `{id}`"))?),
                };
                Ok(Command::Trace { target })
            }
            "RUN" | "EXPLAIN" | "ANALYZE" => {
                let [id] = rest else {
                    return Err(format!("{head} takes exactly one statement id"));
                };
                let id = (*id).to_string();
                Ok(match head {
                    "RUN" => Command::Run { id },
                    "EXPLAIN" => Command::Explain { id },
                    _ => Command::Analyze { id },
                })
            }
            "BIND" => {
                let (core, at) = match rest {
                    [core @ .., at_kw, index] if *at_kw == "AT" => {
                        let index: usize =
                            index.parse().map_err(|_| format!("bad index `{index}`"))?;
                        (core, Some(index))
                    }
                    _ => (rest, None),
                };
                let [id, new_id, threshold] = core else {
                    return Err("BIND takes <id> <new-id> <threshold> [AT <index>]".to_string());
                };
                let threshold: f32 = threshold
                    .parse()
                    .map_err(|_| format!("bad threshold `{threshold}`"))?;
                Ok(Command::Bind {
                    id: (*id).to_string(),
                    new_id: (*new_id).to_string(),
                    threshold,
                    at,
                })
            }
            "PROBE" => {
                // the probe text is the raw remainder of the line after the
                // id token, spaces included
                let after_keyword = line["PROBE".len()..].trim_start();
                let Some((id, text)) = after_keyword.split_once(char::is_whitespace) else {
                    return Err("PROBE takes <id> <text…>".to_string());
                };
                let text = text.trim();
                if text.is_empty() {
                    return Err("PROBE needs non-empty text".to_string());
                }
                Ok(Command::Probe {
                    id: id.to_string(),
                    text: text.to_string(),
                })
            }
            "SUBSCRIBE" => {
                let [id] = rest else {
                    return Err("SUBSCRIBE takes exactly one statement id".to_string());
                };
                Ok(Command::Subscribe {
                    id: (*id).to_string(),
                })
            }
            "UNSUBSCRIBE" => {
                let [sub] = rest else {
                    return Err("UNSUBSCRIBE takes exactly one subscription id".to_string());
                };
                let sub = sub
                    .parse()
                    .map_err(|_| format!("bad subscription id `{sub}`"))?;
                Ok(Command::Unsubscribe { sub })
            }
            "APPLY" => Self::parse_apply(line),
            "PREPARE" => Self::parse_prepare(rest),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    /// Parses `APPLY <table> <verb> …` from the raw line — payload cells may
    /// contain spaces, so token-wise parsing stops at the verb.
    fn parse_apply(line: &str) -> Result<Command, String> {
        const USAGE: &str =
            "APPLY takes <table> (APPEND <rows> | DELETE <key-col> <keys> | UPSERT <key-col> <rows>)";
        let after = line["APPLY".len()..].trim_start();
        let Some((table, after)) = after.split_once(char::is_whitespace) else {
            return Err(USAGE.to_string());
        };
        let (verb, tail) = match after.trim_start().split_once(char::is_whitespace) {
            Some((verb, tail)) => (verb, tail.trim()),
            None => (after.trim(), ""),
        };
        let spec = match verb {
            "APPEND" => {
                if tail.is_empty() {
                    return Err("APPEND needs at least one row".to_string());
                }
                ApplySpec::Append {
                    rows: tail.to_string(),
                }
            }
            "DELETE" | "UPSERT" => {
                let Some((key_column, payload)) = tail.split_once(char::is_whitespace) else {
                    return Err(format!("{verb} takes <key-column> and a payload"));
                };
                let payload = payload.trim();
                if payload.is_empty() {
                    return Err(format!("{verb} takes <key-column> and a payload"));
                }
                let key_column = key_column.to_string();
                if verb == "DELETE" {
                    ApplySpec::Delete {
                        key_column,
                        keys: payload.to_string(),
                    }
                } else {
                    ApplySpec::Upsert {
                        key_column,
                        rows: payload.to_string(),
                    }
                }
            }
            other => return Err(format!("expected APPEND/DELETE/UPSERT, got `{other}`")),
        };
        Ok(Command::Apply {
            table: table.to_string(),
            spec,
        })
    }

    fn parse_prepare(rest: &[&str]) -> Result<Command, String> {
        let [id, kind, tail @ ..] = rest else {
            return Err("PREPARE takes <id> <QUERY|SCAN|JOIN|PROBE> …".to_string());
        };
        let id = (*id).to_string();
        match *kind {
            "QUERY" => {
                let [base, clauses @ ..] = tail else {
                    return Err("PREPARE … QUERY takes <table>".to_string());
                };
                let spec = Self::parse_query((*base).to_string(), clauses)?;
                Ok(Command::Prepare {
                    id,
                    spec: Box::new(spec),
                })
            }
            "SCAN" => {
                let [table, clauses @ ..] = tail else {
                    return Err("PREPARE … SCAN takes <table>".to_string());
                };
                let mut filters = Vec::new();
                let mut cursor = clauses;
                while !cursor.is_empty() {
                    let [keyword, rest @ ..] = cursor else { break };
                    if *keyword != "WHERE" {
                        return Err(format!("expected WHERE, got `{keyword}`"));
                    }
                    filters.push(parse_clause(rest)?);
                    cursor = &rest[3.min(rest.len())..];
                }
                Ok(Command::Prepare {
                    id,
                    spec: Box::new(StatementSpec::Scan {
                        table: (*table).to_string(),
                        filters,
                    }),
                })
            }
            "JOIN" => {
                let [left, right, model_kw, model, pred_kw, pred_val, clauses @ ..] = tail else {
                    return Err(
                        "PREPARE … JOIN takes <lt>.<lc> <rt>.<rc> MODEL <m> (TOPK <k> | SIM <t>)"
                            .to_string(),
                    );
                };
                if *model_kw != "MODEL" {
                    return Err(format!("expected MODEL, got `{model_kw}`"));
                }
                let (left_table, left_column) = table_column(left)?;
                let (right_table, right_column) = table_column(right)?;
                let predicate = match *pred_kw {
                    "TOPK" => SimilarityPredicate::TopK(
                        pred_val
                            .parse()
                            .map_err(|_| format!("bad k `{pred_val}`"))?,
                    ),
                    "SIM" => SimilarityPredicate::Threshold(
                        pred_val
                            .parse()
                            .map_err(|_| format!("bad threshold `{pred_val}`"))?,
                    ),
                    other => return Err(format!("expected TOPK or SIM, got `{other}`")),
                };
                let mut left_where = None;
                let mut right_where = None;
                let mut cursor = clauses;
                while !cursor.is_empty() {
                    let [keyword, rest @ ..] = cursor else { break };
                    let clause = parse_clause(rest)?;
                    match *keyword {
                        "LWHERE" => left_where = Some(clause),
                        "RWHERE" => right_where = Some(clause),
                        other => return Err(format!("expected LWHERE/RWHERE, got `{other}`")),
                    }
                    cursor = &rest[3.min(rest.len())..];
                }
                Ok(Command::Prepare {
                    id,
                    spec: Box::new(StatementSpec::Join {
                        left_table,
                        left_column,
                        right_table,
                        right_column,
                        model: (*model).to_string(),
                        predicate,
                        left_where,
                        right_where,
                    }),
                })
            }
            "PROBE" => {
                let [target, model_kw, model, topk_kw, k] = tail else {
                    return Err("PREPARE … PROBE takes <rt>.<rc> MODEL <m> TOPK <k>".to_string());
                };
                if *model_kw != "MODEL" || *topk_kw != "TOPK" {
                    return Err("probe templates use MODEL <m> TOPK <k>".to_string());
                }
                let (right_table, right_column) = table_column(target)?;
                Ok(Command::Prepare {
                    id,
                    spec: Box::new(StatementSpec::ProbeTemplate {
                        right_table,
                        right_column,
                        model: (*model).to_string(),
                        k: k.parse().map_err(|_| format!("bad k `{k}`"))?,
                    }),
                })
            }
            other => Err(format!("unknown statement kind `{other}`")),
        }
    }

    /// Parses the clause list of a `QUERY` statement (everything after the
    /// base table).
    fn parse_query(base: String, mut cursor: &[&str]) -> Result<StatementSpec, String> {
        let mut joins = Vec::new();
        let mut ejoins = Vec::new();
        let mut filters = Vec::new();
        let mut known: Vec<String> = vec![base.clone()];
        while let Some((&keyword, rest)) = cursor.split_first() {
            match keyword {
                "JOIN" => {
                    let [table, on_kw, cond, tail @ ..] = rest else {
                        return Err("JOIN takes <table> ON <ta>.<ca>=<tb>.<cb>".to_string());
                    };
                    if *on_kw != "ON" {
                        return Err(format!("expected ON, got `{on_kw}`"));
                    }
                    let Some((a, b)) = cond.split_once('=') else {
                        return Err(format!("expected <ta>.<ca>=<tb>.<cb>, got `{cond}`"));
                    };
                    let (ta, ca) = table_column(a)?;
                    let (tb, cb) = table_column(b)?;
                    // exactly one side names the table being added; the
                    // other must already be part of the query
                    let (left_column, right_column) = if tb == *table && known.contains(&ta) {
                        (ca, cb)
                    } else if ta == *table && known.contains(&tb) {
                        (cb, ca)
                    } else {
                        return Err(format!(
                            "JOIN ON must equate a column of `{table}` with a column of an \
                             already-joined table, got `{cond}`"
                        ));
                    };
                    known.push((*table).to_string());
                    joins.push(JoinStep {
                        table: (*table).to_string(),
                        left_column,
                        right_column,
                    });
                    cursor = tail;
                }
                "EJOIN" => {
                    let [table, on_kw, cond, model_kw, model, pred_kw, pred_val, tail @ ..] = rest
                    else {
                        return Err("EJOIN takes <table> ON <lc>~<rc> MODEL <m> \
                                    (TOPK <k> | SIM <t>)"
                            .to_string());
                    };
                    if *on_kw != "ON" {
                        return Err(format!("expected ON, got `{on_kw}`"));
                    }
                    if *model_kw != "MODEL" {
                        return Err(format!("expected MODEL, got `{model_kw}`"));
                    }
                    let Some((lc, rc)) = cond.split_once('~') else {
                        return Err(format!("expected <lcol>~<rcol>, got `{cond}`"));
                    };
                    if lc.is_empty() || rc.is_empty() {
                        return Err(format!("expected <lcol>~<rcol>, got `{cond}`"));
                    }
                    let predicate = parse_predicate(pred_kw, pred_val)?;
                    known.push((*table).to_string());
                    ejoins.push(EjoinStep {
                        table: (*table).to_string(),
                        left_column: lc.to_string(),
                        right_column: rc.to_string(),
                        model: (*model).to_string(),
                        predicate,
                    });
                    cursor = tail;
                }
                "WHERE" => {
                    let [target, op, value, tail @ ..] = rest else {
                        return Err("WHERE takes <table>.<col> <op> <value>".to_string());
                    };
                    let (table, column) = table_column(target)?;
                    if !known.contains(&table) {
                        return Err(format!("WHERE references unjoined table `{table}`"));
                    }
                    filters.push((
                        table,
                        WhereClause {
                            column,
                            op: (*op).to_string(),
                            value: (*value).to_string(),
                        },
                    ));
                    cursor = tail;
                }
                other => return Err(format!("expected JOIN/EJOIN/WHERE, got `{other}`")),
            }
        }
        Ok(StatementSpec::Query {
            base,
            joins,
            ejoins,
            filters,
        })
    }
}

/// Parses a `TOPK <k>` / `SIM <t>` predicate pair.
fn parse_predicate(keyword: &str, value: &str) -> Result<SimilarityPredicate, String> {
    match keyword {
        "TOPK" => Ok(SimilarityPredicate::TopK(
            value.parse().map_err(|_| format!("bad k `{value}`"))?,
        )),
        "SIM" => Ok(SimilarityPredicate::Threshold(
            value
                .parse()
                .map_err(|_| format!("bad threshold `{value}`"))?,
        )),
        other => Err(format!("expected TOPK or SIM, got `{other}`")),
    }
}

/// FNV-1a 64-bit, the checksum clients see in `END` lines — the same
/// implementation the embedding layer hashes n-grams with (one definition,
/// one wire format).
pub use cej_embedding::hasher::fnv1a;

/// Renders one table cell deterministically (`{}` formatting for numbers is
/// stable across platforms and thread counts).
fn render_cell(table: &Table, row: usize, column: usize) -> String {
    let col = &table.columns()[column];
    if let Ok(values) = col.as_int64() {
        return values[row].to_string();
    }
    if let Ok(values) = col.as_float64() {
        return format!("{}", values[row]);
    }
    if let Ok(values) = col.as_utf8() {
        // tabs/newlines would break the line framing; escape them
        return values[row].replace(['\t', '\n', '\r'], " ");
    }
    if let Ok(values) = col.as_date() {
        return values[row].to_string();
    }
    if let Ok(matrix) = col.as_vectors() {
        return format!("<vec {}>", matrix.cols());
    }
    "<?>".to_string()
}

/// Renders a result table as the `ROWS … END <checksum>` payload.
pub fn render_table(table: &Table) -> String {
    let mut payload = String::new();
    let names: Vec<&str> = table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    payload.push_str(&names.join("\t"));
    payload.push('\n');
    for row in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.num_columns())
            .map(|c| render_cell(table, row, c))
            .collect();
        payload.push_str(&cells.join("\t"));
        payload.push('\n');
    }
    let checksum = fnv1a(payload.as_bytes());
    format!(
        "ROWS {} {}\n{payload}END {checksum:016x}\n",
        table.num_rows(),
        table.num_columns()
    )
}

/// Types an `APPLY` payload against the target table's schema, producing
/// the storage-layer [`Delta`].  Each cell parses as its column's declared
/// type — the wire format carries no type tags, exactly like `WHERE`
/// values, but nothing is ever guessed because the schema decides.
///
/// # Errors
/// Returns a message for unknown key columns, arity mismatches, cells that
/// do not parse as the column type, and vector columns (not writable over
/// the wire).
pub fn build_delta(spec: &ApplySpec, schema: &Schema) -> Result<Delta, String> {
    match spec {
        ApplySpec::Append { rows } => Ok(Delta::Append(parse_rows(schema, rows)?)),
        ApplySpec::Delete { key_column, keys } => {
            let field = schema.field(key_column).map_err(|e| e.to_string())?;
            let keys = keys
                .split(';')
                .map(|key| parse_scalar(field.data_type, key.trim(), key_column))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Delta::DeleteByKey {
                key_column: key_column.clone(),
                keys,
            })
        }
        ApplySpec::Upsert { key_column, rows } => {
            schema.field(key_column).map_err(|e| e.to_string())?;
            Ok(Delta::Upsert {
                key_column: key_column.clone(),
                rows: parse_rows(schema, rows)?,
            })
        }
    }
}

/// Parses a `;`-separated row payload into a table of `schema`.
fn parse_rows(schema: &Schema, raw: &str) -> Result<Table, String> {
    let fields = schema.fields();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); fields.len()];
    for row in raw.split(';') {
        let row_cells: Vec<&str> = row.split('|').map(str::trim).collect();
        if row_cells.len() != fields.len() {
            return Err(format!(
                "row `{}` has {} cell(s), table has {} column(s)",
                row.trim(),
                row_cells.len(),
                fields.len()
            ));
        }
        for (column, cell) in row_cells.into_iter().enumerate() {
            cells[column].push(cell.to_string());
        }
    }
    let columns = fields
        .iter()
        .zip(cells)
        .map(|(field, cells)| parse_column(field, cells))
        .collect::<Result<Vec<_>, _>>()?;
    Table::new(schema.clone(), columns).map_err(|e| e.to_string())
}

/// Parses one column's cells as the field's declared type.
fn parse_column(field: &Field, cells: Vec<String>) -> Result<Column, String> {
    let parse_err = |cell: &str| {
        format!(
            "cell `{cell}` does not parse as {} for column `{}`",
            field.data_type, field.name
        )
    };
    Ok(match field.data_type {
        DataType::Int64 => Column::Int64(
            cells
                .iter()
                .map(|c| c.parse().map_err(|_| parse_err(c)))
                .collect::<Result<_, _>>()?,
        ),
        DataType::Float64 => Column::Float64(
            cells
                .iter()
                .map(|c| c.parse().map_err(|_| parse_err(c)))
                .collect::<Result<_, _>>()?,
        ),
        DataType::Utf8 => Column::Utf8(cells),
        DataType::Date => Column::Date(
            cells
                .iter()
                .map(|c| c.parse().map_err(|_| parse_err(c)))
                .collect::<Result<_, _>>()?,
        ),
        DataType::Bool => Column::Bool(
            cells
                .iter()
                .map(|c| match c.as_str() {
                    "true" => Ok(true),
                    "false" => Ok(false),
                    other => Err(parse_err(other)),
                })
                .collect::<Result<_, _>>()?,
        ),
        DataType::Vector(_) => {
            return Err(format!(
                "column `{}` is a vector; vectors cannot be written over the wire",
                field.name
            ))
        }
    })
}

/// Parses one `DELETE` key as the key column's declared type.
fn parse_scalar(data_type: DataType, cell: &str, column: &str) -> Result<ScalarValue, String> {
    let parse_err = || format!("key `{cell}` does not parse as {data_type} for column `{column}`");
    Ok(match data_type {
        DataType::Int64 => ScalarValue::Int64(cell.parse().map_err(|_| parse_err())?),
        DataType::Float64 => ScalarValue::Float64(cell.parse().map_err(|_| parse_err())?),
        DataType::Utf8 => ScalarValue::Utf8(cell.to_string()),
        DataType::Date => ScalarValue::Date(cell.parse().map_err(|_| parse_err())?),
        DataType::Bool => match cell {
            "true" => ScalarValue::Bool(true),
            "false" => ScalarValue::Bool(false),
            _ => return Err(parse_err()),
        },
        DataType::Vector(_) => {
            return Err(format!(
                "column `{column}` is a vector; vector keys are not supported"
            ))
        }
    })
}

/// Renders one streamed standing-query frame as the
/// `DELTA … END <checksum>` payload: header line, column names, `+` rows,
/// `-` rows.  The checksum covers the names and signed rows exactly like
/// [`render_table`]'s does.
pub fn render_delta(subscription: u64, frame: &ResultDelta) -> String {
    let mut out = render_delta_header(subscription, frame);
    out.push_str(&render_delta_body(frame));
    out
}

/// The per-subscriber header line of a DELTA frame — the only part that
/// mentions the subscription id, so the serving layer can pair one header
/// per subscriber with a shared [`render_delta_body`].
pub fn render_delta_header(subscription: u64, frame: &ResultDelta) -> String {
    let kind = if frame.snapshot {
        "snapshot"
    } else if frame.refreshed {
        "refresh"
    } else {
        "delta"
    };
    format!(
        "DELTA {subscription} {} {} {} {} {kind}\n",
        frame.version,
        frame.added.num_rows(),
        frame.removed.num_rows(),
        frame.added.num_columns()
    )
}

/// The subscription-independent remainder of a DELTA frame: column names,
/// signed rows, and the `END <checksum>` trailer.  Frames produced by
/// same-fingerprint standing queries for the same
/// [`ResultDelta::seq`] have identical bodies, which is what lets the
/// server render a frame once per table change and fan it out to every
/// subscriber.
pub fn render_delta_body(frame: &ResultDelta) -> String {
    let mut payload = String::new();
    let names: Vec<&str> = frame
        .added
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    payload.push_str(&names.join("\t"));
    payload.push('\n');
    let mut signed_rows = |table: &Table, sign: char| {
        for row in 0..table.num_rows() {
            payload.push(sign);
            let cells: Vec<String> = (0..table.num_columns())
                .map(|c| render_cell(table, row, c))
                .collect();
            payload.push_str(&cells.join("\t"));
            payload.push('\n');
        }
    };
    signed_rows(&frame.added, '+');
    signed_rows(&frame.removed, '-');
    let checksum = fnv1a(payload.as_bytes());
    payload.push_str(&format!("END {checksum:016x}\n"));
    payload
}

/// Renders a multi-line text payload (`EXPLAIN` / `ANALYZE` output).
pub fn render_text(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = format!("TEXT {}\n", lines.len());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_commands() {
        assert_eq!(Command::parse("PING").unwrap(), Command::Ping);
        assert_eq!(Command::parse("  QUIT  ").unwrap(), Command::Quit);
        assert_eq!(Command::parse("STATS").unwrap(), Command::Stats);
        assert_eq!(
            Command::parse("RUN q1").unwrap(),
            Command::Run { id: "q1".into() }
        );
        assert_eq!(
            Command::parse("EXPLAIN q1").unwrap(),
            Command::Explain { id: "q1".into() }
        );
        assert_eq!(
            Command::parse("ANALYZE q1").unwrap(),
            Command::Analyze { id: "q1".into() }
        );
        assert!(Command::parse("RUN").is_err());
        assert!(Command::parse("").is_err());
        assert!(Command::parse("FROBNICATE x").is_err());
    }

    #[test]
    fn parses_observability_verbs() {
        assert_eq!(Command::parse("METRICS").unwrap(), Command::Metrics);
        assert_eq!(
            Command::parse("TRACE LAST").unwrap(),
            Command::Trace {
                target: TraceTarget::Last
            }
        );
        assert_eq!(
            Command::parse("TRACE SLOW").unwrap(),
            Command::Trace {
                target: TraceTarget::Slow
            }
        );
        assert_eq!(
            Command::parse("TRACE 42").unwrap(),
            Command::Trace {
                target: TraceTarget::Id(42)
            }
        );
        assert!(Command::parse("TRACE").is_err());
        assert!(Command::parse("TRACE banana").is_err());
        assert!(Command::parse("TRACE LAST extra").is_err());
    }

    #[test]
    fn parses_prepare_scan_with_filters() {
        let cmd =
            Command::parse("PREPARE s1 SCAN photos WHERE year >= 2023 WHERE id < 10").unwrap();
        let Command::Prepare { id, spec } = cmd else {
            panic!("expected prepare");
        };
        assert_eq!(id, "s1");
        let StatementSpec::Scan { table, filters } = *spec else {
            panic!("expected scan");
        };
        assert_eq!(table, "photos");
        assert_eq!(filters.len(), 2);
        assert_eq!(filters[0].op, ">=");
        assert_eq!(filters[1].value, "10");
        // lowers to a plan
        let plan = StatementSpec::Scan { table, filters }
            .to_plan(None)
            .unwrap();
        assert!(matches!(
            plan,
            cej_relational::LogicalPlan::Selection { .. }
        ));
    }

    #[test]
    fn parses_prepare_join_variants() {
        let cmd = Command::parse(
            "PREPARE j1 JOIN photos.caption products.title MODEL ft TOPK 3 \
             LWHERE year >= 2023 RWHERE price < 100",
        )
        .unwrap();
        let Command::Prepare { spec, .. } = cmd else {
            panic!()
        };
        let StatementSpec::Join {
            left_table,
            right_column,
            predicate,
            left_where,
            right_where,
            ..
        } = spec.as_ref()
        else {
            panic!()
        };
        assert_eq!(left_table, "photos");
        assert_eq!(right_column, "title");
        assert_eq!(*predicate, SimilarityPredicate::TopK(3));
        assert!(left_where.is_some());
        assert_eq!(right_where.as_ref().unwrap().column, "price");
        assert!(spec.to_plan(None).is_ok());

        let sim = Command::parse("PREPARE j2 JOIN a.x b.y MODEL m SIM 0.85").unwrap();
        let Command::Prepare { spec, .. } = sim else {
            panic!()
        };
        assert!(matches!(
            *spec,
            StatementSpec::Join {
                predicate: SimilarityPredicate::Threshold(t),
                ..
            } if (t - 0.85).abs() < 1e-6
        ));

        assert!(Command::parse("PREPARE j3 JOIN a.x b.y MODEL m TOPK nope").is_err());
        assert!(Command::parse("PREPARE j4 JOIN ax b.y MODEL m TOPK 1").is_err());
        assert!(Command::parse("PREPARE j5 JOIN a.x b.y MODLE m TOPK 1").is_err());
    }

    #[test]
    fn parses_probe_template_and_probe() {
        let cmd = Command::parse("PREPARE p1 PROBE products.title MODEL ft TOPK 2").unwrap();
        let Command::Prepare { spec, .. } = cmd else {
            panic!()
        };
        let plan = spec.to_plan(Some("__probe_7")).unwrap();
        assert!(matches!(plan, cej_relational::LogicalPlan::EJoin { .. }));
        assert!(spec.to_plan(None).is_err(), "needs the probe table");

        let probe = Command::parse("PROBE p1 cast iron barbecue grill").unwrap();
        assert_eq!(
            probe,
            Command::Probe {
                id: "p1".into(),
                text: "cast iron barbecue grill".into()
            }
        );
        assert!(Command::parse("PROBE p1").is_err());
    }

    #[test]
    fn parses_bind() {
        assert_eq!(
            Command::parse("BIND j1 j1lo 0.7").unwrap(),
            Command::Bind {
                id: "j1".into(),
                new_id: "j1lo".into(),
                threshold: 0.7,
                at: None
            }
        );
        assert_eq!(
            Command::parse("BIND j1 j1lo 0.7 AT 1").unwrap(),
            Command::Bind {
                id: "j1".into(),
                new_id: "j1lo".into(),
                threshold: 0.7,
                at: Some(1)
            }
        );
        assert!(Command::parse("BIND j1 j2 high").is_err());
        assert!(Command::parse("BIND j1 j2 0.7 AT x").is_err());
        assert!(Command::parse("BIND j1").is_err());
    }

    #[test]
    fn parses_query_statement() {
        let cmd = Command::parse(
            "PREPARE q1 QUERY orders \
             JOIN customers ON orders.customer_id=customers.id \
             JOIN regions ON customers.region_id=regions.id \
             EJOIN products ON note~title MODEL ft SIM 0.8 \
             WHERE orders.total >= 100 WHERE regions.name = west",
        )
        .unwrap();
        let Command::Prepare { id, spec } = cmd else {
            panic!("expected prepare");
        };
        assert_eq!(id, "q1");
        let StatementSpec::Query {
            base,
            joins,
            ejoins,
            filters,
        } = spec.as_ref()
        else {
            panic!("expected query spec");
        };
        assert_eq!(base, "orders");
        assert_eq!(joins.len(), 2);
        assert_eq!(joins[0].table, "customers");
        assert_eq!(joins[0].left_column, "customer_id");
        assert_eq!(joins[0].right_column, "id");
        assert_eq!(joins[1].left_column, "region_id");
        assert_eq!(ejoins.len(), 1);
        assert_eq!(ejoins[0].left_column, "note");
        assert_eq!(ejoins[0].right_column, "title");
        assert!(matches!(
            ejoins[0].predicate,
            SimilarityPredicate::Threshold(t) if (t - 0.8).abs() < 1e-6
        ));
        assert_eq!(filters.len(), 2);
        assert_eq!(filters[1].0, "regions");
        assert_eq!(filters[1].1.value, "west");
        let plan = spec.to_plan(None).unwrap();
        assert!(matches!(plan, cej_relational::LogicalPlan::EJoin { .. }));

        // reversed ON sides normalise to the same step
        let flipped =
            Command::parse("PREPARE q2 QUERY orders JOIN customers ON customers.id=orders.cid")
                .unwrap();
        let Command::Prepare { spec, .. } = flipped else {
            panic!()
        };
        let StatementSpec::Query { joins, .. } = spec.as_ref() else {
            panic!()
        };
        assert_eq!(joins[0].left_column, "cid");
        assert_eq!(joins[0].right_column, "id");

        // ON must connect to an already-joined table
        assert!(Command::parse("PREPARE q3 QUERY a JOIN b ON c.x=b.y").is_err());
        // WHERE on an unjoined table is rejected
        assert!(Command::parse("PREPARE q4 QUERY a WHERE b.x = 1").is_err());
        assert!(Command::parse("PREPARE q5 QUERY a FROB b").is_err());
        assert!(Command::parse("PREPARE q6 QUERY a EJOIN b ON xy MODEL m SIM 0.5").is_err());
    }

    #[test]
    fn where_clause_typing_and_operators() {
        for op in ["=", "!=", "<", "<=", ">", ">="] {
            let clause = WhereClause {
                column: "c".into(),
                op: op.into(),
                value: "5".into(),
            };
            assert!(clause.to_expr().is_ok(), "op {op}");
        }
        let bad = WhereClause {
            column: "c".into(),
            op: "~".into(),
            value: "5".into(),
        };
        assert!(bad.to_expr().is_err());
        // string fallback
        let s = WhereClause {
            column: "c".into(),
            op: "=".into(),
            value: "abc".into(),
        };
        assert!(s.to_expr().is_ok());
    }

    #[test]
    fn render_table_is_deterministic_and_checksummed() {
        let table = cej_storage::TableBuilder::new()
            .int64("id", vec![1, 2])
            .utf8("word", vec!["a\tb".into(), "c".into()])
            .float64("score", vec![0.5, 0.25])
            .build()
            .unwrap();
        let a = render_table(&table);
        let b = render_table(&table);
        assert_eq!(a, b);
        assert!(a.starts_with("ROWS 2 3\n"));
        assert!(a.contains("id\tword\tscore"));
        assert!(a.contains("a b"), "tab in cell must be escaped");
        let end = a.lines().last().unwrap();
        assert!(end.starts_with("END "));
        assert_eq!(end.len(), 4 + 16, "16-hex-digit checksum");
        // different content → different checksum
        let other = cej_storage::TableBuilder::new()
            .int64("id", vec![3])
            .utf8("word", vec!["z".into()])
            .float64("score", vec![1.0])
            .build()
            .unwrap();
        assert_ne!(
            render_table(&other).lines().last().unwrap(),
            end,
            "checksums must distinguish different payloads"
        );
    }

    #[test]
    fn parses_apply_subscribe_unsubscribe() {
        assert_eq!(
            Command::parse("APPLY orders APPEND 7|30|500|barbecue party; 8|10|50|tent").unwrap(),
            Command::Apply {
                table: "orders".into(),
                spec: ApplySpec::Append {
                    rows: "7|30|500|barbecue party; 8|10|50|tent".into()
                }
            }
        );
        assert_eq!(
            Command::parse("APPLY orders DELETE order_id 7;8").unwrap(),
            Command::Apply {
                table: "orders".into(),
                spec: ApplySpec::Delete {
                    key_column: "order_id".into(),
                    keys: "7;8".into()
                }
            }
        );
        assert_eq!(
            Command::parse("APPLY orders UPSERT order_id 7|30|600|new note").unwrap(),
            Command::Apply {
                table: "orders".into(),
                spec: ApplySpec::Upsert {
                    key_column: "order_id".into(),
                    rows: "7|30|600|new note".into()
                }
            }
        );
        assert_eq!(
            Command::parse("SUBSCRIBE q1").unwrap(),
            Command::Subscribe { id: "q1".into() }
        );
        assert_eq!(
            Command::parse("UNSUBSCRIBE 3").unwrap(),
            Command::Unsubscribe { sub: 3 }
        );
        assert!(Command::parse("APPLY orders").is_err());
        assert!(Command::parse("APPLY orders APPEND").is_err());
        assert!(Command::parse("APPLY orders DELETE order_id").is_err());
        assert!(Command::parse("APPLY orders FROB 1|2").is_err());
        assert!(Command::parse("SUBSCRIBE").is_err());
        assert!(Command::parse("UNSUBSCRIBE q1").is_err());
    }

    #[test]
    fn build_delta_types_cells_by_schema() {
        let table = cej_storage::TableBuilder::new()
            .int64("id", vec![1])
            .float64("price", vec![2.5])
            .utf8("note", vec!["x".into()])
            .build()
            .unwrap();
        let schema = table.schema();

        let delta = build_delta(
            &ApplySpec::Append {
                rows: "7|19.5|cast iron grill; 8|3.25|tent pole".into(),
            },
            schema,
        )
        .unwrap();
        let Delta::Append(rows) = delta else {
            panic!("expected append");
        };
        assert_eq!(rows.num_rows(), 2);
        assert_eq!(
            rows.column_by_name("id").unwrap().as_int64().unwrap(),
            &[7, 8]
        );
        assert_eq!(
            rows.column_by_name("note").unwrap().as_utf8().unwrap(),
            &["cast iron grill", "tent pole"]
        );

        let delta = build_delta(
            &ApplySpec::Delete {
                key_column: "id".into(),
                keys: "7; 8".into(),
            },
            schema,
        )
        .unwrap();
        let Delta::DeleteByKey { key_column, keys } = delta else {
            panic!("expected delete");
        };
        assert_eq!(key_column, "id");
        assert_eq!(keys, vec![ScalarValue::Int64(7), ScalarValue::Int64(8)]);

        let delta = build_delta(
            &ApplySpec::Upsert {
                key_column: "id".into(),
                rows: "7|1.0|replacement".into(),
            },
            schema,
        )
        .unwrap();
        assert!(matches!(delta, Delta::Upsert { .. }));

        // arity, typing, and unknown-column errors
        assert!(build_delta(
            &ApplySpec::Append {
                rows: "7|19.5".into()
            },
            schema
        )
        .is_err());
        assert!(build_delta(
            &ApplySpec::Append {
                rows: "seven|1.0|x".into()
            },
            schema
        )
        .is_err());
        assert!(build_delta(
            &ApplySpec::Delete {
                key_column: "ghost".into(),
                keys: "1".into()
            },
            schema
        )
        .is_err());
        assert!(build_delta(
            &ApplySpec::Delete {
                key_column: "id".into(),
                keys: "seven".into()
            },
            schema
        )
        .is_err());
    }

    #[test]
    fn render_delta_frames_signed_rows_with_checksum() {
        let added = cej_storage::TableBuilder::new()
            .int64("id", vec![7])
            .utf8("note", vec!["grill".into()])
            .build()
            .unwrap();
        let removed = added.take(&[]).unwrap();
        let frame = ResultDelta {
            version: 3,
            seq: 5,
            added,
            removed,
            refreshed: false,
            snapshot: false,
        };
        let out = render_delta(12, &frame);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "DELTA 12 3 1 0 2 delta");
        assert_eq!(lines[1], "id\tnote");
        assert_eq!(lines[2], "+7\tgrill");
        assert!(lines[3].starts_with("END "));
        assert_eq!(lines[3].len(), 4 + 16);
        // checksum covers header + signed rows
        let payload = "id\tnote\n+7\tgrill\n";
        assert_eq!(lines[3], format!("END {:016x}", fnv1a(payload.as_bytes())));
        // refresh / snapshot kinds are flagged on the header line
        let refresh = ResultDelta {
            refreshed: true,
            ..frame.clone()
        };
        assert!(render_delta(12, &refresh).starts_with("DELTA 12 3 1 0 2 refresh\n"));
        let snapshot = ResultDelta {
            snapshot: true,
            ..frame
        };
        assert!(render_delta(12, &snapshot).starts_with("DELTA 12 3 1 0 2 snapshot\n"));
    }

    #[test]
    fn render_text_counts_lines() {
        let out = render_text("one\ntwo\nthree");
        assert!(out.starts_with("TEXT 3\n"));
        assert!(out.ends_with("three\n"));
    }
}
