//! The `cej-server` binary: boots a demo session (workload tables + a
//! FastText-style model) and serves it over TCP until interrupted.
//!
//! ```sh
//! cej-server [addr]            # default 127.0.0.1:7878
//! CEJ_THREADS=8 cej-server     # worker-pool sizing, as everywhere
//! CEJ_SCALE=0.5 cej-server     # scales the demo tables
//! ```
//!
//! Try it:
//!
//! ```text
//! $ printf 'PREPARE j1 JOIN r.word s.word MODEL ft TOPK 2\nRUN j1\nQUIT\n' | nc 127.0.0.1 7878
//! ```

use cej_core::ContextJoinSession;
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_server::{Server, ServerConfig};
use cej_workload::{scaled, JoinWorkload, RelationSpec};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(scaled(2_000).max(8)),
        RelationSpec::with_rows(scaled(8_000).max(8)),
        42,
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: 32,
        ..FastTextConfig::default()
    })
    .expect("model construction");

    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", workload.inner.clone());
    session.register_model("ft", model);

    let config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let server = Server::start(session, config).expect("bind");
    println!(
        "cej-server listening on {} (tables: r={} rows, s={} rows; model: ft; \
         commands: PREPARE/BIND/RUN/PROBE/EXPLAIN/ANALYZE/STATS/PING/QUIT)",
        server.local_addr(),
        workload.outer.num_rows(),
        workload.inner.num_rows(),
    );
    // Serve until the process is killed; the acceptor and connections run on
    // their own threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
