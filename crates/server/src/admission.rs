//! Admission control: a hard cap on in-flight queries with a bounded wait
//! queue.
//!
//! A server without admission control converts overload into unbounded
//! queueing (latency collapse) or unbounded concurrency (memory collapse).
//! [`AdmissionGate`] does neither: up to `max_inflight` queries execute at
//! once, up to `max_queued` callers block waiting for a slot, and everyone
//! beyond that is rejected immediately with a `busy` error the client can
//! retry against.  Permits are RAII — dropping one releases the slot and
//! wakes a waiter.

use std::sync::{Condvar, Mutex};

/// Counters the gate exposes through `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Queries rejected because the queue was full.
    pub rejected: u64,
    /// Queries currently executing.
    pub inflight: usize,
    /// Queries currently waiting for a slot.
    pub queued: usize,
    /// High-water mark of concurrent executions.
    pub peak_inflight: usize,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
    admitted: u64,
    rejected: u64,
    peak_inflight: usize,
}

/// The admission gate (see module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    slot_freed: Condvar,
}

/// The rejection returned when both the execution slots and the wait queue
/// are full; clients see it as `ERR busy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("busy (admission queue full, retry)")
    }
}

/// An admitted query's slot; dropping it releases the slot.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        state.inflight -= 1;
        drop(state);
        self.gate.slot_freed.notify_one();
    }
}

impl AdmissionGate {
    /// Creates a gate admitting `max_inflight` concurrent queries with a
    /// wait queue of `max_queued` (both clamped to at least 1 / 0).
    pub fn new(max_inflight: usize, max_queued: usize) -> Self {
        Self {
            max_inflight: max_inflight.max(1),
            max_queued,
            state: Mutex::new(GateState::default()),
            slot_freed: Condvar::new(),
        }
    }

    /// Acquires an execution slot, blocking in the bounded queue when all
    /// slots are busy.
    ///
    /// # Errors
    /// Returns [`Rejected`] (the `busy` rejection) when the queue is full
    /// too.
    pub fn acquire(&self) -> Result<Permit<'_>, Rejected> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.inflight >= self.max_inflight {
            if state.queued >= self.max_queued {
                state.rejected += 1;
                return Err(Rejected);
            }
            state.queued += 1;
            while state.inflight >= self.max_inflight {
                state = self
                    .slot_freed
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            state.queued -= 1;
        }
        state.inflight += 1;
        state.peak_inflight = state.peak_inflight.max(state.inflight);
        state.admitted += 1;
        Ok(Permit { gate: self })
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        AdmissionStats {
            admitted: state.admitted,
            rejected: state.rejected,
            inflight: state.inflight,
            queued: state.queued,
            peak_inflight: state.peak_inflight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_the_cap_then_queues_then_rejects() {
        let gate = Arc::new(AdmissionGate::new(2, 1));
        let a = gate.acquire().unwrap();
        let b = gate.acquire().unwrap();
        assert_eq!(gate.stats().inflight, 2);
        // third caller queues (from another thread), fourth is rejected;
        // `a`/`b` stay alive while the queued thread blocks
        let queued = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire().map(drop).is_ok())
        };
        // wait until the queued caller registers
        for _ in 0..200 {
            if gate.stats().queued == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(gate.stats().queued, 1);
        assert!(gate.acquire().is_err(), "queue full: must reject");
        assert_eq!(gate.stats().rejected, 1);
        drop(a);
        assert!(queued.join().unwrap(), "queued caller must be admitted");
        drop(b);
        let stats = gate.stats();
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.peak_inflight, 2);
    }

    #[test]
    fn permits_release_on_drop_and_wake_waiters() {
        let gate = Arc::new(AdmissionGate::new(1, 8));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let gate = Arc::clone(&gate);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let permit = gate.acquire().unwrap();
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 6);
        assert_eq!(gate.stats().inflight, 0);
        assert_eq!(gate.stats().admitted, 6);
    }
}
