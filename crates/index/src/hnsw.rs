//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! A from-scratch implementation of Malkov & Yashunin's algorithm with the
//! features the paper's evaluation exercises: configurable `M` /
//! `efConstruction` / `efSearch`, cosine similarity, top-k probes, relational
//! pre-filtering, and per-probe cost statistics.
//!
//! The neighbour-selection heuristic is the simple "closest M" variant; graph
//! quality is validated in tests by measuring recall against the exact
//! [`crate::BruteForce`] baseline.

use cej_storage::SelectionBitmap;
use cej_vector::{Matrix, TopK, TopKEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::IndexError;
use crate::params::HnswParams;
use crate::Result;

/// Per-probe cost counters.
///
/// The paper's index-join cost model charges `I_probe(S)` per outer tuple;
/// these counters expose what a probe actually costs in distance evaluations
/// and node visits so the scan-vs-probe trade-off can be analysed without a
/// profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of similarity computations performed.
    pub distance_computations: u64,
    /// Number of graph nodes visited (popped from the candidate queue).
    pub nodes_visited: u64,
}

impl ProbeStats {
    /// Accumulates another probe's counters into this one.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.distance_computations += other.distance_computations;
        self.nodes_visited += other.nodes_visited;
    }
}

/// Reusable visited-set for layer searches: an epoch-stamped array, so one
/// probe descending through several layers clears the set by bumping a
/// counter instead of re-zeroing (or re-allocating) `O(n)` bytes per layer.
#[derive(Debug)]
struct VisitScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitScratch {
    fn new(n: usize) -> Self {
        VisitScratch {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Marks `id` visited in the current epoch; `true` on first visit.
    fn first_visit(&mut self, id: usize) -> bool {
        if self.stamp[id] == self.epoch {
            false
        } else {
            self.stamp[id] = self.epoch;
            true
        }
    }
}

/// The result of one top-k probe.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The k best (unfiltered-out) neighbours, best first.
    pub neighbors: Vec<TopKEntry>,
    /// Probe cost counters.
    pub stats: ProbeStats,
}

/// An immutable HNSW index over a matrix of row-vectors.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    params: HnswParams,
    vectors: Matrix,
    /// `neighbors[node][layer]` is the adjacency list of `node` at `layer`
    /// (present for layers `0..=level(node)`).
    neighbors: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    entry_point: usize,
    max_level: usize,
}

impl HnswIndex {
    /// Builds an index over the rows of `vectors`.
    ///
    /// # Errors
    /// Returns [`IndexError::EmptyIndex`] for an empty input and
    /// [`IndexError::InvalidParameter`] for degenerate parameters.
    pub fn build(vectors: Matrix, params: HnswParams) -> Result<Self> {
        if vectors.rows() == 0 {
            return Err(IndexError::EmptyIndex);
        }
        if params.m < 2 || params.m0 < params.m || params.ef_construction == 0 {
            return Err(IndexError::InvalidParameter(format!(
                "degenerate HNSW parameters: M={}, M0={}, efC={}",
                params.m, params.m0, params.ef_construction
            )));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = vectors.rows();
        let mut index = HnswIndex {
            params,
            vectors,
            neighbors: Vec::with_capacity(n),
            levels: Vec::with_capacity(n),
            entry_point: 0,
            max_level: 0,
        };
        for id in 0..n {
            let level = index.sample_level(&mut rng);
            index.insert(id, level);
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// `true` when no vectors are indexed (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The highest layer currently in use.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Approximate memory footprint of the graph structure in bytes
    /// (vectors + adjacency lists).
    pub fn memory_bytes(&self) -> usize {
        let adjacency: usize = self
            .neighbors
            .iter()
            .map(|per_layer| per_layer.iter().map(|l| l.len() * 4).sum::<usize>())
            .sum();
        self.vectors.bytes() + adjacency + self.levels.len() * std::mem::size_of::<usize>()
    }

    fn sample_level(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.params.level_lambda()).floor() as usize
    }

    #[inline]
    fn similarity(&self, query: &[f32], node: usize) -> f32 {
        self.params
            .metric
            .similarity(query, self.vectors.row(node).expect("node in range"))
    }

    fn insert(&mut self, id: usize, level: usize) {
        self.neighbors
            .push((0..=level).map(|_| Vec::new()).collect());
        self.levels.push(level);
        if id == 0 {
            self.entry_point = 0;
            self.max_level = level;
            return;
        }
        let query = self.vectors.row(id).expect("row exists").to_vec();
        let mut stats = ProbeStats::default();
        let mut visited = VisitScratch::new(self.len());
        let mut entry = self.entry_point;

        // Greedy descent through layers above the new node's level.
        let mut layer = self.max_level;
        while layer > level {
            entry = self.greedy_closest(&query, entry, layer, &mut stats);
            layer -= 1;
        }
        let mut seed = TopKEntry::new(entry, self.similarity(&query, entry));
        stats.distance_computations += 1;

        // For each layer at or below the node's level, find efConstruction
        // candidates and connect using the diversity-preserving neighbour
        // selection heuristic (Malkov & Yashunin, Algorithm 4).  The simple
        // "closest M" rule is known to disconnect clustered data because all
        // kept links end up inside the node's own cluster.
        let top_layer = level.min(self.max_level);
        for layer in (0..=top_layer).rev() {
            let candidates = self.search_layer(
                &query,
                &[seed],
                self.params.ef_construction,
                layer,
                &mut visited,
                &mut stats,
            );
            if let Some(best) = candidates.first() {
                seed = *best;
            }
            let max_links = self.params.max_neighbors(layer);
            let selected = self.select_neighbors_heuristic(&candidates, max_links);
            for &neighbor in &selected {
                self.connect(id, neighbor as usize, layer);
                self.connect(neighbor as usize, id, layer);
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry_point = id;
        }
    }

    /// Diversity-preserving neighbour selection: a candidate is kept when it
    /// is closer to the query than to every already-kept neighbour, which
    /// guarantees links that bridge towards other regions of the graph
    /// survive.  Remaining slots are filled with the best skipped candidates
    /// (the `keepPrunedConnections` variant of the original algorithm).
    fn select_neighbors_heuristic(&self, candidates: &[TopKEntry], max: usize) -> Vec<u32> {
        let mut kept: Vec<u32> = Vec::with_capacity(max);
        let mut skipped: Vec<u32> = Vec::new();
        for cand in candidates {
            if kept.len() >= max {
                break;
            }
            let cand_vec = self.vectors.row(cand.id).expect("candidate in range");
            let diverse = kept.iter().all(|&k| {
                let to_kept = self.params.metric.similarity(
                    cand_vec,
                    self.vectors.row(k as usize).expect("kept in range"),
                );
                cand.score >= to_kept
            });
            if diverse {
                kept.push(cand.id as u32);
            } else {
                skipped.push(cand.id as u32);
            }
        }
        for s in skipped {
            if kept.len() >= max {
                break;
            }
            kept.push(s);
        }
        kept
    }

    /// Adds `to` to `from`'s adjacency at `layer`, pruning to the layer's
    /// degree bound with the same diversity heuristic used at insert time.
    fn connect(&mut self, from: usize, to: usize, layer: usize) {
        if from == to || layer >= self.neighbors[from].len() {
            return;
        }
        if self.neighbors[from][layer].contains(&(to as u32)) {
            return;
        }
        self.neighbors[from][layer].push(to as u32);
        let bound = self.params.max_neighbors(layer);
        if self.neighbors[from][layer].len() > bound {
            let from_vec = self.vectors.row(from).expect("row exists").to_vec();
            let mut scored: Vec<TopKEntry> = self.neighbors[from][layer]
                .iter()
                .map(|&n| TopKEntry::new(n as usize, self.similarity(&from_vec, n as usize)))
                .collect();
            scored.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            self.neighbors[from][layer] = self.select_neighbors_heuristic(&scored, bound);
        }
    }

    /// Greedy search for the single closest node at `layer`.
    fn greedy_closest(
        &self,
        query: &[f32],
        entry: usize,
        layer: usize,
        stats: &mut ProbeStats,
    ) -> usize {
        let mut current = entry;
        let mut current_score = self.similarity(query, current);
        stats.distance_computations += 1;
        loop {
            let mut improved = false;
            stats.nodes_visited += 1;
            if layer < self.neighbors[current].len() {
                for &n in &self.neighbors[current][layer] {
                    let score = self.similarity(query, n as usize);
                    stats.distance_computations += 1;
                    if score > current_score {
                        current = n as usize;
                        current_score = score;
                        improved = true;
                    }
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Best-first search at one layer with a candidate list of size `ef`.
    /// Returns candidates sorted best-first.
    ///
    /// Accepts multiple *pre-scored* entry points: seeding the frontier from
    /// several upper-layer candidates (rather than the single greedy winner)
    /// lets the search escape the entry point's cluster, which measurably
    /// improves recall for probes that do not come from the indexed
    /// distribution.  Seeds carry the similarity already computed by the
    /// caller (or the previous layer), so seeding costs no distance
    /// computations and does not inflate [`ProbeStats`].
    fn search_layer(
        &self,
        query: &[f32],
        seeds: &[TopKEntry],
        ef: usize,
        layer: usize,
        visited: &mut VisitScratch,
        stats: &mut ProbeStats,
    ) -> Vec<TopKEntry> {
        visited.next_epoch();
        let mut frontier: Vec<TopKEntry> = Vec::with_capacity(seeds.len());
        let mut results = TopK::new(ef);
        for &seed in seeds {
            if !visited.first_visit(seed.id) {
                continue;
            }
            frontier.push(seed);
            results.push(seed.id, seed.score);
        }

        while let Some(pos) = frontier
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.score
                    .partial_cmp(&b.1.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        {
            let current = frontier.swap_remove(pos);
            // Stop when the best remaining candidate cannot improve the
            // worst kept result.
            if let Some(threshold) = results.threshold() {
                if current.score < threshold {
                    break;
                }
            }
            stats.nodes_visited += 1;
            if layer < self.neighbors[current.id].len() {
                for &n in &self.neighbors[current.id][layer] {
                    let n = n as usize;
                    if !visited.first_visit(n) {
                        continue;
                    }
                    let score = self.similarity(query, n);
                    stats.distance_computations += 1;
                    let admit = match results.threshold() {
                        Some(t) => score > t,
                        None => true,
                    };
                    if admit {
                        frontier.push(TopKEntry::new(n, score));
                        results.push(n, score);
                    }
                }
            }
        }
        results.into_sorted()
    }

    /// Top-k probe with optional relational pre-filter.
    ///
    /// Filtered-out rows are excluded from the returned neighbours but the
    /// graph traversal still visits them — this matches the pre-filtering
    /// behaviour of vector databases that the paper evaluates against, where
    /// the relational filter cannot prune the index traversal itself.
    ///
    /// # Errors
    /// Returns dimension and filter-length errors, and
    /// [`IndexError::InvalidParameter`] for `k == 0`.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&SelectionBitmap>,
    ) -> Result<SearchResult> {
        if k == 0 {
            return Err(IndexError::InvalidParameter("k must be > 0".into()));
        }
        if query.len() != self.dim() {
            return Err(IndexError::DimensionMismatch {
                indexed: self.dim(),
                query: query.len(),
            });
        }
        if let Some(f) = filter {
            if f.len() != self.len() {
                return Err(IndexError::FilterLengthMismatch {
                    rows: self.len(),
                    filter: f.len(),
                });
            }
        }
        let mut stats = ProbeStats::default();
        let mut visited = VisitScratch::new(self.len());
        let ef = self.params.ef_search.max(k);
        // Multi-entry descent: keep a small beam of candidates per upper
        // layer instead of a single greedy winner, then seed the layer-0
        // search with the whole beam.  For probes drawn from a different
        // distribution than the indexed vectors (the hard case in the
        // scan-vs-probe experiments) a single greedy entry frequently lands
        // in the wrong cluster and the layer-0 search cannot escape it;
        // the beam repairs exactly that failure mode.  Each layer's output
        // seeds the next (scores included), so the descent never re-scores
        // a node it already knows.
        let beam_width = (ef / 8).clamp(1, 16).max(k.min(16));
        let entry_score = self.similarity(query, self.entry_point);
        stats.distance_computations += 1;
        let mut seeds: Vec<TopKEntry> = vec![TopKEntry::new(self.entry_point, entry_score)];
        let mut layer = self.max_level;
        while layer > 0 {
            seeds = self.search_layer(query, &seeds, beam_width, layer, &mut visited, &mut stats);
            layer -= 1;
        }
        let candidates = self.search_layer(query, &seeds, ef, 0, &mut visited, &mut stats);
        let mut kept = TopK::new(k);
        for c in candidates {
            let allowed = filter.map(|f| f.is_selected(c.id)).unwrap_or(true);
            if allowed {
                kept.push(c.id, c.score);
            }
        }
        Ok(SearchResult {
            neighbors: kept.into_sorted(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::BruteForce;
    use cej_vector::Metric;
    use rand::Rng;

    /// Deterministic clustered vectors: `clusters` centroids, `per_cluster`
    /// points each, normalised.
    fn clustered(clusters: usize, per_cluster: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(0, dim);
        for c in 0..clusters {
            let centroid: Vec<f32> = (0..dim)
                .map(|_| rng.gen_range(-1.0..1.0) + c as f32)
                .collect();
            for _ in 0..per_cluster {
                let mut p: Vec<f32> = centroid
                    .iter()
                    .map(|v| v + rng.gen_range(-0.05..0.05))
                    .collect();
                let norm: f32 = p.iter().map(|x| x * x).sum::<f32>().sqrt();
                p.iter_mut().for_each(|x| *x /= norm);
                m.push_row(&p).unwrap();
            }
        }
        m
    }

    #[test]
    fn build_rejects_empty_and_bad_params() {
        assert!(matches!(
            HnswIndex::build(Matrix::zeros(0, 4), HnswParams::tiny()),
            Err(IndexError::EmptyIndex)
        ));
        let bad = HnswParams {
            m: 1,
            ..HnswParams::tiny()
        };
        assert!(HnswIndex::build(Matrix::zeros(1, 4), bad).is_err());
    }

    #[test]
    fn single_element_index() {
        let m = Matrix::from_flat(1, 3, vec![1.0, 0.0, 0.0]).unwrap();
        let idx = HnswIndex::build(m, HnswParams::tiny()).unwrap();
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        let res = idx.search(&[1.0, 0.0, 0.0], 1, None).unwrap();
        assert_eq!(res.neighbors[0].id, 0);
    }

    #[test]
    fn exact_match_is_top_result() {
        let vectors = clustered(4, 50, 16, 7);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        for probe in [0usize, 57, 123, 199] {
            let res = idx.search(vectors.row(probe).unwrap(), 1, None).unwrap();
            assert_eq!(
                res.neighbors[0].id, probe,
                "self-query should return itself"
            );
            assert!(res.stats.distance_computations > 0);
            assert!(res.stats.nodes_visited > 0);
        }
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let vectors = clustered(8, 40, 24, 11);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny().with_ef_search(64)).unwrap();
        let exact = BruteForce::new(vectors.clone(), Metric::Cosine);
        let mut hits = 0usize;
        let mut total = 0usize;
        for probe in (0..vectors.rows()).step_by(13) {
            let query = vectors.row(probe).unwrap();
            let approx = idx.search(query, 10, None).unwrap();
            let truth = exact.search(query, 10, None).unwrap();
            let truth_ids: Vec<usize> = truth.iter().map(|e| e.id).collect();
            hits += approx
                .neighbors
                .iter()
                .filter(|e| truth_ids.contains(&e.id))
                .count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(
            recall > 0.8,
            "recall {recall} too low for a healthy HNSW graph"
        );
    }

    #[test]
    fn higher_ef_construction_does_not_reduce_recall() {
        let vectors = clustered(6, 30, 16, 3);
        let lo = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let hi_params = HnswParams {
            ef_construction: 128,
            ef_search: 64,
            ..HnswParams::tiny()
        };
        let hi = HnswIndex::build(vectors.clone(), hi_params).unwrap();
        let exact = BruteForce::new(vectors.clone(), Metric::Cosine);
        let recall = |idx: &HnswIndex| {
            let mut hits = 0;
            let mut total = 0;
            for probe in (0..vectors.rows()).step_by(7) {
                let query = vectors.row(probe).unwrap();
                let approx = idx.search(query, 5, None).unwrap();
                let truth = exact.search(query, 5, None).unwrap();
                let ids: Vec<usize> = truth.iter().map(|e| e.id).collect();
                hits += approx
                    .neighbors
                    .iter()
                    .filter(|e| ids.contains(&e.id))
                    .count();
                total += truth.len();
            }
            hits as f64 / total as f64
        };
        assert!(recall(&hi) + 1e-9 >= recall(&lo) - 0.1);
    }

    #[test]
    fn prefilter_excludes_rows_but_still_traverses() {
        let vectors = clustered(4, 25, 8, 5);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let probe = 10usize;
        let query = vectors.row(probe).unwrap();
        // Exclude the probe row itself: it can no longer be returned.
        let mut filter = SelectionBitmap::all(vectors.rows());
        filter.set(probe, false).unwrap();
        let res = idx.search(query, 3, Some(&filter)).unwrap();
        assert!(res.neighbors.iter().all(|e| e.id != probe));
        assert!(!res.neighbors.is_empty());
        // Traversal cost with and without the filter is comparable (the
        // filter does not prune the graph walk).
        let unfiltered = idx.search(query, 3, None).unwrap();
        assert!(res.stats.distance_computations >= unfiltered.stats.distance_computations / 2);
    }

    #[test]
    fn restrictive_filter_returns_only_allowed_rows() {
        let vectors = clustered(3, 20, 8, 9);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let allowed: Vec<usize> = (0..10).collect();
        let filter = SelectionBitmap::from_indices(vectors.rows(), &allowed);
        let res = idx
            .search(vectors.row(30).unwrap(), 5, Some(&filter))
            .unwrap();
        assert!(res.neighbors.iter().all(|e| allowed.contains(&e.id)));
    }

    #[test]
    fn search_error_cases() {
        let vectors = clustered(2, 10, 8, 13);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        assert!(idx.search(&[0.0; 4], 1, None).is_err());
        assert!(idx.search(vectors.row(0).unwrap(), 0, None).is_err());
        let bad_filter = SelectionBitmap::all(3);
        assert!(idx
            .search(vectors.row(0).unwrap(), 1, Some(&bad_filter))
            .is_err());
    }

    #[test]
    fn probe_stats_merge() {
        let mut a = ProbeStats {
            distance_computations: 3,
            nodes_visited: 2,
        };
        let b = ProbeStats {
            distance_computations: 5,
            nodes_visited: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ProbeStats {
                distance_computations: 8,
                nodes_visited: 9
            }
        );
    }

    #[test]
    fn memory_accounting_grows_with_size() {
        let small = HnswIndex::build(clustered(2, 10, 8, 1), HnswParams::tiny()).unwrap();
        let large = HnswIndex::build(clustered(4, 50, 8, 1), HnswParams::tiny()).unwrap();
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(small.max_level() <= large.max_level() + 5);
        assert_eq!(small.dim(), 8);
        assert_eq!(small.params().m, HnswParams::tiny().m);
    }

    #[test]
    fn deterministic_build_with_same_seed() {
        let vectors = clustered(3, 15, 8, 21);
        let a = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let b = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let qa = a.search(vectors.row(5).unwrap(), 5, None).unwrap();
        let qb = b.search(vectors.row(5).unwrap(), 5, None).unwrap();
        let ids_a: Vec<usize> = qa.neighbors.iter().map(|e| e.id).collect();
        let ids_b: Vec<usize> = qb.neighbors.iter().map(|e| e.id).collect();
        assert_eq!(ids_a, ids_b);
    }
}
