//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! A from-scratch implementation of Malkov & Yashunin's algorithm with the
//! features the paper's evaluation exercises: configurable `M` /
//! `efConstruction` / `efSearch`, cosine similarity, top-k probes, relational
//! pre-filtering, and per-probe cost statistics.
//!
//! ## Construction
//!
//! Construction runs through the shared [`cej_exec::ExecPool`] worker pool:
//!
//! * With a single-thread pool, nodes are inserted sequentially — every node
//!   sees all of its predecessors, the classic algorithm.
//! * With a multi-thread pool, nodes are inserted in **layer-safe batches**:
//!   each batch plans its inserts in parallel against the committed graph
//!   (a read-only phase), then commits the new adjacency — back-links are
//!   grouped by target node so each worker owns disjoint neighbour lists,
//!   guarded by per-node `parking_lot` mutexes.  Batch sizes grow with the
//!   graph, so early nodes still densely interconnect.  The batched build is
//!   deterministic for any thread count ≥ 2.
//!
//! Back-link pruning is *amortised*: a neighbour list may temporarily grow
//! to twice its degree bound before the diversity-preserving selection
//! heuristic prunes it back, and a final parallel pass restores the bound
//! everywhere.  This removes the dominant cost of the naive implementation
//! (re-running the heuristic on every single overflow) without changing the
//! invariants search relies on.
//!
//! The neighbour-selection heuristic is the diversity-preserving variant
//! (Malkov & Yashunin, Algorithm 4); graph quality is validated in tests by
//! measuring recall against the exact [`crate::BruteForce`] baseline, and
//! batched construction is validated against sequential construction.

use std::collections::BinaryHeap;

use cej_exec::ExecPool;
use cej_storage::SelectionBitmap;
use cej_vector::{Matrix, Metric, TopK, TopKEntry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::IndexError;
use crate::params::HnswParams;
use crate::Result;

/// Baseline parallel insert window.  Nodes inside one batch cannot link to
/// each other (they are planned against the committed graph only), so the
/// batch must stay small relative to a cluster of similar vectors or
/// intra-cluster connectivity — and with it recall — degrades.  16
/// approximates the effective window of fine-grained-locking parallel
/// inserters; pools of up to four workers use exactly this window (the
/// PR-2 behaviour, bit-for-bit), keeping small-pool builds — including the
/// CI matrix legs — byte-identical across that range of thread counts.
const MAX_BATCH: usize = 16;

/// Hard ceiling on the adaptive insert window, however many workers and
/// however dense the committed graph.
const MAX_BATCH_CEILING: usize = 256;

/// The adaptive insert-window policy for pools with more than four workers
/// (ROADMAP PR-2 follow-up: the fixed 16-node window caps build parallelism
/// on >16-core machines).
///
/// The window grows with the worker count (4 insert slots per worker) but
/// only as far as the *committed-graph density* justifies: a batch is blind
/// to its own members, so wide batches are safe only once the committed
/// graph is already well connected.  Density is the sampled average layer-0
/// degree relative to the `M0` bound — an empty graph pins the window at
/// the baseline, a saturated one allows up to `4 × MAX_BATCH`.
///
/// Both inputs are thread-count-*stable* per pool size (the degree sample
/// depends only on the committed graph, which batches commit
/// deterministically), so builds remain deterministic for a given pool
/// size; pools in the ≤ 4-worker window class produce identical graphs.
fn batch_window(threads: usize, avg_layer0_degree: impl FnOnce() -> f64, m0: usize) -> usize {
    let by_threads = threads.saturating_mul(4);
    if by_threads <= MAX_BATCH {
        // small pools never consult the density sample (the closure keeps
        // the per-batch O(64) lock walk off the common path entirely)
        return MAX_BATCH;
    }
    let density = if m0 == 0 {
        0.0
    } else {
        (avg_layer0_degree() / m0 as f64).clamp(0.0, 1.0)
    };
    // density interpolates the allowance between the baseline window and
    // the ceiling: a sparse graph pins wide pools at the baseline, a
    // saturated one lets the worker-count term run up to the ceiling
    let by_density = (MAX_BATCH as f64 + (MAX_BATCH_CEILING - MAX_BATCH) as f64 * density) as usize;
    by_threads
        .min(by_density)
        .clamp(MAX_BATCH, MAX_BATCH_CEILING)
}

/// Per-probe cost counters.
///
/// The paper's index-join cost model charges `I_probe(S)` per outer tuple;
/// these counters expose what a probe actually costs in distance evaluations
/// and node visits so the scan-vs-probe trade-off can be analysed without a
/// profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of similarity computations performed.
    pub distance_computations: u64,
    /// Number of graph nodes visited (popped from the candidate queue).
    pub nodes_visited: u64,
}

impl ProbeStats {
    /// Accumulates another probe's counters into this one.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.distance_computations += other.distance_computations;
        self.nodes_visited += other.nodes_visited;
    }
}

/// Reusable visited-set for layer searches: an epoch-stamped array, so one
/// probe descending through several layers clears the set by bumping a
/// counter instead of re-zeroing (or re-allocating) `O(n)` bytes per layer.
#[derive(Debug)]
struct VisitScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitScratch {
    fn new(n: usize) -> Self {
        VisitScratch {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // A scratch now lives for a whole build, not one insert; guard
            // the (practically unreachable) epoch wrap-around.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `id` visited in the current epoch; `true` on first visit.
    fn first_visit(&mut self, id: usize) -> bool {
        if self.stamp[id] == self.epoch {
            false
        } else {
            self.stamp[id] = self.epoch;
            true
        }
    }
}

/// Reusable per-worker search state: the epoch-stamped visited set plus a
/// buffer the adjacency source copies neighbour ids into (so locks are
/// released before any similarity is computed).
#[derive(Debug)]
struct SearchScratch {
    visited: VisitScratch,
    links: Vec<u32>,
}

impl SearchScratch {
    fn new(n: usize) -> Self {
        SearchScratch {
            visited: VisitScratch::new(n),
            links: Vec::new(),
        }
    }

    /// Grows the visited set to cover `n` nodes.  New entries are stamped 0,
    /// which never equals a live epoch (epochs start at 1), so growing keeps
    /// every node correctly unvisited.
    fn ensure_capacity(&mut self, n: usize) {
        if self.visited.stamp.len() < n {
            self.visited.stamp.resize(n, 0);
        }
    }
}

/// Runs `f` with this thread's reusable query scratch, grown to cover `n`
/// nodes.  Queries allocate the `O(n)` stamp array once per thread instead
/// of once per probe — the same amortisation the build paths get from
/// [`ScratchPool`].  Worker threads of a pooled probe batch each keep one
/// scratch for their whole chunk of probes.
fn with_query_scratch<R>(n: usize, f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Option<SearchScratch>> =
            const { std::cell::RefCell::new(None) };
    }
    SCRATCH.with(|cell| {
        let mut slot = cell.borrow_mut();
        let scratch = slot.get_or_insert_with(|| SearchScratch::new(n));
        scratch.ensure_capacity(n);
        f(scratch)
    })
}

/// A lock-free-ish lending pool of [`SearchScratch`] instances, so the
/// batched build reuses the `O(n)` stamp arrays across batches instead of
/// allocating (and zeroing) one per chunk — the epoch-stamp design exists
/// precisely so a scratch can serve many searches.
///
/// Slots start empty and are filled lazily; `take` falls back to a fresh
/// allocation if every slot is busy, so correctness never depends on pool
/// capacity.  Scratch identity has no effect on search results (epochs
/// isolate every search), so reuse order does not disturb determinism.
struct ScratchPool {
    slots: Vec<std::sync::Mutex<Option<SearchScratch>>>,
    n: usize,
}

impl ScratchPool {
    fn new(capacity: usize, n: usize) -> Self {
        ScratchPool {
            slots: (0..capacity.max(1))
                .map(|_| std::sync::Mutex::new(None))
                .collect(),
            n,
        }
    }

    fn take(&self) -> SearchScratch {
        for slot in &self.slots {
            if let Ok(mut guard) = slot.try_lock() {
                if let Some(scratch) = guard.take() {
                    return scratch;
                }
            }
        }
        SearchScratch::new(self.n)
    }

    fn put(&self, scratch: SearchScratch) {
        for slot in &self.slots {
            if let Ok(mut guard) = slot.try_lock() {
                if guard.is_none() {
                    *guard = Some(scratch);
                    return;
                }
            }
        }
        // Every slot is occupied or busy: drop the scratch.
    }
}

/// Max-heap ordering for the search frontier: best score first, ties broken
/// towards the smaller id so traversal order is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MaxByScore(TopKEntry);

impl Eq for MaxByScore {}

impl Ord for MaxByScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .score
            .partial_cmp(&other.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for MaxByScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Read access to a node's adjacency at one layer.
///
/// Query-time search reads the final, unlocked lists; build-time search
/// reads through the per-node mutexes of the under-construction graph.
/// Implementors copy into the caller's buffer so no lock is held while
/// distances are computed.
trait AdjacencySource {
    fn copy_neighbors(&self, node: usize, layer: usize, out: &mut Vec<u32>);
}

impl AdjacencySource for Vec<Vec<Vec<u32>>> {
    fn copy_neighbors(&self, node: usize, layer: usize, out: &mut Vec<u32>) {
        out.clear();
        if let Some(list) = self[node].get(layer) {
            out.extend_from_slice(list);
        }
    }
}

/// The under-construction graph: one `parking_lot` mutex per node guarding
/// that node's per-layer neighbour lists, so batch commits only lock the
/// lists they actually touch.
struct LockedAdjacency {
    lists: Vec<Mutex<Vec<Vec<u32>>>>,
}

impl LockedAdjacency {
    fn new(levels: &[usize]) -> Self {
        LockedAdjacency {
            lists: levels
                .iter()
                .map(|&level| Mutex::new(vec![Vec::new(); level + 1]))
                .collect(),
        }
    }

    fn into_lists(self) -> Vec<Vec<Vec<u32>>> {
        self.lists.into_iter().map(|m| m.into_inner()).collect()
    }
}

impl AdjacencySource for LockedAdjacency {
    fn copy_neighbors(&self, node: usize, layer: usize, out: &mut Vec<u32>) {
        out.clear();
        let guard = self.lists[node].lock();
        if let Some(list) = guard.get(layer) {
            out.extend_from_slice(list);
        }
    }
}

/// Layer-search routines shared by queries and construction, generic over
/// how adjacency is read.
struct Searcher<'a, A: AdjacencySource> {
    vectors: &'a Matrix,
    metric: Metric,
    adj: &'a A,
}

impl<A: AdjacencySource> Searcher<'_, A> {
    #[inline]
    fn similarity(&self, query: &[f32], node: usize) -> f32 {
        self.metric
            .similarity(query, self.vectors.row(node).expect("node in range"))
    }

    /// Greedy search for the single closest node at `layer`, returning the
    /// node and its similarity.
    fn greedy_closest(
        &self,
        query: &[f32],
        entry: usize,
        entry_score: f32,
        layer: usize,
        scratch: &mut SearchScratch,
        stats: &mut ProbeStats,
    ) -> (usize, f32) {
        let mut current = entry;
        let mut current_score = entry_score;
        loop {
            let mut improved = false;
            stats.nodes_visited += 1;
            self.adj.copy_neighbors(current, layer, &mut scratch.links);
            for i in 0..scratch.links.len() {
                let n = scratch.links[i] as usize;
                let score = self.similarity(query, n);
                stats.distance_computations += 1;
                if score > current_score {
                    current = n;
                    current_score = score;
                    improved = true;
                }
            }
            if !improved {
                return (current, current_score);
            }
        }
    }

    /// Best-first search at one layer with a candidate list of size `ef`.
    /// Returns candidates sorted best-first.
    ///
    /// Accepts multiple *pre-scored* entry points: seeding the frontier from
    /// several upper-layer candidates (rather than the single greedy winner)
    /// lets the search escape the entry point's cluster, which measurably
    /// improves recall for probes that do not come from the indexed
    /// distribution.  Seeds carry the similarity already computed by the
    /// caller (or the previous layer), so seeding costs no distance
    /// computations and does not inflate [`ProbeStats`].
    fn search_layer(
        &self,
        query: &[f32],
        seeds: &[TopKEntry],
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
        stats: &mut ProbeStats,
    ) -> Vec<TopKEntry> {
        scratch.visited.next_epoch();
        let mut frontier: BinaryHeap<MaxByScore> = BinaryHeap::with_capacity(ef + 1);
        let mut results = TopK::new(ef);
        for &seed in seeds {
            if !scratch.visited.first_visit(seed.id) {
                continue;
            }
            frontier.push(MaxByScore(seed));
            results.push(seed.id, seed.score);
        }

        while let Some(MaxByScore(current)) = frontier.pop() {
            // Stop when the best remaining candidate cannot improve the
            // worst kept result.
            if let Some(threshold) = results.threshold() {
                if current.score < threshold {
                    break;
                }
            }
            stats.nodes_visited += 1;
            self.adj
                .copy_neighbors(current.id, layer, &mut scratch.links);
            let SearchScratch { visited, links } = scratch;
            for &n in links.iter() {
                let n = n as usize;
                if !visited.first_visit(n) {
                    continue;
                }
                let score = self.similarity(query, n);
                stats.distance_computations += 1;
                let admit = match results.threshold() {
                    Some(t) => score > t,
                    None => true,
                };
                if admit {
                    frontier.push(MaxByScore(TopKEntry::new(n, score)));
                    results.push(n, score);
                }
            }
        }
        results.into_sorted()
    }
}

/// One planned insertion: the neighbours selected for the new node at each
/// layer `0..=top_layer`, computed against the committed graph.
struct InsertPlan {
    id: usize,
    selected: Vec<Vec<u32>>,
}

/// Build-time state shared by the sequential and batched construction paths.
struct GraphBuilder<'a> {
    vectors: &'a Matrix,
    params: &'a HnswParams,
    levels: &'a [usize],
    adj: &'a LockedAdjacency,
}

impl GraphBuilder<'_> {
    fn searcher(&self) -> Searcher<'_, LockedAdjacency> {
        Searcher {
            vectors: self.vectors,
            metric: self.params.metric,
            adj: self.adj,
        }
    }

    /// Degree bound at which a list is pruned back to `max_neighbors`.
    /// Allowing the list to overshoot its bound amortises the (expensive)
    /// selection heuristic over many back-link insertions instead of paying
    /// it on every single overflow.
    fn prune_trigger(&self, layer: usize) -> usize {
        2 * self.params.max_neighbors(layer)
    }

    /// Plans the insertion of `id` against the committed graph: descends
    /// from `entry` through the upper layers, then selects neighbours per
    /// layer with `efConstruction` candidates.  Read-only.
    fn plan_insert(
        &self,
        id: usize,
        entry: usize,
        max_level: usize,
        scratch: &mut SearchScratch,
    ) -> InsertPlan {
        let searcher = self.searcher();
        let query = self.vectors.row(id).expect("row exists");
        let level = self.levels[id];
        let mut stats = ProbeStats::default();

        let mut seed = TopKEntry::new(entry, searcher.similarity(query, entry));
        stats.distance_computations += 1;
        let mut layer = max_level;
        while layer > level {
            let (node, score) =
                searcher.greedy_closest(query, seed.id, seed.score, layer, scratch, &mut stats);
            seed = TopKEntry::new(node, score);
            layer -= 1;
        }

        // For each layer at or below the node's level, find efConstruction
        // candidates and connect using the diversity-preserving neighbour
        // selection heuristic (Malkov & Yashunin, Algorithm 4).  The simple
        // "closest M" rule is known to disconnect clustered data because all
        // kept links end up inside the node's own cluster.
        let top_layer = level.min(max_level);
        let mut selected = vec![Vec::new(); top_layer + 1];
        for layer in (0..=top_layer).rev() {
            let candidates = searcher.search_layer(
                query,
                &[seed],
                self.params.ef_construction,
                layer,
                scratch,
                &mut stats,
            );
            if let Some(best) = candidates.first() {
                seed = *best;
            }
            let max_links = self.params.max_neighbors(layer);
            selected[layer] = self.select_neighbors_heuristic(&candidates, max_links);
        }
        InsertPlan { id, selected }
    }

    /// Diversity-preserving neighbour selection: a candidate is kept when it
    /// is closer to the query than to every already-kept neighbour, which
    /// guarantees links that bridge towards other regions of the graph
    /// survive.  Remaining slots are filled with the best skipped candidates
    /// (the `keepPrunedConnections` variant of the original algorithm).
    fn select_neighbors_heuristic(&self, candidates: &[TopKEntry], max: usize) -> Vec<u32> {
        let mut kept: Vec<u32> = Vec::with_capacity(max);
        let mut skipped: Vec<u32> = Vec::new();
        for cand in candidates {
            if kept.len() >= max {
                break;
            }
            let cand_vec = self.vectors.row(cand.id).expect("candidate in range");
            let diverse = kept.iter().all(|&k| {
                let to_kept = self.params.metric.similarity(
                    cand_vec,
                    self.vectors.row(k as usize).expect("kept in range"),
                );
                cand.score >= to_kept
            });
            if diverse {
                kept.push(cand.id as u32);
            } else {
                skipped.push(cand.id as u32);
            }
        }
        for s in skipped {
            if kept.len() >= max {
                break;
            }
            kept.push(s);
        }
        kept
    }

    /// Writes the plan's own adjacency lists (the forward links).
    fn commit_own_links(&self, plan: &InsertPlan) {
        let mut guard = self.adj.lists[plan.id].lock();
        for (layer, selected) in plan.selected.iter().enumerate() {
            guard[layer] = selected.clone();
        }
    }

    /// Adds the back-link `from -> to` at `layer`, pruning `from`'s list
    /// with the diversity heuristic once it overshoots the amortisation
    /// trigger.  Locks only `from`'s lists.
    fn connect(&self, from: usize, to: usize, layer: usize) {
        if from == to {
            return;
        }
        let mut guard = self.adj.lists[from].lock();
        let Some(list) = guard.get_mut(layer) else {
            return;
        };
        let to = to as u32;
        if list.contains(&to) {
            return;
        }
        list.push(to);
        if list.len() > self.prune_trigger(layer) {
            *list = self.pruned_list(from, list, self.params.max_neighbors(layer));
        }
    }

    /// Re-selects the best `bound` neighbours of `node` from `list` with the
    /// diversity heuristic.
    fn pruned_list(&self, node: usize, list: &[u32], bound: usize) -> Vec<u32> {
        let node_vec = self.vectors.row(node).expect("row exists");
        let mut scored: Vec<TopKEntry> = list
            .iter()
            .map(|&n| {
                TopKEntry::new(
                    n as usize,
                    self.params
                        .metric
                        .similarity(node_vec, self.vectors.row(n as usize).expect("in range")),
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        self.select_neighbors_heuristic(&scored, bound)
    }

    /// Classic sequential construction: every node is planned against the
    /// full graph of its predecessors and committed immediately.
    fn build_sequential(&self) -> (usize, usize) {
        let n = self.levels.len();
        let mut entry = 0usize;
        let mut max_level = self.levels[0];
        let mut scratch = SearchScratch::new(n);
        for id in 1..n {
            let plan = self.plan_insert(id, entry, max_level, &mut scratch);
            self.commit_own_links(&plan);
            for (layer, selected) in plan.selected.iter().enumerate() {
                for &nb in selected {
                    self.connect(nb as usize, id, layer);
                }
            }
            if self.levels[id] > max_level {
                max_level = self.levels[id];
                entry = id;
            }
        }
        (entry, max_level)
    }

    /// Sampled average layer-0 degree of the first `committed` (already
    /// inserted) nodes: up to 64 nodes at a fixed stride, so the cost per
    /// batch is O(64) regardless of graph size and the sample — hence the
    /// window policy fed from it — is a deterministic function of the
    /// committed graph alone.
    fn sampled_layer0_degree(&self, committed: usize) -> f64 {
        if committed == 0 {
            return 0.0;
        }
        let sample = committed.min(64);
        let stride = (committed / sample).max(1);
        let mut total = 0usize;
        let mut count = 0usize;
        let mut node = 0usize;
        while node < committed && count < sample {
            let guard = self.adj.lists[node].lock();
            total += guard.first().map(|l| l.len()).unwrap_or(0);
            count += 1;
            node += stride;
        }
        total as f64 / count as f64
    }

    /// Batched parallel construction.
    ///
    /// Each batch is planned in parallel against the committed graph (pure
    /// reads), then committed in two steps: forward links per new node, and
    /// back-links grouped by *target* so every worker owns disjoint
    /// neighbour lists.  Group order and within-group order are fixed by
    /// node id, and the [`batch_window`] policy depends only on the pool
    /// size and the committed graph, so the result is deterministic per
    /// pool size (and identical across the whole ≤ 4-worker window class).
    fn build_batched(&self, pool: &ExecPool) -> (usize, usize) {
        let n = self.levels.len();
        let scratch_pool = ScratchPool::new(pool.threads(), n);
        let mut entry = 0usize;
        let mut max_level = self.levels[0];
        let mut next = 1usize;
        while next < n {
            let window = batch_window(
                pool.threads(),
                || self.sampled_layer0_degree(next),
                self.params.m0,
            );
            let end = (next + next.min(window)).min(n);
            let plans: Vec<InsertPlan> = pool
                .parallel_chunks(end - next, |range| {
                    let mut scratch = scratch_pool.take();
                    let chunk_plans: Vec<InsertPlan> = range
                        .map(|off| self.plan_insert(next + off, entry, max_level, &mut scratch))
                        .collect();
                    scratch_pool.put(scratch);
                    chunk_plans
                })
                .into_iter()
                .flatten()
                .collect();

            for plan in &plans {
                self.commit_own_links(plan);
            }

            let mut groups: std::collections::BTreeMap<u32, Vec<(u32, u32)>> =
                std::collections::BTreeMap::new();
            for plan in &plans {
                for (layer, selected) in plan.selected.iter().enumerate() {
                    for &nb in selected {
                        groups
                            .entry(nb)
                            .or_default()
                            .push((plan.id as u32, layer as u32));
                    }
                }
            }
            let groups: Vec<(u32, Vec<(u32, u32)>)> = groups.into_iter().collect();
            pool.parallel_map(&groups, |(target, additions)| {
                for &(new_id, layer) in additions {
                    self.connect(*target as usize, new_id as usize, layer as usize);
                }
            });

            for id in next..end {
                if self.levels[id] > max_level {
                    max_level = self.levels[id];
                    entry = id;
                }
            }
            next = end;
        }
        (entry, max_level)
    }

    /// Restores the per-layer degree bounds that amortised pruning may have
    /// left overshot, in parallel over nodes.
    fn final_prune(&self, pool: &ExecPool) {
        let n = self.levels.len();
        pool.parallel_chunks(n, |range| {
            for node in range {
                let mut guard = self.adj.lists[node].lock();
                for layer in 0..guard.len() {
                    let bound = self.params.max_neighbors(layer);
                    if guard[layer].len() > bound {
                        guard[layer] = self.pruned_list(node, &guard[layer], bound);
                    }
                }
            }
        });
    }
}

/// The result of one top-k probe.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The k best (unfiltered-out) neighbours, best first.
    pub neighbors: Vec<TopKEntry>,
    /// Probe cost counters.
    pub stats: ProbeStats,
}

/// An immutable HNSW index over a matrix of row-vectors.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    params: HnswParams,
    vectors: Matrix,
    /// `neighbors[node][layer]` is the adjacency list of `node` at `layer`
    /// (present for layers `0..=level(node)`).
    neighbors: Vec<Vec<Vec<u32>>>,
    levels: Vec<usize>,
    entry_point: usize,
    max_level: usize,
}

impl HnswIndex {
    /// Builds an index over the rows of `vectors` using the process-wide
    /// worker pool (`CEJ_THREADS`).
    ///
    /// # Errors
    /// Returns [`IndexError::EmptyIndex`] for an empty input and
    /// [`IndexError::InvalidParameter`] for degenerate parameters.
    pub fn build(vectors: Matrix, params: HnswParams) -> Result<Self> {
        Self::build_with_pool(vectors, params, ExecPool::global())
    }

    /// Builds an index using an explicit worker pool.
    ///
    /// A single-thread pool runs the classic sequential insertion; a
    /// multi-thread pool runs the batched parallel construction (see the
    /// module docs).  Either way the build is deterministic for a given
    /// seed and pool size class.
    ///
    /// # Errors
    /// Returns [`IndexError::EmptyIndex`] for an empty input and
    /// [`IndexError::InvalidParameter`] for degenerate parameters.
    pub fn build_with_pool(vectors: Matrix, params: HnswParams, pool: &ExecPool) -> Result<Self> {
        if vectors.rows() == 0 {
            return Err(IndexError::EmptyIndex);
        }
        if params.m < 2 || params.m0 < params.m || params.ef_construction == 0 {
            return Err(IndexError::InvalidParameter(format!(
                "degenerate HNSW parameters: M={}, M0={}, efC={}",
                params.m, params.m0, params.ef_construction
            )));
        }
        let n = vectors.rows();
        // Levels come from the same seeded RNG stream for every build mode,
        // so the layer structure is identical across thread counts.
        let mut rng = StdRng::seed_from_u64(params.seed);
        let lambda = params.level_lambda();
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-u.ln() * lambda).floor() as usize
            })
            .collect();

        let adj = LockedAdjacency::new(&levels);
        let builder = GraphBuilder {
            vectors: &vectors,
            params: &params,
            levels: &levels,
            adj: &adj,
        };
        let (entry_point, max_level) = if n == 1 {
            (0, levels[0])
        } else if pool.threads() <= 1 {
            builder.build_sequential()
        } else {
            builder.build_batched(pool)
        };
        builder.final_prune(pool);

        Ok(HnswIndex {
            params,
            vectors,
            neighbors: adj.into_lists(),
            levels,
            entry_point,
            max_level,
        })
    }

    /// Extends the index with additional vectors, returning a new index
    /// that contains the old graph plus the new nodes — the incremental
    /// insert path for delta maintenance, where rebuilding the whole graph
    /// per append would cost O(table) instead of O(delta).
    ///
    /// New nodes are inserted sequentially with the classic algorithm: each
    /// is planned against the full existing graph, so graph quality matches
    /// a sequential build's tail inserts.  Node levels are drawn from the
    /// same seeded RNG stream as construction, skipping the draws the
    /// existing nodes consumed — an index extended in two steps assigns the
    /// same levels as one extended in a single step.  Existing node ids are
    /// stable: new rows take ids `old_len..old_len + added.rows()`, matching
    /// their row offsets in the concatenated base table.
    ///
    /// `self` is untouched (live probes keep their snapshot); the returned
    /// index is the replacement to publish.
    ///
    /// # Errors
    /// Returns [`IndexError::DimensionMismatch`] when `added`'s width
    /// differs from the indexed vectors.
    pub fn extend(&self, added: &Matrix) -> Result<Self> {
        if added.rows() == 0 {
            return Ok(self.clone());
        }
        if added.cols() != self.dim() {
            return Err(IndexError::DimensionMismatch {
                indexed: self.dim(),
                query: added.cols(),
            });
        }
        let old_n = self.len();
        let n = old_n + added.rows();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let lambda = self.params.level_lambda();
        for _ in 0..old_n {
            let _: f64 = rng.gen_range(f64::EPSILON..1.0);
        }
        let mut levels = self.levels.clone();
        levels.extend((0..added.rows()).map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-u.ln() * lambda).floor() as usize
        }));

        let mut vectors = self.vectors.clone();
        for r in 0..added.rows() {
            vectors
                .push_row(added.row(r).expect("row in range"))
                .expect("dimensions checked above");
        }

        // Re-materialise the committed graph behind per-node locks so the
        // shared build machinery (plan / commit / connect / prune) applies.
        let adj = LockedAdjacency::new(&levels);
        for (id, per_layer) in self.neighbors.iter().enumerate() {
            let mut guard = adj.lists[id].lock();
            for (layer, list) in per_layer.iter().enumerate() {
                guard[layer] = list.clone();
            }
        }
        let builder = GraphBuilder {
            vectors: &vectors,
            params: &self.params,
            levels: &levels,
            adj: &adj,
        };
        let mut entry = self.entry_point;
        let mut max_level = self.max_level;
        let mut scratch = SearchScratch::new(n);
        for (id, &level) in levels.iter().enumerate().take(n).skip(old_n) {
            let plan = builder.plan_insert(id, entry, max_level, &mut scratch);
            builder.commit_own_links(&plan);
            for (layer, selected) in plan.selected.iter().enumerate() {
                for &nb in selected {
                    builder.connect(nb as usize, id, layer);
                }
            }
            if level > max_level {
                max_level = level;
                entry = id;
            }
        }
        // Amortised pruning may leave lists overshot; restore the bounds.
        // Per-node pruning is independent, so the pool split cannot affect
        // the result.
        builder.final_prune(ExecPool::global());

        Ok(HnswIndex {
            params: self.params,
            vectors,
            neighbors: adj.into_lists(),
            levels,
            entry_point: entry,
            max_level,
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// `true` when no vectors are indexed (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Overrides the *search-time* parameters (`efSearch` and the descent
    /// beam width) without rebuilding the graph.  Construction parameters
    /// (`M`, `M0`, `efConstruction`, metric, seed) are fixed at build time;
    /// this setter exists so parameter sweeps (`cej-bench`'s `beam_sweep`)
    /// can map the cost/recall curve of one graph instead of rebuilding it
    /// per configuration.
    pub fn set_search_params(&mut self, ef_search: usize, beam_width: usize) {
        self.params.ef_search = ef_search.max(1);
        self.params.beam_width = beam_width;
    }

    /// The highest layer currently in use.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Approximate memory footprint of the graph structure in bytes
    /// (vectors + adjacency lists).
    pub fn memory_bytes(&self) -> usize {
        let adjacency: usize = self
            .neighbors
            .iter()
            .map(|per_layer| per_layer.iter().map(|l| l.len() * 4).sum::<usize>())
            .sum();
        self.vectors.bytes() + adjacency + self.levels.len() * std::mem::size_of::<usize>()
    }

    /// Top-k probe with optional relational pre-filter.
    ///
    /// Filtered-out rows are excluded from the returned neighbours but the
    /// graph traversal still visits them — this matches the pre-filtering
    /// behaviour of vector databases that the paper evaluates against, where
    /// the relational filter cannot prune the index traversal itself.
    ///
    /// # Errors
    /// Returns dimension and filter-length errors, and
    /// [`IndexError::InvalidParameter`] for `k == 0`.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&SelectionBitmap>,
    ) -> Result<SearchResult> {
        if k == 0 {
            return Err(IndexError::InvalidParameter("k must be > 0".into()));
        }
        if query.len() != self.dim() {
            return Err(IndexError::DimensionMismatch {
                indexed: self.dim(),
                query: query.len(),
            });
        }
        if let Some(f) = filter {
            if f.len() != self.len() {
                return Err(IndexError::FilterLengthMismatch {
                    rows: self.len(),
                    filter: f.len(),
                });
            }
        }
        with_query_scratch(self.len(), |scratch| {
            self.search_inner(query, k, filter, scratch)
        })
    }

    /// The probe body, run with a borrowed (thread-reused) scratch.
    fn search_inner(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&SelectionBitmap>,
        scratch: &mut SearchScratch,
    ) -> Result<SearchResult> {
        let searcher = Searcher {
            vectors: &self.vectors,
            metric: self.params.metric,
            adj: &self.neighbors,
        };
        let mut stats = ProbeStats::default();
        let ef = self.params.ef_search.max(k);
        // Multi-entry descent: keep a small beam of candidates per upper
        // layer instead of a single greedy winner, then seed the layer-0
        // search with the whole beam.  For probes drawn from a different
        // distribution than the indexed vectors (the hard case in the
        // scan-vs-probe experiments) a single greedy entry frequently lands
        // in the wrong cluster and the layer-0 search cannot escape it;
        // the beam repairs exactly that failure mode.  Each layer's output
        // seeds the next (scores included), so the descent never re-scores
        // a node it already knows.  The width comes from
        // [`HnswParams::beam_for`]: an explicit `beam_width`, or the
        // `(ef/8).clamp(1, 16)`-style heuristic by default.
        let beam_width = self.params.beam_for(k);
        let entry_score = searcher.similarity(query, self.entry_point);
        stats.distance_computations += 1;
        let mut seeds: Vec<TopKEntry> = vec![TopKEntry::new(self.entry_point, entry_score)];
        let mut layer = self.max_level;
        while layer > 0 {
            seeds = searcher.search_layer(query, &seeds, beam_width, layer, scratch, &mut stats);
            layer -= 1;
        }
        let candidates = searcher.search_layer(query, &seeds, ef, 0, scratch, &mut stats);
        let mut kept = TopK::new(k);
        for c in candidates {
            let allowed = filter.map(|f| f.is_selected(c.id)).unwrap_or(true);
            if allowed {
                kept.push(c.id, c.score);
            }
        }
        Ok(SearchResult {
            neighbors: kept.into_sorted(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::self_probe_recall;
    use rand::Rng;

    /// Deterministic clustered vectors: `clusters` centroids, `per_cluster`
    /// points each, normalised.
    fn clustered(clusters: usize, per_cluster: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(0, dim);
        for c in 0..clusters {
            let centroid: Vec<f32> = (0..dim)
                .map(|_| rng.gen_range(-1.0..1.0) + c as f32)
                .collect();
            for _ in 0..per_cluster {
                let mut p: Vec<f32> = centroid
                    .iter()
                    .map(|v| v + rng.gen_range(-0.05..0.05))
                    .collect();
                let norm: f32 = p.iter().map(|x| x * x).sum::<f32>().sqrt();
                p.iter_mut().for_each(|x| *x /= norm);
                m.push_row(&p).unwrap();
            }
        }
        m
    }

    #[test]
    fn build_rejects_empty_and_bad_params() {
        assert!(matches!(
            HnswIndex::build(Matrix::zeros(0, 4), HnswParams::tiny()),
            Err(IndexError::EmptyIndex)
        ));
        let bad = HnswParams {
            m: 1,
            ..HnswParams::tiny()
        };
        assert!(HnswIndex::build(Matrix::zeros(1, 4), bad).is_err());
    }

    #[test]
    fn single_element_index() {
        let m = Matrix::from_flat(1, 3, vec![1.0, 0.0, 0.0]).unwrap();
        let idx = HnswIndex::build(m, HnswParams::tiny()).unwrap();
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        let res = idx.search(&[1.0, 0.0, 0.0], 1, None).unwrap();
        assert_eq!(res.neighbors[0].id, 0);
    }

    #[test]
    fn exact_match_is_top_result() {
        let vectors = clustered(4, 50, 16, 7);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        for probe in [0usize, 57, 123, 199] {
            let res = idx.search(vectors.row(probe).unwrap(), 1, None).unwrap();
            assert_eq!(
                res.neighbors[0].id, probe,
                "self-query should return itself"
            );
            assert!(res.stats.distance_computations > 0);
            assert!(res.stats.nodes_visited > 0);
        }
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let vectors = clustered(8, 40, 24, 11);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny().with_ef_search(64)).unwrap();
        let recall = self_probe_recall(&idx, &vectors, 10, 13).unwrap();
        assert!(
            recall > 0.8,
            "recall {recall} too low for a healthy HNSW graph"
        );
    }

    #[test]
    fn higher_ef_construction_does_not_reduce_recall() {
        let vectors = clustered(6, 30, 16, 3);
        let lo = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let hi_params = HnswParams {
            ef_construction: 128,
            ef_search: 64,
            ..HnswParams::tiny()
        };
        let hi = HnswIndex::build(vectors.clone(), hi_params).unwrap();
        let lo_recall = self_probe_recall(&lo, &vectors, 5, 7).unwrap();
        let hi_recall = self_probe_recall(&hi, &vectors, 5, 7).unwrap();
        assert!(hi_recall + 1e-9 >= lo_recall - 0.1);
    }

    #[test]
    fn sequential_and_batched_builds_have_equivalent_recall() {
        let vectors = clustered(6, 150, 16, 19);
        let params = HnswParams::tiny().with_ef_search(96);
        let sequential =
            HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(1)).unwrap();
        let batched =
            HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(4)).unwrap();
        let seq_recall = self_probe_recall(&sequential, &vectors, 10, 17).unwrap();
        let par_recall = self_probe_recall(&batched, &vectors, 10, 17).unwrap();
        assert!(
            (seq_recall - par_recall).abs() <= 0.01,
            "sequential recall {seq_recall} vs batched recall {par_recall}"
        );
    }

    #[test]
    fn batched_build_is_deterministic_within_the_small_window_class() {
        // Pools of 2..=4 workers share the baseline 16-node window, so their
        // graphs are bit-identical (the PR-2 guarantee, re-pinned after the
        // adaptive window landed for larger pools).
        let vectors = clustered(4, 60, 12, 23);
        let params = HnswParams::tiny();
        let two = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(2)).unwrap();
        let four = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(4)).unwrap();
        assert_eq!(two.neighbors, four.neighbors);
        assert_eq!(two.entry_point, four.entry_point);
        assert_eq!(two.max_level, four.max_level);
    }

    #[test]
    fn wide_pool_build_is_deterministic_per_pool_size() {
        // Above the small-window class the window scales with the worker
        // count, so an 8-worker build may differ from a 2-worker build —
        // but it must be exactly reproducible for its own pool size.
        let vectors = clustered(4, 60, 12, 23);
        let params = HnswParams::tiny();
        let a = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(8)).unwrap();
        let b = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(8)).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.entry_point, b.entry_point);
    }

    #[test]
    fn wide_pool_recall_stays_equivalent_to_sequential() {
        let vectors = clustered(6, 100, 16, 19);
        let params = HnswParams::tiny().with_ef_search(96);
        let sequential =
            HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(1)).unwrap();
        let wide = HnswIndex::build_with_pool(vectors.clone(), params, &ExecPool::new(8)).unwrap();
        let seq_recall = self_probe_recall(&sequential, &vectors, 10, 17).unwrap();
        let wide_recall = self_probe_recall(&wide, &vectors, 10, 17).unwrap();
        // a wider window trades a little intra-batch connectivity for build
        // parallelism; hold it to a few points of the sequential recall
        assert!(
            (seq_recall - wide_recall).abs() <= 0.05,
            "sequential recall {seq_recall} vs wide-window recall {wide_recall}"
        );
    }

    #[test]
    fn batch_window_policy() {
        // ≤ 4 workers: exactly the baseline window, and the density sample
        // is never even computed (the closure must not run).
        for threads in 1..=4 {
            assert_eq!(
                batch_window(threads, || panic!("density sampled needlessly"), 16),
                MAX_BATCH
            );
        }
        // wider pools scale with worker count when the graph is dense…
        assert_eq!(batch_window(16, || 16.0, 16), 64);
        // …but a sparse committed graph pins the window at the baseline…
        assert_eq!(batch_window(16, || 0.0, 16), MAX_BATCH);
        // …and density interpolates the allowance in between.
        let half = batch_window(64, || 8.0, 16);
        assert!(half > MAX_BATCH && half < MAX_BATCH_CEILING, "got {half}");
        // the ceiling holds for absurd pools at full density
        assert_eq!(batch_window(1000, || 16.0, 16), MAX_BATCH_CEILING);
        // degenerate M0 never divides by zero
        assert_eq!(batch_window(16, || 4.0, 0), MAX_BATCH);
    }

    #[test]
    fn degree_bounds_hold_after_build() {
        for pool in [ExecPool::new(1), ExecPool::new(4)] {
            let vectors = clustered(5, 80, 12, 29);
            let params = HnswParams::tiny();
            let idx = HnswIndex::build_with_pool(vectors, params, &pool).unwrap();
            for (node, per_layer) in idx.neighbors.iter().enumerate() {
                for (layer, list) in per_layer.iter().enumerate() {
                    assert!(
                        list.len() <= params.max_neighbors(layer),
                        "node {node} layer {layer} exceeds bound: {}",
                        list.len()
                    );
                    assert!(!list.contains(&(node as u32)), "self-link at node {node}");
                }
            }
        }
    }

    #[test]
    fn prefilter_excludes_rows_but_still_traverses() {
        let vectors = clustered(4, 25, 8, 5);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let probe = 10usize;
        let query = vectors.row(probe).unwrap();
        // Exclude the probe row itself: it can no longer be returned.
        let mut filter = SelectionBitmap::all(vectors.rows());
        filter.set(probe, false).unwrap();
        let res = idx.search(query, 3, Some(&filter)).unwrap();
        assert!(res.neighbors.iter().all(|e| e.id != probe));
        assert!(!res.neighbors.is_empty());
        // Traversal cost with and without the filter is comparable (the
        // filter does not prune the graph walk).
        let unfiltered = idx.search(query, 3, None).unwrap();
        assert!(res.stats.distance_computations >= unfiltered.stats.distance_computations / 2);
    }

    #[test]
    fn restrictive_filter_returns_only_allowed_rows() {
        let vectors = clustered(3, 20, 8, 9);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let allowed: Vec<usize> = (0..10).collect();
        let filter = SelectionBitmap::from_indices(vectors.rows(), &allowed);
        let res = idx
            .search(vectors.row(30).unwrap(), 5, Some(&filter))
            .unwrap();
        assert!(res.neighbors.iter().all(|e| allowed.contains(&e.id)));
    }

    #[test]
    fn search_error_cases() {
        let vectors = clustered(2, 10, 8, 13);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        assert!(idx.search(&[0.0; 4], 1, None).is_err());
        assert!(idx.search(vectors.row(0).unwrap(), 0, None).is_err());
        let bad_filter = SelectionBitmap::all(3);
        assert!(idx
            .search(vectors.row(0).unwrap(), 1, Some(&bad_filter))
            .is_err());
    }

    #[test]
    fn probe_stats_merge() {
        let mut a = ProbeStats {
            distance_computations: 3,
            nodes_visited: 2,
        };
        let b = ProbeStats {
            distance_computations: 5,
            nodes_visited: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ProbeStats {
                distance_computations: 8,
                nodes_visited: 9
            }
        );
    }

    #[test]
    fn memory_accounting_grows_with_size() {
        let small = HnswIndex::build(clustered(2, 10, 8, 1), HnswParams::tiny()).unwrap();
        let large = HnswIndex::build(clustered(4, 50, 8, 1), HnswParams::tiny()).unwrap();
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(small.max_level() <= large.max_level() + 5);
        assert_eq!(small.dim(), 8);
        assert_eq!(small.params().m, HnswParams::tiny().m);
    }

    #[test]
    fn deterministic_build_with_same_seed() {
        let vectors = clustered(3, 15, 8, 21);
        let a = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let b = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let qa = a.search(vectors.row(5).unwrap(), 5, None).unwrap();
        let qb = b.search(vectors.row(5).unwrap(), 5, None).unwrap();
        let ids_a: Vec<usize> = qa.neighbors.iter().map(|e| e.id).collect();
        let ids_b: Vec<usize> = qb.neighbors.iter().map(|e| e.id).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn explicit_beam_width_is_honoured() {
        let vectors = clustered(4, 40, 12, 31);
        let wide = HnswIndex::build(
            vectors.clone(),
            HnswParams::tiny().with_beam_width(16).with_ef_search(64),
        )
        .unwrap();
        let narrow = HnswIndex::build(
            vectors.clone(),
            HnswParams::tiny().with_beam_width(1).with_ef_search(64),
        )
        .unwrap();
        for probe in [3usize, 47, 101] {
            let q = vectors.row(probe).unwrap();
            let wide_res = wide.search(q, 5, None).unwrap();
            let narrow_res = narrow.search(q, 5, None).unwrap();
            // Both beam settings must produce a healthy probe: the query
            // vector itself is always the top result.
            assert_eq!(wide_res.neighbors[0].id, probe);
            assert_eq!(narrow_res.neighbors[0].id, probe);
            assert_eq!(wide_res.neighbors.len(), 5);
            assert_eq!(narrow_res.neighbors.len(), 5);
        }
    }

    /// Split a matrix into `[0, at)` and `[at, rows)` halves.
    fn split_rows(m: &Matrix, at: usize) -> (Matrix, Matrix) {
        let mut head = Matrix::zeros(0, m.cols());
        let mut tail = Matrix::zeros(0, m.cols());
        for r in 0..m.rows() {
            let row = m.row(r).unwrap();
            if r < at {
                head.push_row(row).unwrap();
            } else {
                tail.push_row(row).unwrap();
            }
        }
        (head, tail)
    }

    #[test]
    fn extend_appends_searchable_rows() {
        let vectors = clustered(5, 40, 12, 43);
        let (head, tail) = split_rows(&vectors, 150);
        let base = HnswIndex::build(head, HnswParams::tiny().with_ef_search(64)).unwrap();
        let grown = base.extend(&tail).unwrap();
        assert_eq!(grown.len(), vectors.rows());
        assert_eq!(base.len(), 150, "extend must not mutate the original");
        for probe in [0usize, 149, 150, 175, 199] {
            let res = grown.search(vectors.row(probe).unwrap(), 1, None).unwrap();
            assert_eq!(res.neighbors[0].id, probe, "self-query after extend");
        }
        let recall = self_probe_recall(&grown, &vectors, 10, 17).unwrap();
        assert!(recall > 0.8, "recall {recall} too low after extend");
    }

    #[test]
    fn extend_preserves_degree_bounds_and_level_schedule() {
        let vectors = clustered(4, 50, 8, 9);
        let params = HnswParams::tiny();
        let (head, tail) = split_rows(&vectors, 120);
        let grown = HnswIndex::build(head, params)
            .unwrap()
            .extend(&tail)
            .unwrap();
        let full = HnswIndex::build(vectors, params).unwrap();
        // The level draws are replayed from the shared seed, so an extended
        // index assigns exactly the levels a from-scratch build would.
        assert_eq!(grown.levels, full.levels);
        assert_eq!(grown.max_level, full.max_level);
        for (node, per_layer) in grown.neighbors.iter().enumerate() {
            for (layer, list) in per_layer.iter().enumerate() {
                assert!(
                    list.len() <= params.max_neighbors(layer),
                    "node {node} layer {layer} exceeds bound after extend"
                );
                assert!(!list.contains(&(node as u32)), "self-link at node {node}");
            }
        }
    }

    #[test]
    fn extend_edge_cases() {
        let vectors = clustered(3, 20, 8, 51);
        let idx = HnswIndex::build(vectors.clone(), HnswParams::tiny()).unwrap();
        let same = idx.extend(&Matrix::zeros(0, 8)).unwrap();
        assert_eq!(same.len(), idx.len());
        assert!(matches!(
            idx.extend(&Matrix::zeros(2, 4)),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }
}
