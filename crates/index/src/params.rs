//! HNSW construction and search parameters.

use cej_vector::Metric;
use serde::{Deserialize, Serialize};

/// Parameters of the HNSW graph (Malkov & Yashunin, TPAMI 2020), the index
/// the paper benchmarks against (built inside Milvus, Section VI-E).
///
/// All fields are integral (plus the [`Metric`] enum), so parameter sets are
/// `Eq + Hash` and can key persistent-index caches such as the session's
/// `IndexManager` in `cej-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HnswParams {
    /// Maximum out-degree per node on the upper layers (`M`).
    pub m: usize,
    /// Maximum out-degree on the base layer (`M0`, conventionally `2·M`).
    pub m0: usize,
    /// Candidate list size during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Candidate list size during search (`efSearch`).
    pub ef_search: usize,
    /// Width of the multi-entry descent beam kept per upper layer during
    /// search.  `0` (the default) selects the adaptive heuristic
    /// `(efSearch / 8)` clamped to `1..=16` and widened to cover `k`; any
    /// positive value is used as-is.
    pub beam_width: usize,
    /// Similarity metric (the paper builds cosine-distance indexes).
    pub metric: Metric,
    /// Seed for the level generator, fixed for reproducibility.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self::low_recall()
    }
}

impl HnswParams {
    /// The paper's *high-recall* configuration: `M = 64`,
    /// `efConstruction = 512` (Figure 15-17, "Index Join (Hi)").
    pub fn high_recall() -> Self {
        Self {
            m: 64,
            m0: 128,
            ef_construction: 512,
            ef_search: 128,
            beam_width: 0,
            metric: Metric::Cosine,
            seed: 42,
        }
    }

    /// The paper's *low-recall* configuration: `M = 32`,
    /// `efConstruction = 256` ("Index Join (Lo)").
    pub fn low_recall() -> Self {
        Self {
            m: 32,
            m0: 64,
            ef_construction: 256,
            ef_search: 64,
            beam_width: 0,
            metric: Metric::Cosine,
            seed: 42,
        }
    }

    /// A small configuration for unit tests (fast to build).
    pub fn tiny() -> Self {
        Self {
            m: 8,
            m0: 16,
            ef_construction: 32,
            ef_search: 32,
            beam_width: 0,
            metric: Metric::Cosine,
            seed: 42,
        }
    }

    /// Sets `efSearch`.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef.max(1);
        self
    }

    /// Sets the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets an explicit multi-entry descent beam width (`0` restores the
    /// adaptive heuristic).
    pub fn with_beam_width(mut self, beam_width: usize) -> Self {
        self.beam_width = beam_width;
        self
    }

    /// The descent beam width used by a top-`k` probe: the explicit
    /// [`HnswParams::beam_width`] when set, otherwise the adaptive
    /// heuristic `(efSearch / 8).clamp(1, 16)` widened to cover `k` (with
    /// `efSearch` itself widened to at least `k`, matching the search's
    /// effective `ef`).
    pub fn beam_for(&self, k: usize) -> usize {
        if self.beam_width > 0 {
            return self.beam_width;
        }
        let ef = self.ef_search.max(k);
        (ef / 8).clamp(1, 16).max(k.min(16))
    }

    /// The level-generation normalisation factor `mL = 1 / ln(M)`.
    pub fn level_lambda(&self) -> f64 {
        1.0 / (self.m.max(2) as f64).ln()
    }

    /// Maximum neighbours allowed at `layer`.
    pub fn max_neighbors(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m0
        } else {
            self.m
        }
    }

    /// Label used by the benchmark harness ("Hi" / "Lo" / custom).
    pub fn label(&self) -> String {
        if *self == Self::high_recall() {
            "Hi".to_string()
        } else if *self == Self::low_recall() {
            "Lo".to_string()
        } else {
            format!("M={},efC={}", self.m, self.ef_construction)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let hi = HnswParams::high_recall();
        assert_eq!((hi.m, hi.ef_construction), (64, 512));
        let lo = HnswParams::low_recall();
        assert_eq!((lo.m, lo.ef_construction), (32, 256));
        assert_eq!(hi.label(), "Hi");
        assert_eq!(lo.label(), "Lo");
        assert_eq!(HnswParams::default(), lo);
    }

    #[test]
    fn max_neighbors_per_layer() {
        let p = HnswParams::tiny();
        assert_eq!(p.max_neighbors(0), 16);
        assert_eq!(p.max_neighbors(1), 8);
        assert_eq!(p.max_neighbors(5), 8);
    }

    #[test]
    fn level_lambda_positive() {
        assert!(HnswParams::tiny().level_lambda() > 0.0);
        assert!(HnswParams::high_recall().level_lambda() < HnswParams::tiny().level_lambda());
    }

    #[test]
    fn builders() {
        let p = HnswParams::tiny()
            .with_ef_search(7)
            .with_metric(Metric::InnerProduct);
        assert_eq!(p.ef_search, 7);
        assert_eq!(p.metric, Metric::InnerProduct);
        assert!(p.label().contains("M=8"));
    }

    #[test]
    fn default_beam_width_pins_the_original_heuristic() {
        // The adaptive default must reproduce the hard-coded heuristic the
        // beam descent shipped with: `(ef / 8).clamp(1, 16).max(k.min(16))`
        // where `ef = ef_search.max(k)`.
        for params in [
            HnswParams::tiny(),
            HnswParams::low_recall(),
            HnswParams::high_recall(),
            HnswParams::tiny().with_ef_search(96),
        ] {
            assert_eq!(params.beam_width, 0, "heuristic must be the default");
            for k in [1, 3, 10, 32, 100] {
                let ef = params.ef_search.max(k);
                let expected = (ef / 8).clamp(1, 16).max(k.min(16));
                assert_eq!(
                    params.beam_for(k),
                    expected,
                    "ef_search={} k={k}",
                    params.ef_search
                );
            }
        }
        // Pin two concrete values so a formula change cannot slip through.
        assert_eq!(HnswParams::low_recall().beam_for(1), 8);
        assert_eq!(HnswParams::low_recall().with_ef_search(96).beam_for(1), 12);
    }

    #[test]
    fn explicit_beam_width_overrides_heuristic() {
        let p = HnswParams::tiny().with_beam_width(5);
        assert_eq!(p.beam_for(1), 5);
        assert_eq!(p.beam_for(100), 5);
        // zero restores the adaptive behaviour
        let back = p.with_beam_width(0);
        assert_eq!(back.beam_for(1), HnswParams::tiny().beam_for(1));
        // label distinguishes customised params from the presets
        assert_ne!(HnswParams::low_recall().with_beam_width(4).label(), "Lo");
    }
}
