//! Recall measurement against the exact baseline.
//!
//! Every place that validates graph quality — unit tests, the workspace
//! integration tests, the `hnsw_build` benchmark — asks the same question:
//! *of the exact top-k neighbours, how many does the index recover?*  This
//! module is the single definition of that metric, so tests and benchmarks
//! cannot silently drift apart.

use cej_vector::Matrix;

use crate::brute_force::BruteForce;
use crate::hnsw::HnswIndex;
use crate::Result;

/// Average top-`k` recall of `index` over the rows of `queries`, measured
/// against an exact [`BruteForce`] scan of `corpus` (the indexed vectors).
///
/// Returns a value in `[0, 1]`; an empty query matrix yields `0 / 0 = 0`
/// avoided by the max-1 guard (defined as recall 0).
///
/// # Errors
/// Propagates search errors (dimension mismatches, `k == 0`).
pub fn probe_recall(index: &HnswIndex, corpus: &Matrix, queries: &Matrix, k: usize) -> Result<f64> {
    let exact = BruteForce::new(corpus.clone(), index.params().metric);
    let mut hits = 0usize;
    let mut total = 0usize;
    for row in 0..queries.rows() {
        let query = queries.row(row).expect("row in range");
        let approx = index.search(query, k, None)?;
        let truth = exact.search(query, k, None)?;
        let truth_ids: Vec<usize> = truth.iter().map(|e| e.id).collect();
        hits += approx
            .neighbors
            .iter()
            .filter(|e| truth_ids.contains(&e.id))
            .count();
        total += truth.len();
    }
    Ok(hits as f64 / total.max(1) as f64)
}

/// [`probe_recall`] with self-queries: every `step`-th corpus row probes the
/// index built over that same corpus (the pattern the unit and integration
/// tests use).
///
/// # Errors
/// Propagates search errors.
pub fn self_probe_recall(index: &HnswIndex, corpus: &Matrix, k: usize, step: usize) -> Result<f64> {
    let mut queries = Matrix::zeros(0, corpus.cols());
    for row in (0..corpus.rows()).step_by(step.max(1)) {
        queries
            .push_row(corpus.row(row).expect("row in range"))
            .expect("row widths agree");
    }
    probe_recall(index, corpus, &queries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HnswParams;
    use cej_vector::Vector;

    fn tiny_corpus() -> Matrix {
        let rows: Vec<Vector> = (0..32)
            .map(|i| {
                let angle = i as f32 * 0.2;
                Vector::new(vec![angle.cos(), angle.sin(), 0.1, 0.2])
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn self_probes_of_a_healthy_index_score_high() {
        let corpus = tiny_corpus();
        let index = HnswIndex::build(corpus.clone(), HnswParams::tiny()).unwrap();
        let recall = self_probe_recall(&index, &corpus, 3, 1).unwrap();
        assert!(recall > 0.9, "self-probe recall {recall} unexpectedly low");
    }

    #[test]
    fn empty_queries_define_recall_zero() {
        let corpus = tiny_corpus();
        let index = HnswIndex::build(corpus.clone(), HnswParams::tiny()).unwrap();
        let queries = Matrix::zeros(0, corpus.cols());
        assert_eq!(probe_recall(&index, &corpus, &queries, 3).unwrap(), 0.0);
    }

    #[test]
    fn search_errors_propagate() {
        let corpus = tiny_corpus();
        let index = HnswIndex::build(corpus.clone(), HnswParams::tiny()).unwrap();
        assert!(probe_recall(&index, &corpus, &corpus, 0).is_err());
        let wrong_dim = Matrix::zeros(1, 8);
        assert!(probe_recall(&index, &corpus, &wrong_dim, 1).is_err());
    }
}
