//! # cej-index
//!
//! From-scratch HNSW (Hierarchical Navigable Small World) approximate
//! nearest-neighbour index — the substrate standing in for the vector
//! database (Milvus + HNSW) that the paper benchmarks its scan-based tensor
//! join against (Section VI-E).
//!
//! Key properties mirrored from the paper's setup:
//!
//! * cosine-similarity graphs built with the paper's two configurations,
//!   [`HnswParams::high_recall`] (`M = 64`, `efConstruction = 512`) and
//!   [`HnswParams::low_recall`] (`M = 32`, `efConstruction = 256`);
//! * **top-k probe semantics**: an index probe must specify `k`, which is
//!   exactly the flexibility limitation Table I attributes to index joins;
//! * **relational pre-filtering**: a probe can carry a
//!   [`cej_storage::SelectionBitmap`]; filtered nodes are excluded from the
//!   *result* but still traversed, reproducing the cost behaviour the paper
//!   describes for vector databases ("the result set excludes tuples based on
//!   the relational condition on the fly while still incurring the traversal
//!   cost");
//! * **probe statistics**: every search reports how many distance
//!   computations and node visits it performed, so benches can relate probe
//!   cost to scan cost analytically as well as by wall-clock.
//!
//! [`BruteForce`] provides the exact baseline used to measure recall.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod brute_force;
pub mod error;
pub mod hnsw;
pub mod params;
pub mod recall;

pub use brute_force::BruteForce;
pub use error::IndexError;
pub use hnsw::{HnswIndex, ProbeStats, SearchResult};
pub use params::HnswParams;
pub use recall::{probe_recall, self_probe_recall};

/// Result alias for the index substrate.
pub type Result<T> = std::result::Result<T, IndexError>;
