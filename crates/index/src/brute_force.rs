//! Exact (brute-force) nearest-neighbour baseline.
//!
//! Used in tests and benches to measure the recall of the approximate HNSW
//! probes, mirroring how ANN-Benchmarks reports recall against ground truth.

use cej_storage::SelectionBitmap;
use cej_vector::{Matrix, Metric, TopK, TopKEntry};

use crate::error::IndexError;
use crate::Result;

/// Exact top-k search by scanning every (optionally pre-filtered) row.
#[derive(Debug, Clone)]
pub struct BruteForce {
    vectors: Matrix,
    metric: Metric,
}

impl BruteForce {
    /// Wraps a matrix of row-vectors for exact search.
    pub fn new(vectors: Matrix, metric: Metric) -> Self {
        Self { vectors, metric }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// `true` when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Exact top-k most similar rows to `query`.
    ///
    /// # Errors
    /// Returns dimension, emptiness, and filter-length errors.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        filter: Option<&SelectionBitmap>,
    ) -> Result<Vec<TopKEntry>> {
        if self.vectors.rows() == 0 {
            return Err(IndexError::EmptyIndex);
        }
        if query.len() != self.vectors.cols() {
            return Err(IndexError::DimensionMismatch {
                indexed: self.vectors.cols(),
                query: query.len(),
            });
        }
        if let Some(f) = filter {
            if f.len() != self.vectors.rows() {
                return Err(IndexError::FilterLengthMismatch {
                    rows: self.vectors.rows(),
                    filter: f.len(),
                });
            }
        }
        let mut topk = TopK::new(k);
        for row in 0..self.vectors.rows() {
            if let Some(f) = filter {
                if !f.is_selected(row) {
                    continue;
                }
            }
            let score = self
                .metric
                .similarity(query, self.vectors.row(row).expect("in range"));
            topk.push(row, score);
        }
        Ok(topk.into_sorted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_vector::Vector;

    fn unit(dim: usize, axis: usize) -> Vector {
        let mut v = Vector::zeros(dim);
        v[axis] = 1.0;
        v
    }

    fn index() -> BruteForce {
        let m = Matrix::from_rows(&[unit(4, 0), unit(4, 1), unit(4, 2), unit(4, 3)]).unwrap();
        BruteForce::new(m, Metric::Cosine)
    }

    #[test]
    fn finds_exact_match_first() {
        let idx = index();
        let res = idx.search(unit(4, 2).as_slice(), 2, None).unwrap();
        assert_eq!(res[0].id, 2);
        assert!(res[0].score > 0.99);
        assert_eq!(res.len(), 2);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
    }

    #[test]
    fn filter_excludes_rows() {
        let idx = index();
        let filter = SelectionBitmap::from_bools(vec![true, true, false, true]);
        let res = idx.search(unit(4, 2).as_slice(), 1, Some(&filter)).unwrap();
        assert_ne!(res[0].id, 2);
    }

    #[test]
    fn error_cases() {
        let idx = index();
        assert!(matches!(
            idx.search(&[1.0, 0.0], 1, None),
            Err(IndexError::DimensionMismatch { .. })
        ));
        let bad_filter = SelectionBitmap::all(2);
        assert!(matches!(
            idx.search(unit(4, 0).as_slice(), 1, Some(&bad_filter)),
            Err(IndexError::FilterLengthMismatch { .. })
        ));
        let empty = BruteForce::new(Matrix::zeros(0, 4), Metric::Cosine);
        assert!(matches!(
            empty.search(unit(4, 0).as_slice(), 1, None),
            Err(IndexError::EmptyIndex)
        ));
        assert!(empty.is_empty());
    }

    #[test]
    fn k_larger_than_candidates() {
        let idx = index();
        let res = idx.search(unit(4, 0).as_slice(), 100, None).unwrap();
        assert_eq!(res.len(), 4);
    }
}
