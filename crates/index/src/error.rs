//! Error type for the index substrate.

use std::fmt;

/// Errors raised while building or probing an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The query dimensionality does not match the indexed vectors.
    DimensionMismatch {
        /// Dimensionality of the indexed vectors.
        indexed: usize,
        /// Dimensionality of the query.
        query: usize,
    },
    /// The index is empty and cannot be probed.
    EmptyIndex,
    /// A pre-filter bitmap length does not match the number of indexed rows.
    FilterLengthMismatch {
        /// Number of indexed rows.
        rows: usize,
        /// Bitmap length.
        filter: usize,
    },
    /// An invalid parameter was supplied.
    InvalidParameter(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch { indexed, query } => {
                write!(
                    f,
                    "query dimension {query} does not match indexed dimension {indexed}"
                )
            }
            IndexError::EmptyIndex => write!(f, "index contains no vectors"),
            IndexError::FilterLengthMismatch { rows, filter } => {
                write!(
                    f,
                    "filter length {filter} does not match indexed rows {rows}"
                )
            }
            IndexError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IndexError::DimensionMismatch {
            indexed: 4,
            query: 8
        }
        .to_string()
        .contains("8"));
        assert!(IndexError::EmptyIndex.to_string().contains("no vectors"));
        assert!(IndexError::FilterLengthMismatch {
            rows: 10,
            filter: 5
        }
        .to_string()
        .contains("5"));
        assert!(IndexError::InvalidParameter("k=0".into())
            .to_string()
            .contains("k=0"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<IndexError>();
    }
}
