//! Planner-accuracy measurement: q-error of cardinality estimates and
//! advisor decision agreement, across uniform and Zipf-distributed columns.
//!
//! The statistics subsystem replaced the constant 0.5 per-filter selectivity
//! with histogram/ndv-driven estimates; this module measures how well those
//! estimates track reality on the cross-distribution workload:
//!
//! * **filtered scans** — `σ(S)` at several cutoffs over a uniform column, a
//!   Zipf-skewed column (heavy hitters + long tail), and a conjunction: the
//!   per-query q-error (`max(est/actual, actual/est)`) of the estimated
//!   output cardinality;
//! * **ejoins** — the same filters as a join's inner side: did the advisor's
//!   plan-time scan-vs-probe choice (made on the *estimated* inner
//!   selectivity) agree with the choice it would make given the *measured*
//!   selectivity?
//!
//! The `planner_accuracy` binary prints these rows and emits them into the
//! `CEJ_REPORT` JSON; the `accuracy_gate` binary fails CI when the median
//! filtered-scan q-error regresses past the checked-in baseline.

use cej_core::{q_error, AccessPathQuery, ContextJoinSession, IndexJoinConfig, IndexKey};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::SimilarityPredicate;
use cej_relational::{col, eval::evaluate_predicate, lit_i64, Expr, LogicalPlan};
use cej_storage::{Column, Table};
use cej_workload::{JoinWorkload, RelationSpec, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured query of the accuracy experiment.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Short query label (predicate or join shape).
    pub query: String,
    /// Planner-estimated output rows.
    pub est_rows: f64,
    /// Measured output rows.
    pub actual_rows: f64,
    /// `max(est/actual, actual/est)`.
    pub q_error: f64,
}

/// The full accuracy report.
#[derive(Debug, Clone)]
pub struct AccuracySummary {
    /// Per-query filtered-scan measurements.
    pub scan_rows: Vec<AccuracyRow>,
    /// Per-query join output measurements.
    pub join_rows: Vec<AccuracyRow>,
    /// Median q-error of the filtered scans.
    pub scan_qerr_median: f64,
    /// Worst q-error of the filtered scans.
    pub scan_qerr_max: f64,
    /// Median q-error of the join outputs.
    pub join_qerr_median: f64,
    /// Fraction of ejoin plans whose plan-time scan-vs-probe choice agrees
    /// with the choice recomputed from the *measured* inner selectivity.
    pub advisor_agreement: f64,
}

fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Appends a Zipf-distributed `zipf` column (value ids 0..100, theta 1.05 —
/// one heavy hitter holding a double-digit share of the rows plus a long
/// tail) to a workload table.
fn with_zipf_column(table: &Table, seed: u64) -> Table {
    let zipf = Zipf::new(100, 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<i64> = (0..table.num_rows())
        .map(|_| zipf.sample(&mut rng) as i64)
        .collect();
    table
        .with_column("zipf", Column::Int64(values))
        .expect("zipf column append")
}

/// Builds the accuracy session: the uniform-filter join workload with an
/// extra Zipf column on the inner relation, plus a small embedding model.
fn session(outer_rows: usize, inner_rows: usize) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows.max(4)),
        RelationSpec::with_rows(inner_rows.max(8)),
        4242,
    );
    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", with_zipf_column(&workload.inner, 99));
    session.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 32,
            buckets: 10_000,
            ..FastTextConfig::default()
        })
        .expect("model construction"),
    );
    session
}

/// The filtered-scan predicates of the experiment: uniform cutoffs across
/// the selectivity axis, Zipf head/tail equality and ranges, and a
/// conjunction.
fn scan_predicates() -> Vec<(String, Expr)> {
    let mut preds: Vec<(String, Expr)> = Vec::new();
    for cut in [5i64, 20, 50, 80, 95] {
        preds.push((
            format!("uniform filter<{cut}"),
            col("filter").lt(lit_i64(cut)),
        ));
    }
    preds.push(("zipf =0 (head)".into(), col("zipf").eq(lit_i64(0))));
    preds.push(("zipf =40 (tail)".into(), col("zipf").eq(lit_i64(40))));
    preds.push(("zipf <5".into(), col("zipf").lt(lit_i64(5))));
    preds.push(("zipf >=10".into(), col("zipf").gt_eq(lit_i64(10))));
    preds.push((
        "filter<50 AND zipf<10".into(),
        col("filter")
            .lt(lit_i64(50))
            .and(col("zipf").lt(lit_i64(10))),
    ));
    preds
}

/// Runs the accuracy experiment: filtered scans and ejoins over the
/// cross-distribution workload, measuring estimate quality and advisor
/// agreement.  Entirely statistics-driven — no
/// `with_filter_selectivity`-style override anywhere.
pub fn planner_accuracy(outer_rows: usize, inner_rows: usize) -> AccuracySummary {
    let session = session(outer_rows, inner_rows);

    // --- filtered scans -----------------------------------------------------
    let mut scan_rows = Vec::new();
    for (label, predicate) in scan_predicates() {
        let plan = LogicalPlan::scan("s").select(predicate);
        let prepared = session.prepare(&plan).expect("scan plan");
        let est = prepared.physical_plan().estimate().rows;
        let actual = prepared.run().expect("scan run").table.num_rows() as f64;
        scan_rows.push(AccuracyRow {
            query: label,
            est_rows: est,
            actual_rows: actual,
            q_error: q_error(est, actual),
        });
    }

    // --- ejoins with a selectivity-controlled inner -------------------------
    let inner_table = session.catalog().table("s").expect("inner table");
    let base_rows = inner_table.num_rows() as f64;
    let mut join_rows = Vec::new();
    let mut agreements = 0usize;
    let mut joins = 0usize;
    for cut in [10i64, 30, 60, 90] {
        let inner_pred = col("filter").lt(lit_i64(cut));
        let predicate = SimilarityPredicate::TopK(1);
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s").select(inner_pred.clone()),
            "word",
            "word",
            "ft",
            predicate,
        );
        // snapshot, at plan time, the same index-residency the planner's
        // advisor query saw (an earlier iteration's run may have cached a
        // persistent index) so the oracle answers the same cost question
        let index_available = session.index_manager().contains(&IndexKey::new(
            "s",
            "word",
            "ft",
            IndexJoinConfig::default().params,
        ));
        let prepared = session.prepare(&plan).expect("join plan");
        let node_est = {
            let node = prepared.physical_plan().join_nodes()[0];
            (node.est.rows, node.access_path, node.est_inner_selectivity)
        };
        let report = prepared.run().expect("join run");
        let actual = report.table.num_rows() as f64;
        join_rows.push(AccuracyRow {
            query: format!("ejoin top-1, inner filter<{cut}"),
            est_rows: node_est.0,
            actual_rows: actual,
            q_error: q_error(node_est.0, actual),
        });

        // agreement: re-ask the advisor with the *measured* inner selectivity
        let bitmap = evaluate_predicate(&inner_pred, &inner_table).expect("bitmap");
        let measured = bitmap.count_selected() as f64 / base_rows.max(1.0);
        let outer_rows_actual = session.catalog().table("r").expect("outer").num_rows();
        let oracle = session.advisor().choose(&AccessPathQuery {
            outer_rows: outer_rows_actual,
            inner_rows: base_rows as usize,
            inner_selectivity: measured,
            predicate,
            index_available,
        });
        joins += 1;
        if oracle == node_est.1 {
            agreements += 1;
        }
    }

    let scan_q: Vec<f64> = scan_rows.iter().map(|r| r.q_error).collect();
    let join_q: Vec<f64> = join_rows.iter().map(|r| r.q_error).collect();
    AccuracySummary {
        scan_qerr_median: median(scan_q.clone()),
        scan_qerr_max: scan_q.iter().cloned().fold(0.0, f64::max),
        join_qerr_median: median(join_q),
        advisor_agreement: agreements as f64 / joins.max(1) as f64,
        scan_rows,
        join_rows,
    }
}

/// Formats accuracy rows for [`crate::harness::print_table`].
pub fn accuracy_table(rows: &[AccuracyRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.query.clone(),
                format!("{:.1}", r.est_rows),
                format!("{:.0}", r.actual_rows),
                format!("{:.2}", r.q_error),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_smoke_meets_acceptance_bar() {
        let summary = planner_accuracy(40, 400);
        assert_eq!(summary.scan_rows.len(), 10);
        assert_eq!(summary.join_rows.len(), 4);
        assert!(
            summary.scan_qerr_median <= 2.0,
            "median filtered-scan q-error {} must be ≤ 2.0",
            summary.scan_qerr_median
        );
        assert!(summary.scan_qerr_median >= 1.0);
        assert!(summary.advisor_agreement >= 0.5);
        assert!(!accuracy_table(&summary.scan_rows).is_empty());
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(vec![]).is_nan());
    }
}
