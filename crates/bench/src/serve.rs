//! The closed-loop serving load generator behind the `serve_throughput`
//! binary and `run_all`'s serving section.
//!
//! Boots a [`cej_server::Server`] over a workload session in-process, then
//! drives it with 1/2/4/8 concurrent TCP clients, each running a fixed
//! closed-loop operation mix:
//!
//! * **warm prepared runs** — `RUN` over three statements prepared once per
//!   connection (a top-k join, a threshold join, and a `BIND`-derived
//!   variant), all shared caches hot: the plan-once / execute-many regime;
//! * **ad-hoc probes** — `PROBE` with fresh request text per operation, so
//!   every probe pays one *remote-model* embedding call
//!   ([`ModelCostProfile::remote_micros`]): the paper's
//!   embeddings-as-a-service cost, which a concurrent server hides by
//!   overlapping blocked calls across clients.
//!
//! The mix is deterministic per `(client count, client index, op index)`,
//! and the session uses the tensor-scan join (byte-deterministic for any
//! thread count), so the XOR-fold of all server-side response checksums is
//! **identical across runs, client counts, and `CEJ_THREADS` settings** —
//! the load generator is simultaneously the byte-identical-results check.
//! QPS scaling with client count comes from overlapping the blocked remote
//! calls (and, on multi-core hosts, from true parallelism), which is
//! exactly the serving story the ROADMAP's north star asks for.

use std::time::Instant;

use cej_core::{ContextJoinSession, JoinStrategy, TensorJoinConfig};
use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel, ModelCostProfile};
use cej_server::{Client, Response, Server, ServerConfig};
use cej_workload::{JoinWorkload, RelationSpec};

/// Dimensionality of the serving model (kept small: the serving benchmark
/// measures the serving layer, not the kernels).
const DIM: usize = 32;

/// Measurements of one client-count phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations completed across all clients (warm runs + probes).
    pub ops: usize,
    /// Throughput over the phase wall-clock, in queries per second.
    pub qps: f64,
    /// Warm prepared-run latency percentiles (client-observed, µs).
    pub warm_p50_us: u64,
    /// 95th percentile of warm runs (µs).
    pub warm_p95_us: u64,
    /// 99th percentile of warm runs (µs).
    pub warm_p99_us: u64,
}

/// The full serving-benchmark outcome.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// One entry per client count, in the order driven.
    pub phases: Vec<PhaseResult>,
    /// `qps(4 clients) / qps(1 client)` — the scaling headline (0 when a
    /// phase is missing).
    pub scaling_c4: f64,
    /// XOR-fold of every response checksum across all phases, folded to 32
    /// bits (so it survives the f64 JSON report losslessly).  Identical
    /// across thread counts and client counts by construction.
    pub results_checksum: u32,
    /// Rejections observed during the dedicated admission-burst phase.
    pub admission_rejected: u64,
    /// Operations served during the admission burst (admitted side).
    pub admission_served: u64,
}

/// Builds the serving session: workload tables `r`/`s`, a remote-latency
/// model `ft`, and the deterministic tensor-scan strategy.
fn serving_session(outer_rows: usize, inner_rows: usize, remote_micros: u64) -> ContextJoinSession {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows.max(4)),
        RelationSpec::with_rows(inner_rows.max(4)),
        4242,
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: DIM,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    // the uncached counting wrapper + cost profile = "every real invocation
    // goes to the remote service"; the session's own shared cache in front
    // of it is what makes warm strings free
    let remote =
        CachedEmbedder::uncached(model).with_cost(ModelCostProfile::remote_micros(remote_micros));
    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", workload.inner.clone());
    session.register_model("ft", remote);
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    session
}

/// The per-connection statement set.
const PREPARES: [&str; 3] = [
    "PREPARE w1 JOIN r.word s.word MODEL ft TOPK 2",
    "PREPARE w2 JOIN r.word s.word MODEL ft SIM 0.8",
    "PREPARE probe_t PROBE s.word MODEL ft TOPK 2",
];

/// Prepares the statement mix on a fresh connection (including the
/// `BIND`-derived `w3`).
fn prepare_mix(client: &mut Client) {
    for prepare in PREPARES {
        match client.request(prepare).expect("prepare") {
            Response::Ok(_) => {}
            other => panic!("prepare failed: {other:?}"),
        }
    }
    match client.request("BIND w2 w3 0.6").expect("bind") {
        Response::Ok(_) => {}
        other => panic!("bind failed: {other:?}"),
    }
}

/// The deterministic operation stream: even ops are warm prepared runs
/// (rotating w1/w2/w3), odd ops are ad-hoc probes with phase-unique text.
fn op_line(phase_clients: usize, client_idx: usize, op_idx: usize) -> String {
    if op_idx.is_multiple_of(2) {
        let statement = ["w1", "w2", "w3"][(op_idx / 2) % 3];
        format!("RUN {statement}")
    } else {
        format!("PROBE probe_t request c{phase_clients} t{client_idx} n{op_idx}")
    }
}

/// One client's closed loop; returns (xor of response checksums, warm-run
/// latencies in µs).
fn client_loop(
    addr: std::net::SocketAddr,
    phase_clients: usize,
    client_idx: usize,
    ops: usize,
) -> (u64, Vec<u64>) {
    let mut client = Client::connect(addr).expect("connect");
    prepare_mix(&mut client);
    let mut checksum_fold = 0u64;
    let mut warm_latencies = Vec::with_capacity(ops / 2 + 1);
    for op_idx in 0..ops {
        let line = op_line(phase_clients, client_idx, op_idx);
        let start = Instant::now();
        match client.request(&line).expect("request") {
            Response::Rows { checksum, .. } => {
                checksum_fold ^= checksum;
                if line.starts_with("RUN") {
                    warm_latencies.push(start.elapsed().as_micros() as u64);
                }
            }
            other => panic!("unexpected response to `{line}`: {other:?}"),
        }
    }
    let _ = client.request("QUIT");
    (checksum_fold, warm_latencies)
}

/// Nearest-rank percentile over an unsorted sample — the same formula the
/// server's [`cej_server::latency`] reports, so bench-side (client-observed)
/// and server-side percentiles are directly comparable.
fn percentile(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[cej_server::latency::nearest_rank(samples.len(), q)]
}

/// Runs the full serving benchmark: a warmup pass, one phase per entry in
/// `client_counts`, and an admission burst against a 1-slot server.
pub fn serve_throughput(
    outer_rows: usize,
    inner_rows: usize,
    ops_per_client: usize,
    remote_micros: u64,
    client_counts: &[usize],
) -> ServeSummary {
    let session = serving_session(outer_rows, inner_rows, remote_micros);
    let mut server = Server::start(
        session.clone(),
        ServerConfig {
            max_inflight: 16,
            max_queued: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    // Warmup: embed every table string once (cold model calls, including
    // their remote latency) so the measured phases run the warm mix.
    {
        let mut client = Client::connect(addr).expect("connect");
        prepare_mix(&mut client);
        for statement in ["w1", "w2", "w3"] {
            match client.request(&format!("RUN {statement}")).expect("warmup") {
                Response::Rows { .. } => {}
                other => panic!("warmup failed: {other:?}"),
            }
        }
        let _ = client.request("QUIT");
    }

    let mut phases = Vec::new();
    let mut checksum_fold = 0u64;
    for &clients in client_counts {
        server.reset_latency();
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                std::thread::spawn(move || client_loop(addr, clients, client_idx, ops_per_client))
            })
            .collect();
        let mut warm = Vec::new();
        for handle in handles {
            let (fold, latencies) = handle.join().expect("client thread");
            checksum_fold ^= fold;
            warm.extend(latencies);
        }
        let wall = started.elapsed();
        let ops = clients * ops_per_client;
        phases.push(PhaseResult {
            clients,
            ops,
            qps: ops as f64 / wall.as_secs_f64().max(1e-9),
            warm_p50_us: percentile(&mut warm, 0.50),
            warm_p95_us: percentile(&mut warm, 0.95),
            warm_p99_us: percentile(&mut warm, 0.99),
        });
    }
    server.shutdown();

    // Admission burst: a dedicated 1-slot / 0-queue server over the same
    // (already warm) session; overlapping clients must observe `busy`
    // rejections while the server stays up.
    let mut burst_server = Server::start(
        session,
        ServerConfig {
            max_inflight: 1,
            max_queued: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind burst server");
    let burst_addr = burst_server.local_addr();
    let mut served = 0u64;
    let mut rejected = 0u64;
    let burst_handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(burst_addr).expect("connect");
                prepare_mix(&mut client);
                let mut served = 0u64;
                let mut rejected = 0u64;
                for _ in 0..25 {
                    match client.request("RUN w1").expect("burst request") {
                        Response::Rows { .. } => served += 1,
                        Response::Err(e) if e.starts_with("busy") => rejected += 1,
                        other => panic!("unexpected burst response: {other:?}"),
                    }
                }
                let _ = client.request("QUIT");
                (served, rejected)
            })
        })
        .collect();
    for handle in burst_handles {
        let (s, r) = handle.join().expect("burst client");
        served += s;
        rejected += r;
    }
    assert_eq!(
        served + rejected,
        100,
        "every burst op is served or rejected"
    );
    burst_server.shutdown();

    let qps_of = |clients: usize| {
        phases
            .iter()
            .find(|p| p.clients == clients)
            .map(|p| p.qps)
            .unwrap_or(0.0)
    };
    let scaling_c4 = if qps_of(1) > 0.0 {
        qps_of(4) / qps_of(1)
    } else {
        0.0
    };
    ServeSummary {
        phases,
        scaling_c4,
        results_checksum: fold32(checksum_fold),
        admission_rejected: rejected,
        admission_served: served,
    }
}

/// Folds a 64-bit checksum to 32 bits (losslessly representable in the f64
/// JSON reports).
fn fold32(checksum: u64) -> u32 {
    (checksum ^ (checksum >> 32)) as u32
}

/// Human-oriented table rows for [`crate::harness::print_table`].
pub fn serve_table(summary: &ServeSummary) -> Vec<Vec<String>> {
    summary
        .phases
        .iter()
        .map(|p| {
            vec![
                p.clients.to_string(),
                format!("{:.0}", p.qps),
                p.warm_p50_us.to_string(),
                p.warm_p95_us.to_string(),
                p.warm_p99_us.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stream_is_deterministic_and_mixed() {
        assert_eq!(op_line(4, 0, 0), "RUN w1");
        assert_eq!(op_line(4, 0, 1), "PROBE probe_t request c4 t0 n1");
        assert_eq!(op_line(4, 0, 2), "RUN w2");
        assert_eq!(op_line(4, 0, 4), "RUN w3");
        assert_eq!(op_line(4, 0, 6), "RUN w1");
        // phase- and client-unique probe text (novel strings pay the
        // remote-model latency; repeats would be cache hits)
        assert_ne!(op_line(4, 0, 1), op_line(4, 1, 1));
        assert_ne!(op_line(4, 0, 1), op_line(2, 0, 1));
    }

    #[test]
    fn fold32_mixes_both_halves() {
        assert_eq!(fold32(0), 0);
        assert_ne!(fold32(0x1234_5678_0000_0000), 0);
        assert_eq!(fold32(0xdead_beef_dead_beef), 0);
    }

    #[test]
    fn smoke_serving_benchmark_end_to_end() {
        // tiny and fast: correctness of the harness, not numbers
        let summary = serve_throughput(12, 40, 8, 200, &[1, 2]);
        assert_eq!(summary.phases.len(), 2);
        assert!(summary.phases.iter().all(|p| p.qps > 0.0));
        assert!(summary.results_checksum != 0);
        assert_eq!(summary.admission_served + summary.admission_rejected, 100);
        // determinism: an identical run folds to the identical checksum
        let again = serve_throughput(12, 40, 8, 200, &[1, 2]);
        assert_eq!(summary.results_checksum, again.results_checksum);
    }
}
