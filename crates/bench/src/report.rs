//! Machine-readable benchmark reports.
//!
//! The experiment binaries print human-oriented tables; CI additionally
//! wants an artifact it can archive and diff across runs.  [`Report`]
//! collects named numeric values and section timings and serialises them as
//! a small, dependency-free JSON document.  Binaries call
//! [`Report::write_if_requested`], which writes to the path in the
//! `CEJ_REPORT` environment variable (and does nothing when it is unset, so
//! local runs stay side-effect free).

use std::time::Duration;

use crate::harness::scale;

/// An accumulating benchmark report serialisable to JSON.
#[derive(Debug, Clone)]
pub struct Report {
    benchmark: String,
    entries: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report for the named benchmark binary.
    pub fn new(benchmark: &str) -> Self {
        Report {
            benchmark: benchmark.to_string(),
            entries: Vec::new(),
        }
    }

    /// Records a named numeric value.
    pub fn push_value(&mut self, name: &str, value: f64) {
        self.entries.push((name.to_string(), value));
    }

    /// Records a section's elapsed wall-clock time in milliseconds.
    pub fn push_elapsed(&mut self, section: &str, elapsed: Duration) {
        self.push_value(&format!("{section}_ms"), elapsed.as_secs_f64() * 1e3);
    }

    /// Serialises the report as a JSON object.  Values that JSON cannot
    /// represent (NaN, infinities) are emitted as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"benchmark\":{},\"scale\":{},\"entries\":{{",
            json_string(&self.benchmark),
            json_number(scale()),
        ));
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), json_number(*value)));
        }
        out.push_str("}}");
        out
    }

    /// Writes the JSON report to the path named by `CEJ_REPORT`, if set.
    /// Returns the path written to, for logging.
    pub fn write_if_requested(&self) -> Option<String> {
        let path = std::env::var("CEJ_REPORT").ok()?;
        if path.is_empty() {
            return None;
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("(report written to {path})");
                Some(path)
            }
            Err(e) => {
                eprintln!("failed to write report to {path}: {e}");
                None
            }
        }
    }
}

/// Extracts `"key":<number>` from the flat JSON documents this module
/// emits — the parsing half the CI gate binaries (`recall_gate`,
/// `accuracy_gate`, `serve_gate`) share, kept next to the emitter so the
/// two halves cannot drift apart.
pub fn extract_value(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for NaN / infinities).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_entries_in_order() {
        let mut r = Report::new("smoke");
        r.push_value("alpha", 1.5);
        r.push_elapsed("fig08", Duration::from_millis(250));
        let json = r.to_json();
        assert!(json.starts_with("{\"benchmark\":\"smoke\""));
        assert!(json.contains("\"alpha\":1.5"));
        assert!(json.contains("\"fig08_ms\":250"));
        let alpha = json.find("alpha").unwrap();
        let fig = json.find("fig08_ms").unwrap();
        assert!(alpha < fig, "entries must keep insertion order");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\t"), "\"line\\nbreak\\t\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(2.0), "2");
    }

    #[test]
    fn write_is_a_no_op_without_the_env_var() {
        // CEJ_REPORT is unset in the test environment.
        if std::env::var("CEJ_REPORT").is_err() {
            assert_eq!(Report::new("x").write_if_requested(), None);
        }
    }
}
