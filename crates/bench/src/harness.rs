//! Shared timing, scaling, and reporting helpers for the experiment binaries.

use std::time::{Duration, Instant};

// The scale knob lives in `cej-workload` (so runnable examples share it);
// re-exported here because every experiment binary imports it from the
// harness.
pub use cej_workload::{scale, scaled};

/// Times one invocation of `f`, returning its result and the elapsed time.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `runs` invocations of `f` and returns the median duration.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1)).map(|_| time_once(&mut f).1).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Formats a duration in milliseconds with one decimal.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Formats nanoseconds-per-element with two decimals.
pub fn fmt_ns_per(d: Duration, elements: usize) -> String {
    format!("{:.2}", d.as_nanos() as f64 / elements.max(1) as f64)
}

/// Prints an experiment header (figure/table id plus description).
pub fn header(id: &str, description: &str) {
    println!("=== {id}: {description} ===");
    println!(
        "(scaled-down reproduction; CEJ_SCALE={} — shapes, not absolute numbers, are expected to match the paper)",
        scale()
    );
}

/// Prints a table of rows with fixed-width columns.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|r| r.get(i).map(|v| v.len()).unwrap_or(0))
                .chain([c.len()])
                .max()
                .unwrap_or(c.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(0) >= 1);
        assert!(scaled(100) >= 1);
    }

    #[test]
    fn time_once_returns_value_and_duration() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0);
    }

    #[test]
    fn time_median_runs_requested_times() {
        let mut count = 0;
        let _ = time_median(5, || count += 1);
        assert_eq!(count, 5);
        // zero runs clamps to one
        let mut count2 = 0;
        let _ = time_median(0, || count2 += 1);
        assert_eq!(count2, 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(fmt_ns_per(Duration::from_nanos(100), 10), "10.00");
        assert_eq!(fmt_ns_per(Duration::from_nanos(100), 0), "100.00");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "column_b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        header("Fig X", "smoke test");
    }
}
