//! Cost-model validation (Section IV): measured model-invocation counts of
//! the naive and prefetch-optimised joins against the closed-form formulas.

use cej_bench::experiments::costmodel_validation;
use cej_bench::harness::{header, print_table, scaled};

fn main() {
    header(
        "Cost model",
        "measured model calls vs the Section IV formulas",
    );
    let sizes = [
        (scaled(20), scaled(20)),
        (scaled(50), scaled(20)),
        (scaled(50), scaled(50)),
    ];
    let rows = costmodel_validation(&sizes);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(
            |(label, naive_calls, prefetch_calls, naive_cost, prefetch_cost)| {
                vec![
                    label.clone(),
                    naive_calls.to_string(),
                    prefetch_calls.to_string(),
                    format!("{naive_cost:.2e}"),
                    format!("{prefetch_cost:.2e}"),
                    format!("{:.1}x", naive_cost / prefetch_cost),
                ]
            },
        )
        .collect();
    print_table(
        &[
            "|R| x |S|",
            "naive model calls (measured)",
            "prefetch model calls (measured)",
            "naive cost (predicted)",
            "prefetch cost (predicted)",
            "predicted speedup",
        ],
        &printable,
    );
}
