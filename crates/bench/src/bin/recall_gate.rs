//! CI recall-regression gate.
//!
//! Compares the probe-recall entries of a freshly produced `hnsw_build.json`
//! report against a checked-in baseline and exits non-zero when recall
//! dropped by more than the tolerance (default 0.02).  Build *times* are
//! deliberately ignored — they are too noisy on shared runners — but recall
//! of the seeded, thread-count-deterministic construction is stable, so a
//! drop means the graph quality actually regressed.
//!
//! ```sh
//! recall_gate <current.json> <baseline.json> [max_drop]
//! ```
//!
//! The baseline lives at `ci/hnsw_recall_baseline.json`; refresh it by
//! running the `hnsw_build` bench at the CI scale and copying the report:
//! `CEJ_SCALE=0.05 CEJ_REPORT=ci/hnsw_recall_baseline.json cargo run
//! --release -p cej-bench --bin hnsw_build`.

use std::process::ExitCode;

const RECALL_KEYS: [&str; 2] = ["sequential_recall", "pool_recall"];
const DEFAULT_MAX_DROP: f64 = 0.02;

/// Extracts `"key":<number>` from the flat JSON the bench reports emit.
/// Returns `None` when the key is absent or its value is not a number.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match (args.first(), args.get(1)) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!("usage: recall_gate <current.json> <baseline.json> [max_drop]");
            return ExitCode::FAILURE;
        }
    };
    let max_drop: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_DROP);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("recall_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    for key in RECALL_KEYS {
        let (Some(new), Some(old)) = (extract(&current, key), extract(&baseline, key)) else {
            eprintln!("recall_gate: key {key} missing from one of the reports");
            failed = true;
            continue;
        };
        let drop = old - new;
        let verdict = if drop > max_drop { "FAIL" } else { "ok" };
        println!("{key}: baseline {old:.4}, current {new:.4}, drop {drop:+.4} [{verdict}]");
        if drop > max_drop {
            failed = true;
        }
    }
    if failed {
        eprintln!("recall_gate: recall regressed by more than {max_drop} — failing");
        ExitCode::FAILURE
    } else {
        println!("recall_gate: within tolerance ({max_drop})");
        ExitCode::SUCCESS
    }
}
