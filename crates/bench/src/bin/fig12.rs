//! Figure 12: impact of vector batching — fully-batched vs non-batched tensor
//! formulation.

use cej_bench::experiments::fig12_batched_vs_non_batched;
use cej_bench::harness::{header, print_table, scaled};

fn main() {
    header(
        "Figure 12",
        "tensor join: fully batched vs one-vector-at-a-time inner relation",
    );
    let ops = [scaled(25_600), scaled(2_560_000), scaled(25_600_000)];
    let dims = [1usize, 4, 16, 64, 256];
    let rows = fig12_batched_vs_non_batched(&ops, &dims);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fp32_ops.to_string(),
                r.dim.to_string(),
                r.tuples.to_string(),
                r.first_ns.clone(),
                r.second_ns.clone(),
            ]
        })
        .collect();
    print_table(
        &[
            "#FP32 ops",
            "vector #FP32",
            "tuples/side",
            "Tensor-Fully-Batched [ns/elem]",
            "Tensor-Non-Batched [ns/elem]",
        ],
        &printable,
    );
}
