//! Maps the `beam_width × efSearch` cost/recall surface of the HNSW probe
//! on the cross-distribution workload (reference and probe vectors drawn
//! from *different* clustered distributions, as in `hnsw_build`) — the
//! ROADMAP follow-up to the beam-width knob introduced with the execution
//! layer.
//!
//! One graph is built once (construction parameters are independent of the
//! sweep); each `(efSearch, beam)` cell then re-probes it via
//! [`HnswIndex::set_search_params`], reporting top-k recall against the
//! exact scan, distance computations per probe (the cost model's currency),
//! and wall-clock per probe.
//!
//! ```sh
//! CEJ_SCALE=0.25 cargo run --release -p cej-bench --bin beam_sweep
//! ```
//!
//! With `CEJ_REPORT=<path>` every cell is also written as JSON
//! (`ef{E}_beam{B}_recall` / `_dist` / `_us`).

use std::time::Instant;

use cej_bench::harness::{header, print_table, scaled};
use cej_bench::report::Report;
use cej_index::{BruteForce, HnswIndex, HnswParams};
use cej_workload::clustered_matrix;

const EF_SEARCH: [usize; 4] = [16, 32, 64, 128];
const BEAM: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    header(
        "Beam-sweep",
        "beam_width x efSearch cost/recall curve on the cross-distribution probe workload",
    );
    let n = scaled(20_000);
    let probes = scaled(200);
    let dim = 64;
    let k = 3;
    let (reference, _) = clustered_matrix(n, dim, 50, 0.05, 1);
    let (incoming, _) = clustered_matrix(probes, dim, 50, 0.05, 2);

    let mut index = HnswIndex::build(reference.clone(), HnswParams::low_recall()).unwrap();
    let exact = BruteForce::new(reference.clone(), index.params().metric);
    // ground truth once per probe, reused by every sweep cell
    let truth: Vec<Vec<usize>> = (0..incoming.rows())
        .map(|row| {
            exact
                .search(incoming.row(row).unwrap(), k, None)
                .unwrap()
                .iter()
                .map(|e| e.id)
                .collect()
        })
        .collect();

    let mut report = Report::new("beam_sweep");
    report.push_value("n", n as f64);
    report.push_value("probes", probes as f64);
    report.push_value("k", k as f64);

    let mut rows = Vec::new();
    for ef in EF_SEARCH {
        for beam in BEAM {
            index.set_search_params(ef, beam);
            let mut hits = 0usize;
            let mut total = 0usize;
            let mut distances = 0u64;
            let start = Instant::now();
            for (row, expected) in truth.iter().enumerate() {
                let result = index.search(incoming.row(row).unwrap(), k, None).unwrap();
                distances += result.stats.distance_computations;
                hits += result
                    .neighbors
                    .iter()
                    .filter(|e| expected.contains(&e.id))
                    .count();
                total += expected.len();
            }
            let elapsed = start.elapsed();
            let recall = hits as f64 / total.max(1) as f64;
            let dist_per_probe = distances as f64 / incoming.rows().max(1) as f64;
            let us_per_probe = elapsed.as_secs_f64() * 1e6 / incoming.rows().max(1) as f64;
            rows.push(vec![
                format!("{ef}"),
                format!("{beam}"),
                format!("{recall:.4}"),
                format!("{dist_per_probe:.0}"),
                format!("{us_per_probe:.1}"),
            ]);
            report.push_value(&format!("ef{ef}_beam{beam}_recall"), recall);
            report.push_value(&format!("ef{ef}_beam{beam}_dist"), dist_per_probe);
            report.push_value(&format!("ef{ef}_beam{beam}_us"), us_per_probe);
        }
    }
    println!("n={n} dim={dim} probes={probes} k={k} (graph: M=32, efC=256, built once)");
    print_table(
        &["efSearch", "beam", "recall@3", "dist/probe", "us/probe"],
        &rows,
    );
    report.write_if_requested();
}
