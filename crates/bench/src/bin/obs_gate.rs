//! CI observability regression gate.
//!
//! Guards the two hard promises of the tracing substrate:
//!
//! 1. **Near-zero disabled cost.**  The same cold query (fresh session,
//!    simulated remote embedding model) is executed once with tracing
//!    disabled and once under a forced trace, on a filtered-scan leg and a
//!    hash-join leg.  The traced run may cost at most [`MAX_OVERHEAD`]x the
//!    untraced run (plus [`ABS_HEADROOM_US`] of absolute headroom for
//!    timer noise on scaled-down CI runs) — and the untraced path only
//!    branches on a sampled flag, so its own overhead is strictly below
//!    that bound.
//! 2. **Byte-identical results.**  Traced and untraced runs must produce
//!    the same result checksum — tracing is pure observation.
//!
//! It also boots a [`cej_server::Server`], drives one query and one delta
//! through it, and verifies the `METRICS` exposition covers every stat
//! family (latency, indexes, embedding cache, pool, IVM, frame cache).
//! With `CEJ_METRICS_DUMP=<path>` the scraped exposition is written out —
//! the artifact CI archives.
//!
//! ```sh
//! obs_gate [baseline.json]
//! ```
//!
//! The baseline lives at `ci/obs_baseline.json`; refresh it with
//! `CEJ_SCALE=0.05 CEJ_REPORT=ci/obs_baseline.json
//! cargo run --release -p cej-bench --bin obs_gate`.

use std::process::ExitCode;
use std::time::Duration;

use cej_bench::harness::{fmt_ms, header, scaled, time_once};
use cej_bench::report::{extract_value, Report};
use cej_core::{ContextJoinSession, ExecMode, JoinStrategy, MaintainedResult, TensorJoinConfig};
use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel, ModelCostProfile};
use cej_obs::Trace;
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_server::{Client, Response, Server, ServerConfig};

/// Maximum traced-over-untraced wall-time ratio.
const MAX_OVERHEAD: f64 = 1.05;
/// Absolute headroom on top of the ratio, for timer noise at tiny scales.
const ABS_HEADROOM_US: u64 = 2_000;
/// Pool threads for the measured executions.
const THREADS: usize = 2;
/// Simulated remote model latency per real invocation — the dominant cost,
/// which keeps the overhead ratio stable across runner speeds.
const REMOTE_MICROS: u64 = 800;
/// Inner (build) side rows.
const INNER_ROWS: usize = 4;

/// Distinct caption per row: every row is a cold model call.
fn caption(i: usize) -> String {
    format!("caption number {i} about topic {}", i % 97)
}

fn model() -> CachedEmbedder<FastTextModel> {
    let inner = FastTextModel::new(FastTextConfig {
        dim: 32,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    CachedEmbedder::uncached(inner).with_cost(ModelCostProfile::remote_micros(REMOTE_MICROS))
}

fn products() -> cej_storage::Table {
    cej_storage::TableBuilder::new()
        .int64("product_id", (0..INNER_ROWS as i64).collect())
        .utf8(
            "title",
            (0..INNER_ROWS)
                .map(|i| format!("product topic {i}"))
                .collect(),
        )
        .build()
        .expect("products table")
}

/// Filtered-scan leg session: one wide outer table, a tiny inner table.
fn scan_session(outer_rows: usize) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "r",
        cej_storage::TableBuilder::new()
            .int64("id", (0..outer_rows as i64).collect())
            .int64("filter", (0..outer_rows as i64).map(|i| i % 100).collect())
            .utf8("caption", (0..outer_rows).map(caption).collect())
            .build()
            .expect("outer table"),
    );
    s.register_table("s", products());
    s.register_model("ft", model());
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    s
}

/// Filtered-scan leg plan: `σ(filter < 90)(r) ⋈_sim s`, top-1.
fn scan_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::scan("r").select(col("filter").lt(lit_i64(90))),
        LogicalPlan::scan("s"),
        "caption",
        "title",
        "ft",
        SimilarityPredicate::TopK(1),
    )
}

/// Hash-join leg session: fact ⋈ dimension feeding the similarity join.
fn hash_session(outer_rows: usize) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "photos",
        cej_storage::TableBuilder::new()
            .int64("id", (0..outer_rows as i64).collect())
            .int64(
                "owner_fk",
                (0..outer_rows as i64).map(|i| (i % 3 + 1) * 100).collect(),
            )
            .utf8("caption", (0..outer_rows).map(caption).collect())
            .build()
            .expect("photos table"),
    );
    s.register_table(
        "owners",
        cej_storage::TableBuilder::new()
            .int64("owner_id", vec![100, 200, 300])
            .utf8("region", vec!["west".into(), "east".into(), "north".into()])
            .build()
            .expect("owners table"),
    );
    s.register_table("products", products());
    s.register_model("ft", model());
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    s
}

/// Hash-join leg plan: `(photos ⋈ owners) ⋈_sim products`, top-1.
fn hash_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "owner_fk",
            "owner_id",
        ),
        LogicalPlan::scan("products"),
        "caption",
        "title",
        "ft",
        SimilarityPredicate::TopK(1),
    )
}

/// One cold measurement under `trace`: fresh session, explicit pool.
/// Returns the wall time and a 32-bit fold of the result checksum.
fn measure(
    make_session: &dyn Fn() -> ContextJoinSession,
    plan: &LogicalPlan,
    trace: &Trace,
) -> (Duration, u32, usize) {
    let s = make_session();
    let prepared = s.prepare(plan).expect("prepare");
    let (report, elapsed) = time_once(|| {
        prepared
            .run_traced_with(trace, cej_exec::ExecPool::new(THREADS), ExecMode::default())
            .expect("execute")
    });
    let checksum = MaintainedResult::new(report.table.clone()).checksum();
    let folded = (checksum >> 32) as u32 ^ (checksum & 0xffff_ffff) as u32;
    (elapsed, folded, report.table.num_rows())
}

struct Leg {
    name: &'static str,
    untraced: Duration,
    traced: Duration,
    overhead: f64,
    identical: bool,
    rows: usize,
    /// Rendered span tree of the traced run.
    rendered: String,
}

fn run_leg(
    name: &'static str,
    make_session: &dyn Fn() -> ContextJoinSession,
    plan: &LogicalPlan,
) -> Leg {
    // untimed warmup absorbs one-time global initialisation (pool spinup,
    // lazy statics) so neither measured leg pays it
    let _ = measure(make_session, plan, &Trace::disabled());
    let (untraced, sum_off, rows_off) = measure(make_session, plan, &Trace::disabled());
    let trace = Trace::forced(&format!("obs_gate {name}"));
    let (traced, sum_on, rows_on) = measure(make_session, plan, &trace);
    let rendered = trace
        .finish()
        .and_then(cej_obs::trace_by_id)
        .map(|t| t.render())
        .unwrap_or_default();
    Leg {
        name,
        untraced,
        traced,
        overhead: traced.as_secs_f64() / untraced.as_secs_f64(),
        identical: sum_off == sum_on && rows_off == rows_on && rows_off > 0,
        rows: rows_off,
        rendered,
    }
}

/// Boots a server, drives one prepared query plus one streamed delta
/// through it, and returns the scraped `METRICS` exposition.
fn scrape_metrics() -> Result<String, String> {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "orders",
        cej_storage::TableBuilder::new()
            .int64("order_id", vec![1, 2, 3])
            .utf8(
                "note",
                vec![
                    "barbecue grill".into(),
                    "database server".into(),
                    "laptop sleeve".into(),
                ],
            )
            .build()
            .map_err(|e| e.to_string())?,
    );
    s.register_table("products", products());
    let ft = FastTextModel::new(FastTextConfig {
        dim: 16,
        buckets: 1000,
        ..FastTextConfig::default()
    })
    .map_err(|e| e.to_string())?;
    s.register_model("ft", ft);
    s.catalog().analyze("orders").map_err(|e| e.to_string())?;
    s.catalog().analyze("products").map_err(|e| e.to_string())?;

    let mut server =
        Server::start(s, ServerConfig::default()).map_err(|e| format!("server start: {e}"))?;
    let mut client =
        Client::connect(server.local_addr()).map_err(|e| format!("client connect: {e}"))?;
    let mut expect_ok = |line: &str| -> Result<(), String> {
        match client.request(line).map_err(|e| e.to_string())? {
            Response::Err(message) => Err(format!("`{line}` answered ERR {message}")),
            _ => Ok(()),
        }
    };
    expect_ok("PREPARE q QUERY orders EJOIN products ON note~title MODEL ft TOPK 1")?;
    expect_ok("SUBSCRIBE q")?;
    expect_ok("RUN q")?;
    expect_ok("APPLY orders APPEND 9|barbecue tongs")?;
    client
        .wait_delta(Duration::from_secs(10))
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "no DELTA frame after APPLY".to_string())?;
    let exposition = match client.request("METRICS").map_err(|e| e.to_string())? {
        Response::Text(lines) => lines.join("\n"),
        other => return Err(format!("METRICS answered {other:?}")),
    };
    server.shutdown();
    Ok(exposition)
}

fn main() -> ExitCode {
    header(
        "Observability",
        "tracing overhead, byte-identity, and METRICS coverage",
    );
    let baseline_path = std::env::args().nth(1);
    let outer_rows = scaled(600).max(THREADS * 8);

    let legs = [
        run_leg("scan", &|| scan_session(outer_rows), &scan_plan()),
        run_leg("hash", &|| hash_session(outer_rows), &hash_plan()),
    ];

    let mut report = Report::new("obs");
    report.push_value("threads", THREADS as f64);
    report.push_value("outer_rows", outer_rows as f64);
    let baseline = baseline_path.map(|path| match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs_gate: cannot read {path}: {e}");
            String::new()
        }
    });
    let mut failed = baseline.as_deref() == Some("");

    for leg in &legs {
        println!(
            "{}: untraced {} | traced {} | overhead {:.3}x | {} rows | identical {}",
            leg.name,
            fmt_ms(leg.untraced),
            fmt_ms(leg.traced),
            leg.overhead,
            leg.rows,
            if leg.identical { "yes" } else { "NO" },
        );
        report.push_elapsed(&format!("{}_untraced", leg.name), leg.untraced);
        report.push_elapsed(&format!("{}_traced", leg.name), leg.traced);
        report.push_value(&format!("{}_overhead", leg.name), leg.overhead);
        report.push_value(
            &format!("{}_identical", leg.name),
            if leg.identical { 1.0 } else { 0.0 },
        );
        if let Some(contents) = &baseline {
            if let Some(old) = extract_value(contents, &format!("{}_overhead", leg.name)) {
                println!("{} baseline overhead {old:.3}x", leg.name);
            }
        }

        if !leg.identical {
            eprintln!(
                "obs_gate: {} traced and untraced results differ — failing",
                leg.name
            );
            failed = true;
        }
        // ratio bound with absolute headroom: at bench scale the remote-
        // model latency dominates, so a real regression shows up clearly
        if leg.traced > leg.untraced.mul_f64(MAX_OVERHEAD) + Duration::from_micros(ABS_HEADROOM_US)
        {
            eprintln!(
                "obs_gate: {} tracing overhead {:.3}x exceeds {MAX_OVERHEAD}x (+{ABS_HEADROOM_US}us) — failing",
                leg.name, leg.overhead
            );
            failed = true;
        } else {
            println!("{} overhead within {MAX_OVERHEAD}x [ok]", leg.name);
        }

        // the traced run must have produced a complete span tree
        for span in [
            "phase.rewrite",
            "phase.order",
            "phase.lower",
            "phase.execute",
        ] {
            if !leg.rendered.contains(span) {
                eprintln!("obs_gate: {} trace missing span {span} — failing", leg.name);
                failed = true;
            }
        }
    }

    match scrape_metrics() {
        Err(message) => {
            eprintln!("obs_gate: METRICS scrape failed: {message}");
            failed = true;
        }
        Ok(exposition) => {
            for family in [
                "cej_query_latency_us",
                "cej_index_builds_total",
                "cej_embed_model_calls_total",
                "cej_pool_tasks_total",
                "cej_ivm_deltas_applied_total",
                "cej_frame_renders_total",
            ] {
                if !exposition.contains(family) {
                    eprintln!("obs_gate: METRICS missing family {family} — failing");
                    failed = true;
                }
            }
            report.push_value("metrics_lines", exposition.lines().count() as f64);
            if let Ok(path) = std::env::var("CEJ_METRICS_DUMP") {
                if let Err(e) = std::fs::write(&path, format!("{exposition}\n")) {
                    eprintln!("obs_gate: cannot write {path}: {e}");
                    failed = true;
                } else {
                    println!("metrics exposition written to {path}");
                }
            }
            println!(
                "METRICS: {} lines, all six stat families present",
                exposition.lines().count()
            );
        }
    }
    report.write_if_requested();

    if failed {
        ExitCode::FAILURE
    } else {
        println!("obs_gate: observability contract holds");
        ExitCode::SUCCESS
    }
}
