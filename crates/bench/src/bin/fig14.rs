//! Figure 14: tensor join vs optimised NLJ end-to-end execution time.

use cej_bench::experiments::{fig14_tensor_vs_nlj, DIM};
use cej_bench::harness::{fmt_ms, header, print_table, scaled};

fn main() {
    header(
        "Figure 14",
        "tensor join vs optimised NLJ across input sizes, 100-D",
    );
    let sizes = [
        (scaled(1_000), scaled(1_000)),
        (scaled(2_000), scaled(1_000)),
        (scaled(2_000), scaled(2_000)),
        (scaled(4_000), scaled(2_000)),
        (scaled(4_000), scaled(4_000)),
    ];
    let rows = fig14_tensor_vs_nlj(&sizes, DIM, 1);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, tensor, nlj)| {
            let speedup = nlj.as_secs_f64() / tensor.as_secs_f64().max(1e-12);
            vec![
                label.clone(),
                fmt_ms(*tensor),
                fmt_ms(*nlj),
                format!("{speedup:.1}x"),
            ]
        })
        .collect();
    print_table(
        &["|R| x |S|", "Tensor [ms]", "NLJ [ms]", "tensor speedup"],
        &printable,
    );
}
