//! Figure 11: per-element processing time of the vectorised NLJ vs the tensor
//! formulation across total work and vector dimensionality.

use cej_bench::experiments::fig11_nlj_vs_tensor;
use cej_bench::harness::{header, print_table, scaled};

fn main() {
    header(
        "Figure 11",
        "per-FP32-element time: vectorised NLJ vs tensor join",
    );
    let ops = [scaled(25_600), scaled(2_560_000), scaled(25_600_000)];
    let dims = [1usize, 4, 16, 64, 256];
    let rows = fig11_nlj_vs_tensor(&ops, &dims);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fp32_ops.to_string(),
                r.dim.to_string(),
                r.tuples.to_string(),
                r.first_ns.clone(),
                r.second_ns.clone(),
            ]
        })
        .collect();
    print_table(
        &[
            "#FP32 ops",
            "vector #FP32",
            "tuples/side",
            "Vectorize-NLJ [ns/elem]",
            "Tensor [ns/elem]",
        ],
        &printable,
    );
}
