//! Planner-accuracy report: cardinality q-errors and advisor agreement.
//!
//! Measures, on the cross-distribution workload (uniform + Zipf filter
//! columns), how well the statistics-driven planner estimates filtered-scan
//! and join cardinalities (q-error = `max(est/actual, actual/est)`), and how
//! often the plan-time scan-vs-probe choice agrees with the choice the
//! advisor would make given the *measured* inner selectivity.
//!
//! ```sh
//! CEJ_REPORT=planner_accuracy.json cargo run --release -p cej-bench --bin planner_accuracy
//! ```
//!
//! The CI bench-smoke job archives the JSON and gates on it via
//! `accuracy_gate` against `ci/planner_accuracy_baseline.json` (refresh:
//! `CEJ_SCALE=0.05 CEJ_REPORT=ci/planner_accuracy_baseline.json cargo run
//! --release -p cej-bench --bin planner_accuracy`).

use cej_bench::accuracy::{accuracy_table, planner_accuracy};
use cej_bench::harness::{header, print_table, scaled};
use cej_bench::report::Report;

fn main() {
    header(
        "Planner-accuracy",
        "q-error of statistics-driven cardinality estimates + advisor agreement",
    );
    let summary = planner_accuracy(scaled(400), scaled(4_000));

    println!("\nFiltered scans (est vs actual rows):");
    print_table(
        &["predicate", "est", "actual", "q-error"],
        &accuracy_table(&summary.scan_rows),
    );
    println!("\nEJoins (output rows, inner selectivity controlled):");
    print_table(
        &["join", "est", "actual", "q-error"],
        &accuracy_table(&summary.join_rows),
    );
    println!(
        "\nscan q-error median {:.3} / max {:.3}; join q-error median {:.3}; \
         advisor agreement {:.0}%",
        summary.scan_qerr_median,
        summary.scan_qerr_max,
        summary.join_qerr_median,
        summary.advisor_agreement * 100.0
    );

    let mut report = Report::new("planner_accuracy");
    report.push_value("scan_qerr_median", summary.scan_qerr_median);
    report.push_value("scan_qerr_max", summary.scan_qerr_max);
    report.push_value("join_qerr_median", summary.join_qerr_median);
    report.push_value("advisor_agreement", summary.advisor_agreement);
    for row in summary.scan_rows.iter().chain(summary.join_rows.iter()) {
        let key: String = row
            .query
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        report.push_value(&format!("qerr_{key}"), row.q_error);
    }
    report.write_if_requested();
}
