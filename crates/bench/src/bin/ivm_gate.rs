//! CI incremental-view-maintenance regression gate.
//!
//! Builds a photos ⋈ owners hash join feeding a similarity join against
//! products, subscribes a standing query to it, and streams eight small
//! delta batches (appends, deletes, upserts — about 1% of the base table
//! in total) through two sessions seeded with identical data:
//!
//! * **delta path** — the standing query absorbs each delta through the
//!   IVM propagation engine (`session.apply_delta` + mailbox drain);
//! * **recompute path** — the same deltas are applied to a second
//!   session with no subscription, and the query is re-planned and
//!   re-executed from scratch after every batch.
//!
//! Both paths must end byte-identical (the standing query's
//! order-independent multiset checksum equals the checksum of the final
//! full re-run), and the delta path must be at least [`MIN_SPEEDUP`]x
//! faster wall-clock — like the other gates this is a same-machine
//! ratio, stable where absolute times are not.
//!
//! ```sh
//! ivm_gate [baseline.json]
//! ```
//!
//! With `CEJ_REPORT=<path>` the machine-readable summary is written as
//! well.  The baseline lives at `ci/ivm_baseline.json`; refresh it with
//! `CEJ_SCALE=0.05 CEJ_REPORT=ci/ivm_baseline.json cargo run --release
//! -p cej-bench --bin ivm_gate`.

use std::process::ExitCode;
use std::time::Duration;

use cej_bench::harness::{fmt_ms, header, scaled, time_once};
use cej_bench::report::{extract_value, Report};
use cej_core::{
    ContextJoinSession, Delta, JoinStrategy, MaintainedResult, ScalarValue, TensorJoinConfig,
};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::LogicalPlan;
use cej_storage::{Table, TableBuilder};

/// The delta path must beat recompute-from-scratch by at least this
/// factor (the acceptance criterion; the measured gap is far larger).
const MIN_SPEEDUP: f64 = 10.0;
/// Fraction of the baseline speedup the current run must retain.
const MIN_FRACTION: f64 = 0.5;
/// Number of delta batches streamed through both paths.
const BATCHES: usize = 8;

const THRESHOLD: f32 = 0.6;

/// Photo-caption word pool; one product title in [`MATCH_EVERY`] draws
/// from it, so the similarity join has real matches at the gate's
/// threshold while the standing result stays selective (maintenance cost
/// scales with the maintained result, recompute cost with the full cross
/// product — an unselective join would blur the ratio being gated).
const POOL: [&str; 12] = [
    "barbecue", "grill", "database", "server", "laptop", "garden", "vector", "index", "tensor",
    "storage", "network", "kernel",
];

/// Off-pool words for the other product titles: no matches at threshold.
const OFF_POOL: [&str; 12] = [
    "violin", "glacier", "pepper", "marathon", "lantern", "compass", "meadow", "anchor", "fossil",
    "turbine", "canvas", "harbor",
];

/// One product title in this many is drawn from the caption pool.
const MATCH_EVERY: usize = 50;

fn caption(i: i64) -> String {
    let i = i.unsigned_abs() as usize;
    format!(
        "{} {}",
        POOL[i % POOL.len()],
        POOL[(i * 5 + 3) % POOL.len()]
    )
}

fn owner_fk(id: i64) -> i64 {
    (id % 3 + 1) * 100
}

fn photos_rows(ids: &[i64], salt: i64) -> Table {
    TableBuilder::new()
        .int64("id", ids.to_vec())
        .int64("owner_fk", ids.iter().map(|id| owner_fk(*id)).collect())
        .utf8("caption", ids.iter().map(|id| caption(id + salt)).collect())
        .build()
        .expect("photos rows")
}

/// One of two identically-seeded sessions (fresh caches and indexes each).
fn session(photo_rows: usize, product_rows: usize) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "photos",
        photos_rows(&(0..photo_rows as i64).collect::<Vec<_>>(), 0),
    );
    s.register_table(
        "owners",
        TableBuilder::new()
            .int64("owner_id", vec![100, 200, 300])
            .utf8("region", vec!["west".into(), "east".into(), "north".into()])
            .build()
            .expect("owners rows"),
    );
    s.register_table(
        "products",
        TableBuilder::new()
            .int64("product_id", (0..product_rows as i64).collect())
            .utf8(
                "title",
                (0..product_rows)
                    .map(|j| {
                        let pool: &[&str] = if j % MATCH_EVERY == 0 {
                            &POOL
                        } else {
                            &OFF_POOL
                        };
                        format!(
                            "{} {}",
                            pool[j % pool.len()],
                            pool[(j * 7 + 2) % pool.len()]
                        )
                    })
                    .collect(),
            )
            .build()
            .expect("products rows"),
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: 32,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    s.register_model("ft", model);
    // deterministic kernel: byte-identical results for any thread count
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    for table in ["photos", "owners", "products"] {
        s.catalog().analyze(table).expect("analyze");
    }
    s
}

/// The maintained query: hash join into the dimension table, then the
/// similarity join — one delta stream exercises both propagation rules.
fn query() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "owner_fk",
            "owner_id",
        ),
        LogicalPlan::scan("products"),
        "caption",
        "title",
        "ft",
        cej_core::sim_gte(THRESHOLD),
    )
}

/// Deterministic delta stream: `BATCHES` batches cycling through append /
/// delete / upsert, about 1% of the base table in total.  The mirror of
/// live ids keeps deletes and upserts aimed at rows that exist.
fn delta_stream(photo_rows: usize) -> Vec<Delta> {
    let per_batch = (photo_rows / 100 / BATCHES).max(1);
    let mut live: Vec<i64> = (0..photo_rows as i64).collect();
    let mut next = photo_rows as i64;
    let mut stream = Vec::with_capacity(BATCHES);
    for batch in 0..BATCHES {
        match batch % 3 {
            0 => {
                let ids: Vec<i64> = (0..per_batch as i64).map(|k| next + k).collect();
                next += per_batch as i64;
                live.extend(&ids);
                stream.push(Delta::Append(photos_rows(&ids, 0)));
            }
            1 => {
                let mut keys = Vec::with_capacity(per_batch);
                for k in 0..per_batch {
                    let victim = live[(batch * 37 + k * 13) % live.len()];
                    if !keys.contains(&victim) {
                        keys.push(victim);
                    }
                }
                live.retain(|id| !keys.contains(id));
                stream.push(Delta::DeleteByKey {
                    key_column: "id".to_string(),
                    keys: keys.into_iter().map(ScalarValue::Int64).collect(),
                });
            }
            _ => {
                let mut ids = Vec::with_capacity(per_batch);
                for k in 0..per_batch {
                    let id = if k % 2 == 0 {
                        live[(batch * 29 + k * 7) % live.len()]
                    } else {
                        next += 1;
                        next - 1
                    };
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
                for id in &ids {
                    if !live.contains(id) {
                        live.push(*id);
                    }
                }
                // salt shifts the caption so upserts actually change rows
                stream.push(Delta::Upsert {
                    key_column: "id".to_string(),
                    rows: photos_rows(&ids, 1),
                });
            }
        }
    }
    stream
}

fn main() -> ExitCode {
    header(
        "Incremental view maintenance",
        "standing-query delta propagation vs recompute-from-scratch, same delta stream",
    );
    let baseline_path = std::env::args().nth(1);
    let photo_rows = scaled(80_000);
    let product_rows = scaled(4_000);
    let stream = delta_stream(photo_rows);
    let delta_rows: usize = stream
        .iter()
        .map(|d| match d {
            Delta::Append(rows) => rows.num_rows(),
            Delta::DeleteByKey { keys, .. } => keys.len(),
            Delta::Upsert { rows, .. } => rows.num_rows(),
        })
        .sum();
    let query = query();

    // Delta path: one standing subscription absorbs every batch.  The
    // subscribe itself runs the query once, which also warms the
    // session's embedding cache — the timed loop measures maintenance.
    let incremental_session = session(photo_rows, product_rows);
    let standing = incremental_session
        .prepare(&query)
        .expect("prepare standing query")
        .subscribe()
        .expect("subscribe");
    let mut incremental = Duration::ZERO;
    for delta in &stream {
        let (_, elapsed) = time_once(|| {
            incremental_session
                .apply_delta("photos", delta)
                .expect("apply delta");
            standing.drain()
        });
        incremental += elapsed;
    }

    // Recompute path: identical seed data and deltas, no subscription —
    // after every batch the query is re-planned and re-executed from
    // scratch (one warm-up run outside the timed loop, mirroring the
    // warm embedding cache the delta path gets from its subscribe).
    let recompute_session = session(photo_rows, product_rows);
    let mut full_table = recompute_session
        .prepare(&query)
        .expect("prepare warm-up")
        .run()
        .expect("warm-up run")
        .table;
    let mut recompute = Duration::ZERO;
    for delta in &stream {
        let (table, elapsed) = time_once(|| {
            recompute_session
                .apply_delta("photos", delta)
                .expect("apply delta");
            recompute_session
                .prepare(&query)
                .expect("prepare recompute")
                .run()
                .expect("recompute run")
                .table
        });
        recompute += elapsed;
        full_table = table;
    }

    let maintained = standing.checksum();
    let recomputed = MaintainedResult::new(full_table.clone()).checksum();
    let identical = maintained == recomputed && full_table.num_rows() > 0;
    let speedup = recompute.as_secs_f64() / incremental.as_secs_f64();
    let stats = standing.stats();

    println!(
        "base {photo_rows} rows | {} delta rows in {BATCHES} batches | result {} rows",
        delta_rows,
        full_table.num_rows(),
    );
    println!(
        "delta path {} | recompute {} | speedup {speedup:.2}x | propagations {} | refreshes {} | identical {}",
        fmt_ms(incremental),
        fmt_ms(recompute),
        stats.propagations,
        stats.refreshes,
        if identical { "yes" } else { "NO" },
    );

    let mut report = Report::new("ivm");
    report.push_elapsed("delta_path", incremental);
    report.push_elapsed("recompute", recompute);
    report.push_value("delta_speedup", speedup);
    report.push_value("delta_rows", delta_rows as f64);
    report.push_value("result_rows", full_table.num_rows() as f64);
    report.push_value("propagations", stats.propagations as f64);
    report.push_value("refreshes", stats.refreshes as f64);
    report.push_value("identical", if identical { 1.0 } else { 0.0 });
    report.write_if_requested();

    let mut failed = false;
    if !identical {
        eprintln!(
            "ivm_gate: maintained result diverged from recompute (maintained \
             {maintained:016x} vs recomputed {recomputed:016x}, {} rows) — failing",
            full_table.num_rows()
        );
        failed = true;
    }
    let mut required = MIN_SPEEDUP;
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Ok(baseline) => {
                if let Some(old) = extract_value(&baseline, "delta_speedup") {
                    required = required.max(old * MIN_FRACTION);
                }
            }
            Err(e) => {
                eprintln!("ivm_gate: cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if speedup < required {
        eprintln!("ivm_gate: speedup {speedup:.2}x below required {required:.2}x — failing");
        failed = true;
    } else {
        println!("speedup {speedup:.2}x >= {required:.2}x [ok]");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("ivm_gate: delta path holds");
        ExitCode::SUCCESS
    }
}
