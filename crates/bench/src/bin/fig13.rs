//! Figure 13: mini-batch size impact on memory requirements and execution
//! time.

use cej_bench::experiments::{fig13_batch_size_impact, DIM};
use cej_bench::harness::{header, print_table, scaled};

fn main() {
    header(
        "Figure 13",
        "mini-batch size: relative slowdown vs relative RAM reduction",
    );
    // Paper: 100k x 100k (40 GB intermediate).  Scaled to 4k x 4k by default.
    let n = scaled(4_000);
    let batches = [
        (n, n / 2),
        (n / 2, n / 2),
        (n, n / 10),
        (n / 10, n / 2),
        (n / 20, n / 2),
        (n / 10, n / 10),
        (n / 10, n / 20),
        (n / 20, n / 20),
    ];
    let rows = fig13_batch_size_impact(n, DIM, &batches);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.clone(),
                format!("{:.2}x", r.relative_slowdown),
                format!("{:.1}x", r.ram_reduction),
            ]
        })
        .collect();
    print_table(
        &["mini-batch", "relative slowdown", "RAM reduction"],
        &printable,
    );
}
