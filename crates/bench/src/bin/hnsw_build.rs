//! Times HNSW index construction on the `near_duplicate_detection` workload
//! (20k clustered 64-D vectors at `CEJ_SCALE=1`), the ROADMAP's build-speed
//! yardstick.  Builds the index twice — sequentially and through the shared
//! worker pool — and reports build times plus probe recall against the exact
//! scan, so construction-speed work is validated in one command:
//!
//! ```sh
//! CEJ_SCALE=0.25 cargo run --release -p cej-bench --bin hnsw_build
//! ```
//!
//! With `CEJ_REPORT=<path>` the numbers are also written as JSON (used by
//! the CI bench-smoke job).

use std::time::{Duration, Instant};

use cej_bench::harness::{header, scaled};
use cej_bench::report::Report;
use cej_exec::ExecPool;
use cej_index::{probe_recall, HnswIndex, HnswParams};
use cej_workload::clustered_matrix;

fn main() {
    header("HNSW-build", "index construction speed and probe recall");
    let n = scaled(20_000);
    let probes = scaled(200);
    let dim = 64;
    let k = 3;
    let params = HnswParams::low_recall();
    let (reference, _) = clustered_matrix(n, dim, 50, 0.05, 1);
    let (incoming, _) = clustered_matrix(probes, dim, 50, 0.05, 2);

    let build = |pool: &ExecPool| -> (Duration, f64) {
        let start = Instant::now();
        let index = HnswIndex::build_with_pool(reference.clone(), params, pool).unwrap();
        let elapsed = start.elapsed();
        let recall = probe_recall(&index, &reference, &incoming, k).unwrap();
        (elapsed, recall)
    };

    let (seq_time, seq_recall) = build(&ExecPool::new(1));
    let pool = ExecPool::global();
    let (pool_time, pool_recall) = build(pool);

    println!(
        "n={n} dim={dim} M={} efC={}: sequential build {:.2?} (recall@{k} {:.4}), \
         pool({} threads) build {:.2?} (recall@{k} {:.4}, speedup {:.2}x)",
        params.m,
        params.ef_construction,
        seq_time,
        seq_recall,
        pool.threads(),
        pool_time,
        pool_recall,
        seq_time.as_secs_f64() / pool_time.as_secs_f64().max(1e-9),
    );

    let mut report = Report::new("hnsw_build");
    report.push_value("n", n as f64);
    report.push_value("threads", pool.threads() as f64);
    report.push_value("sequential_build_ms", seq_time.as_secs_f64() * 1e3);
    report.push_value("pool_build_ms", pool_time.as_secs_f64() * 1e3);
    report.push_value("sequential_recall", seq_recall);
    report.push_value("pool_recall", pool_recall);
    report.write_if_requested();
}
