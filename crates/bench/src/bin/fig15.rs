//! Figure 15: top-k = 1 vector join condition, scan vs probe under relational
//! selectivity on the inner relation.

use cej_bench::experiments::{scan_vs_probe, scan_vs_probe_rows, DIM};
use cej_bench::harness::{header, print_table, scaled};
use cej_relational::SimilarityPredicate;

fn main() {
    header(
        "Figure 15",
        "top-1 join: tensor scan vs HNSW index probe (10k x 1M in the paper)",
    );
    let rows = scan_vs_probe(
        scaled(500),
        scaled(50_000),
        DIM,
        SimilarityPredicate::TopK(1),
        &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        true,
    );
    print_table(
        &[
            "selectivity",
            "Tensor [ms]",
            "Tensor -filter [ms]",
            "Index Lo [ms]",
            "Index Hi [ms]",
        ],
        &scan_vs_probe_rows(&rows),
    );
}
