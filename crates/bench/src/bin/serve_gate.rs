//! CI serving regression gate.
//!
//! Compares a fresh `serve_throughput.json` against the checked-in
//! baseline and fails (non-zero exit) when:
//!
//! * `results_checksum` differs — query results are no longer
//!   byte-identical (across thread counts too: the CI matrix legs gate
//!   against the *same* baseline);
//! * `scaling_c4` drops below the absolute 2.0 acceptance bar — serving
//!   must scale at least 2x from 1 to 4 concurrent clients regardless of
//!   what the baseline achieved;
//! * `warm_p95_us_c1` exceeds `3x baseline + 2000 µs` — warm prepared-run
//!   latency regressed (generous margins: shared CI runners are noisy);
//! * `qps_c1` falls below a third of the baseline;
//! * the workload `scale` differs — the checksum is only meaningful at the
//!   baseline's `CEJ_SCALE`.
//!
//! ```sh
//! serve_gate <current.json> <baseline.json>
//! ```
//!
//! Refresh the baseline with `CEJ_SCALE=0.05
//! CEJ_REPORT=ci/serve_baseline.json cargo run --release -p cej-bench
//! --bin serve_throughput`.

use std::process::ExitCode;

/// The acceptance bar on client-count scaling (1 → 4 clients).
const MIN_SCALING_C4: f64 = 2.0;
/// Latency regression margin: ratio and absolute headroom.
const P95_RATIO: f64 = 3.0;
const P95_HEADROOM_US: f64 = 2_000.0;
/// Throughput floor relative to the baseline.
const QPS_FLOOR_RATIO: f64 = 3.0;

use cej_bench::report::extract_value as extract;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(current_path), Some(baseline_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: serve_gate <current.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("serve_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    let mut check = |name: &str, ok: Option<bool>, detail: String| match ok {
        Some(true) => println!("{name}: {detail} [ok]"),
        Some(false) => {
            println!("{name}: {detail} [FAIL]");
            failed = true;
        }
        None => {
            eprintln!("serve_gate: {name} missing from one of the reports");
            failed = true;
        }
    };

    let pair = |key: &str| Some((extract(&current, key)?, extract(&baseline, key)?));

    // the checksum is only comparable at the same workload scale
    check(
        "scale",
        pair("scale").map(|(new, old)| (new - old).abs() < 1e-12),
        pair("scale")
            .map(|(new, old)| format!("baseline {old}, current {new}"))
            .unwrap_or_default(),
    );
    check(
        "results_checksum",
        pair("results_checksum").map(|(new, old)| new == old),
        pair("results_checksum")
            .map(|(new, old)| format!("baseline {:08x}, current {:08x}", old as u64, new as u64))
            .unwrap_or_default(),
    );
    check(
        "scaling_c4",
        pair("scaling_c4").map(|(new, _)| new >= MIN_SCALING_C4),
        pair("scaling_c4")
            .map(|(new, old)| {
                format!("baseline {old:.2}x, current {new:.2}x, floor {MIN_SCALING_C4:.1}x")
            })
            .unwrap_or_default(),
    );
    check(
        "warm_p95_us_c1",
        pair("warm_p95_us_c1").map(|(new, old)| new <= old * P95_RATIO + P95_HEADROOM_US),
        pair("warm_p95_us_c1")
            .map(|(new, old)| {
                format!(
                    "baseline {old:.0} µs, current {new:.0} µs, limit {:.0} µs",
                    old * P95_RATIO + P95_HEADROOM_US
                )
            })
            .unwrap_or_default(),
    );
    check(
        "qps_c1",
        pair("qps_c1").map(|(new, old)| new >= old / QPS_FLOOR_RATIO),
        pair("qps_c1")
            .map(|(new, old)| {
                format!(
                    "baseline {old:.0}, current {new:.0}, floor {:.0}",
                    old / QPS_FLOOR_RATIO
                )
            })
            .unwrap_or_default(),
    );

    if failed {
        eprintln!("serve_gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("serve_gate: all checks passed");
        ExitCode::SUCCESS
    }
}
