//! CI morsel-parallelism regression gate.
//!
//! Measures the *single-query* speedup of morsel-driven parallel execution:
//! the same physical plan is executed cold (fresh session, empty embedding
//! cache) under an explicit 1-thread pool and an explicit
//! [`THREADS`]-thread pool, on two legs:
//!
//! * **filtered scan** — `σ(r) ⋈_sim s` through the tensor path: the outer
//!   scan+filter chain is morselised and every probe morsel embeds its
//!   rows concurrently;
//! * **hash join** — `(photos ⋈ owners) ⋈_sim products`: the relational
//!   hash join radix-partitions its build across workers and the
//!   similarity probe morsels run in parallel on top of it.
//!
//! The embedding model carries a simulated remote-service latency
//! ([`ModelCostProfile::remote_micros`]), the dominant cost of the
//! context-enhanced join the paper optimises — so the measured ratio is
//! the latency-hiding win of overlapping model calls across morsels, which
//! holds even on a single-core CI runner (run this gate with
//! `CEJ_THREADS=1` so the process-global pool does not parallelise the
//! serial leg's batch embeds underneath the measurement).
//!
//! Both legs must (a) produce **byte-identical** results at both thread
//! budgets (checksum equality — parallelism is pure speed) and (b) keep a
//! parallel speedup of at least [`MIN_SPEEDUP`]x, and at least
//! [`MIN_FRACTION`] of the checked-in baseline's speedup.
//!
//! ```sh
//! parallel_gate [baseline.json]
//! ```
//!
//! With `CEJ_REPORT=<path>` the machine-readable summary is written as
//! well.  The baseline lives at `ci/parallel_baseline.json`; refresh it
//! with `CEJ_SCALE=0.05 CEJ_THREADS=1 CEJ_REPORT=ci/parallel_baseline.json
//! cargo run --release -p cej-bench --bin parallel_gate`.

use std::process::ExitCode;

use cej_bench::harness::{fmt_ms, header, scaled, time_once};
use cej_bench::report::{extract_value, Report};
use cej_core::{
    ContextJoinSession, ExecContext, ExecMode, JoinStrategy, MaintainedResult, TensorJoinConfig,
};
use cej_embedding::{CachedEmbedder, FastTextConfig, FastTextModel, ModelCostProfile};
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};

/// Parallel thread budget measured against the serial budget.
const THREADS: usize = 4;
/// Required single-query speedup of the parallel leg (acceptance floor).
const MIN_SPEEDUP: f64 = 2.0;
/// Fraction of the baseline speedup the current run must retain.
const MIN_FRACTION: f64 = 0.5;
/// Simulated remote model latency per real invocation.
const REMOTE_MICROS: u64 = 800;
/// Inner (build/indexed) side rows — small, so the serial once-per-query
/// inner embed does not dilute the morsel-parallel outer side.
const INNER_ROWS: usize = 4;

/// Distinct caption per row: every row is a cold model call.
fn caption(i: usize) -> String {
    format!("caption number {i} about topic {}", i % 97)
}

fn model() -> CachedEmbedder<FastTextModel> {
    let inner = FastTextModel::new(FastTextConfig {
        dim: 32,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    // uncached + cost profile = every session-cache miss pays the remote
    // round trip; the fresh session per measurement keeps every run cold
    CachedEmbedder::uncached(inner).with_cost(ModelCostProfile::remote_micros(REMOTE_MICROS))
}

fn products() -> cej_storage::Table {
    cej_storage::TableBuilder::new()
        .int64("product_id", (0..INNER_ROWS as i64).collect())
        .utf8(
            "title",
            (0..INNER_ROWS)
                .map(|i| format!("product topic {i}"))
                .collect(),
        )
        .build()
        .expect("products table")
}

/// Filtered-scan leg session: one wide outer table, a tiny inner table.
fn scan_session(outer_rows: usize) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "r",
        cej_storage::TableBuilder::new()
            .int64("id", (0..outer_rows as i64).collect())
            .int64("filter", (0..outer_rows as i64).map(|i| i % 100).collect())
            .utf8("caption", (0..outer_rows).map(caption).collect())
            .build()
            .expect("outer table"),
    );
    s.register_table("s", products());
    s.register_model("ft", model());
    // deterministic scan kernel: byte-identical output at any thread budget
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    s
}

/// Filtered-scan leg plan: `σ(filter < 90)(r) ⋈_sim s`, top-1.
fn scan_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::scan("r").select(col("filter").lt(lit_i64(90))),
        LogicalPlan::scan("s"),
        "caption",
        "title",
        "ft",
        SimilarityPredicate::TopK(1),
    )
}

/// Hash-join leg session: fact ⋈ dimension feeding the similarity join.
fn hash_session(outer_rows: usize) -> ContextJoinSession {
    let mut s = ContextJoinSession::new();
    s.register_table(
        "photos",
        cej_storage::TableBuilder::new()
            .int64("id", (0..outer_rows as i64).collect())
            .int64(
                "owner_fk",
                (0..outer_rows as i64).map(|i| (i % 3 + 1) * 100).collect(),
            )
            .utf8("caption", (0..outer_rows).map(caption).collect())
            .build()
            .expect("photos table"),
    );
    s.register_table(
        "owners",
        cej_storage::TableBuilder::new()
            .int64("owner_id", vec![100, 200, 300])
            .utf8("region", vec!["west".into(), "east".into(), "north".into()])
            .build()
            .expect("owners table"),
    );
    s.register_table("products", products());
    s.register_model("ft", model());
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    s
}

/// Hash-join leg plan: `(photos ⋈ owners) ⋈_sim products`, top-1.
fn hash_plan() -> LogicalPlan {
    LogicalPlan::e_join(
        LogicalPlan::join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("owners"),
            "owner_fk",
            "owner_id",
        ),
        LogicalPlan::scan("products"),
        "caption",
        "title",
        "ft",
        SimilarityPredicate::TopK(1),
    )
}

/// One cold measurement: fresh session, explicit pool budget, fixed morsel
/// size.  Returns the wall time and a 32-bit fold of the result checksum.
fn measure(
    make_session: &dyn Fn() -> ContextJoinSession,
    plan: &LogicalPlan,
    threads: usize,
    batch_rows: usize,
) -> (std::time::Duration, u32, usize) {
    let s = make_session();
    let prepared = s.prepare(plan).expect("prepare");
    let registry = s.model_registry();
    let ctx = ExecContext {
        catalog: s.catalog(),
        registry: &registry,
        embeddings: s.embedding_caches(),
        indexes: s.index_manager(),
        pool: cej_exec::ExecPool::new(threads),
    };
    let (outcome, elapsed) = time_once(|| {
        prepared
            .physical_plan()
            .execute_with(&ctx, ExecMode::Batch { batch_rows })
            .expect("execute")
    });
    let checksum = MaintainedResult::new(outcome.table.clone()).checksum();
    let folded = (checksum >> 32) as u32 ^ (checksum & 0xffff_ffff) as u32;
    (elapsed, folded, outcome.table.num_rows())
}

struct Leg {
    name: &'static str,
    t1: std::time::Duration,
    tn: std::time::Duration,
    speedup: f64,
    identical: bool,
    rows: usize,
}

fn run_leg(
    name: &'static str,
    make_session: &dyn Fn() -> ContextJoinSession,
    plan: &LogicalPlan,
    outer_rows: usize,
) -> Leg {
    // enough morsels per worker that the claim queue stays busy
    let batch_rows = (outer_rows / (THREADS * 4)).max(1);
    let (t1, sum1, rows1) = measure(make_session, plan, 1, batch_rows);
    let (tn, sumn, rowsn) = measure(make_session, plan, THREADS, batch_rows);
    Leg {
        name,
        t1,
        tn,
        speedup: t1.as_secs_f64() / tn.as_secs_f64(),
        identical: sum1 == sumn && rows1 == rowsn && rows1 > 0,
        rows: rows1,
    }
}

fn main() -> ExitCode {
    header(
        "Morsel parallelism",
        "cold single-query speedup at 4 threads vs 1, byte-identical results",
    );
    let baseline_path = std::env::args().nth(1);
    let outer_rows = scaled(600).max(THREADS * 8);

    let legs = [
        run_leg(
            "filtered_scan",
            &|| scan_session(outer_rows),
            &scan_plan(),
            outer_rows,
        ),
        run_leg(
            "hash_join",
            &|| hash_session(outer_rows),
            &hash_plan(),
            outer_rows,
        ),
    ];

    let mut report = Report::new("parallel");
    report.push_value("threads", THREADS as f64);
    report.push_value("outer_rows", outer_rows as f64);
    let baseline = baseline_path.map(|path| match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("parallel_gate: cannot read {path}: {e}");
            String::new()
        }
    });
    let mut failed = baseline.as_deref() == Some("");

    for leg in &legs {
        println!(
            "{}: 1 thread {} | {} threads {} | speedup {:.2}x | {} rows | identical {}",
            leg.name,
            fmt_ms(leg.t1),
            THREADS,
            fmt_ms(leg.tn),
            leg.speedup,
            leg.rows,
            if leg.identical { "yes" } else { "NO" },
        );
        report.push_elapsed(&format!("{}_serial", leg.name), leg.t1);
        report.push_elapsed(&format!("{}_parallel", leg.name), leg.tn);
        report.push_value(&format!("{}_speedup", leg.name), leg.speedup);
        report.push_value(
            &format!("{}_identical", leg.name),
            if leg.identical { 1.0 } else { 0.0 },
        );

        if !leg.identical {
            eprintln!(
                "parallel_gate: {} results differ across thread budgets — failing",
                leg.name
            );
            failed = true;
        }
        let mut required = MIN_SPEEDUP;
        if let Some(contents) = &baseline {
            if let Some(old) = extract_value(contents, &format!("{}_speedup", leg.name)) {
                required = required.max(old * MIN_FRACTION);
            }
        }
        if leg.speedup < required {
            eprintln!(
                "parallel_gate: {} speedup {:.2}x below required {required:.2}x — failing",
                leg.name, leg.speedup
            );
            failed = true;
        } else {
            println!(
                "{} speedup {:.2}x >= {required:.2}x [ok]",
                leg.name, leg.speedup
            );
        }
    }
    report.write_if_requested();

    if failed {
        ExitCode::FAILURE
    } else {
        println!("parallel_gate: morsel parallelism holds");
        ExitCode::SUCCESS
    }
}
