//! Figure 10: optimised NLJ across input-size combinations, including the
//! effect of the inner/outer loop ordering heuristic.

use cej_bench::experiments::{fig10_input_sizes, DIM};
use cej_bench::harness::{fmt_ms, header, print_table, scaled};

fn main() {
    header(
        "Figure 10",
        "optimised NLJ across |R| x |S| combinations, 100-D",
    );
    let sizes = [
        (scaled(1_000), scaled(1_000)),
        (scaled(2_000), scaled(500)),
        (scaled(500), scaled(2_000)),
        (scaled(4_000), scaled(500)),
        (scaled(500), scaled(4_000)),
        (scaled(2_000), scaled(2_000)),
    ];
    let rows = fig10_input_sizes(&sizes, DIM, 1);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, ops, ordered, unordered)| {
            vec![
                label.clone(),
                ops.to_string(),
                fmt_ms(*ordered),
                fmt_ms(*unordered),
            ]
        })
        .collect();
    print_table(
        &[
            "|R| x |S|",
            "pair comparisons",
            "heuristic order [ms]",
            "as-given order [ms]",
        ],
        &printable,
    );
}
