//! Runs every experiment binary's body in sequence (scaled down further), so
//! a single `cargo run --release -p cej-bench --bin run_all` regenerates the
//! whole evaluation section in one go.
//!
//! With `CEJ_REPORT=<path>` a JSON summary of per-section wall-clock times
//! is written as well — the artifact the CI bench-smoke job archives on
//! every run.

use std::time::{Duration, Instant};

use cej_bench::experiments::{self, DIM};
use cej_bench::harness::{fmt_ms, header, print_table, scaled};
use cej_bench::report::Report;
use cej_core::{ContextJoinSession, IndexJoinConfig, JoinStrategy};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_index::HnswParams;
use cej_relational::{LogicalPlan, SimilarityPredicate};
use cej_workload::{JoinWorkload, RelationSpec};

fn main() {
    header(
        "Run-all",
        "every table and figure of the evaluation, small scale",
    );
    let mut report = Report::new("run_all");
    report.push_value("threads", cej_exec::default_threads() as f64);
    report.push_value(
        "pool_workers",
        cej_exec::ExecPool::global().threads() as f64,
    );
    // the runtime-dispatched SIMD lane width (CEJ_SIMD; 1 = scalar)
    report.push_value("simd_lanes", cej_vector::dispatched_width().lanes() as f64);
    println!(
        "simd width: {} ({} lanes); pool workers: {}",
        cej_vector::dispatched_width().label(),
        cej_vector::dispatched_width().lanes(),
        cej_exec::ExecPool::global().threads()
    );
    let section = |report: &mut Report, name: &str, body: &mut dyn FnMut()| {
        let start = Instant::now();
        body();
        report.push_elapsed(name, start.elapsed());
    };

    section(&mut report, "table02", &mut || {
        println!("\n--- Table II ---");
        for (query, matches) in experiments::table02_semantic_matches(15) {
            println!("{query:<12} {}", matches.join(", "));
        }
    });

    section(&mut report, "fig08", &mut || {
        println!("\n--- Figure 8 ---");
        let rows = experiments::fig08_nlj_logical_physical(&[(scaled(100), scaled(100))], DIM);
        for r in rows {
            println!(
                "{}: naive {} / {} ms, prefetch {} / {} ms (model calls {} vs {})",
                r.sizes,
                fmt_ms(r.naive_no_simd),
                fmt_ms(r.naive_simd),
                fmt_ms(r.prefetch_no_simd),
                fmt_ms(r.prefetch_simd),
                r.naive_model_calls,
                r.prefetch_model_calls
            );
        }
    });

    section(&mut report, "fig09", &mut || {
        println!("\n--- Figure 9 ---");
        for (t, simd, no_simd) in
            experiments::fig09_thread_scalability(scaled(800), DIM, &[1, 2, 4])
        {
            println!(
                "threads {t}: SIMD {} ms, NO-SIMD {} ms",
                fmt_ms(simd),
                fmt_ms(no_simd)
            );
        }
    });

    section(&mut report, "fig10", &mut || {
        println!("\n--- Figure 10 ---");
        for (label, ops, ordered, unordered) in experiments::fig10_input_sizes(
            &[(scaled(1_000), scaled(500)), (scaled(500), scaled(1_000))],
            DIM,
            1,
        ) {
            println!(
                "{label} ({ops} comparisons): heuristic {} ms, as-given {} ms",
                fmt_ms(ordered),
                fmt_ms(unordered)
            );
        }
    });

    section(&mut report, "fig11_fig12", &mut || {
        println!("\n--- Figures 11 & 12 ---");
        for r in experiments::fig11_nlj_vs_tensor(&[scaled(2_560_000)], &[4, 64, 256]) {
            println!(
                "ops {} dim {:>3}: NLJ {} ns/elem, tensor {} ns/elem",
                r.fp32_ops, r.dim, r.first_ns, r.second_ns
            );
        }
        for r in experiments::fig12_batched_vs_non_batched(&[scaled(2_560_000)], &[64]) {
            println!(
                "ops {} dim {:>3}: batched {} ns/elem, non-batched {} ns/elem",
                r.fp32_ops, r.dim, r.first_ns, r.second_ns
            );
        }
    });

    section(&mut report, "fig13", &mut || {
        println!("\n--- Figure 13 ---");
        let n = scaled(2_000);
        for r in experiments::fig13_batch_size_impact(n, DIM, &[(n / 2, n / 2), (n / 10, n / 10)]) {
            println!(
                "{:<24} slowdown {:.2}x, RAM reduction {:.1}x",
                r.batch, r.relative_slowdown, r.ram_reduction
            );
        }
    });

    section(&mut report, "fig14", &mut || {
        println!("\n--- Figure 14 ---");
        for (label, tensor, nlj) in experiments::fig14_tensor_vs_nlj(
            &[
                (scaled(1_000), scaled(1_000)),
                (scaled(2_000), scaled(1_000)),
            ],
            DIM,
            1,
        ) {
            println!(
                "{label}: tensor {} ms, NLJ {} ms",
                fmt_ms(tensor),
                fmt_ms(nlj)
            );
        }
    });

    section(&mut report, "fig15_fig17", &mut || {
        println!("\n--- Figures 15-17 ---");
        for (name, predicate) in [
            ("Fig 15 (top-1)", SimilarityPredicate::TopK(1)),
            ("Fig 16 (top-32)", SimilarityPredicate::TopK(32)),
            ("Fig 17 (sim>0.9)", SimilarityPredicate::Threshold(0.9)),
        ] {
            println!("{name}");
            let rows = experiments::scan_vs_probe(
                scaled(100),
                scaled(10_000),
                DIM,
                predicate,
                &[10, 50, 100],
                true,
            );
            print_table(
                &[
                    "selectivity",
                    "Tensor",
                    "Tensor -filter",
                    "Index Lo",
                    "Index Hi",
                ],
                &experiments::scan_vs_probe_rows(&rows),
            );
        }
    });

    section(&mut report, "costmodel", &mut || {
        println!("\n--- Cost model ---");
        for (label, naive, prefetch, cn, cp) in
            experiments::costmodel_validation(&[(scaled(20), scaled(20))])
        {
            println!(
                "{label}: naive calls {naive}, prefetch calls {prefetch}, predicted {cn:.2e} vs {cp:.2e}"
            );
        }
    });

    let mut prepared_values: Vec<(&'static str, f64)> = Vec::new();
    section(&mut report, "prepared_repeat", &mut || {
        println!("\n--- Prepared queries: cold vs warm (same join executed 10x) ---");
        prepared_values = prepared_repeat(scaled(200), scaled(2_000), 10);
    });
    for (name, value) in prepared_values {
        report.push_value(name, value);
    }

    let mut serve_values: Vec<(&'static str, f64)> = Vec::new();
    section(&mut report, "serve_throughput", &mut || {
        println!("\n--- Serving: closed-loop clients vs a shared-session server ---");
        let summary = cej_bench::serve::serve_throughput(
            scaled(200).max(8),
            scaled(2_000).max(16),
            20,
            1_000,
            &[1, 4],
        );
        cej_bench::harness::print_table(
            &[
                "clients",
                "QPS",
                "warm p50 µs",
                "warm p95 µs",
                "warm p99 µs",
            ],
            &cej_bench::serve::serve_table(&summary),
        );
        println!(
            "scaling 1→4 clients {:.2}x; checksum {:08x}; admission burst {} served / {} rejected",
            summary.scaling_c4,
            summary.results_checksum,
            summary.admission_served,
            summary.admission_rejected
        );
        serve_values = vec![
            ("serve_scaling_c4", summary.scaling_c4),
            ("serve_checksum", f64::from(summary.results_checksum)),
        ];
    });
    for (name, value) in serve_values {
        report.push_value(name, value);
    }

    let mut accuracy_values: Vec<(&'static str, f64)> = Vec::new();
    section(&mut report, "planner_accuracy", &mut || {
        println!("\n--- Planner accuracy: q-error + advisor agreement ---");
        let summary = cej_bench::accuracy::planner_accuracy(scaled(400), scaled(4_000));
        cej_bench::harness::print_table(
            &["predicate", "est", "actual", "q-error"],
            &cej_bench::accuracy::accuracy_table(&summary.scan_rows),
        );
        println!(
            "scan q-error median {:.3} / max {:.3}; join q-error median {:.3}; \
             advisor agreement {:.0}%",
            summary.scan_qerr_median,
            summary.scan_qerr_max,
            summary.join_qerr_median,
            summary.advisor_agreement * 100.0
        );
        accuracy_values = vec![
            ("scan_qerr_median", summary.scan_qerr_median),
            ("scan_qerr_max", summary.scan_qerr_max),
            ("join_qerr_median", summary.join_qerr_median),
            ("advisor_agreement", summary.advisor_agreement),
        ];
    });
    for (name, value) in accuracy_values {
        report.push_value(name, value);
    }

    report.write_if_requested();
}

/// The plan-once / execute-many experiment: the same index join runs
/// `runs` times through one [`cej_core::PreparedQuery`].  The first (cold)
/// execution pays embedding prefetch and the HNSW build; every warm
/// execution reuses the session's embedding cache and the persistent index,
/// so the cold/warm gap is exactly the amortised per-query planning and
/// build cost.
fn prepared_repeat(outer_rows: usize, inner_rows: usize, runs: usize) -> Vec<(&'static str, f64)> {
    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(outer_rows.max(2)),
        RelationSpec::with_rows(inner_rows.max(2)),
        77,
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: DIM,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    let mut session = ContextJoinSession::new();
    session.register_table("r", workload.outer.clone());
    session.register_table("s", workload.inner.clone());
    session.register_model("ft", model);
    session.with_strategy(JoinStrategy::Index(IndexJoinConfig {
        params: HnswParams::tiny(),
        range_probe_k: 8,
    }));

    let plan = LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s"),
        "word",
        "word",
        "ft",
        SimilarityPredicate::TopK(1),
    );
    let prepared = session.prepare(&plan).expect("plan");

    let start = Instant::now();
    let cold_report = prepared.run().expect("cold run");
    let cold = start.elapsed();
    assert_eq!(cold_report.index_builds, 1, "cold run must build the index");

    let mut warm_total = Duration::ZERO;
    let mut warm_min = Duration::MAX;
    for _ in 1..runs.max(2) {
        let start = Instant::now();
        let warm_report = prepared.run().expect("warm run");
        let elapsed = start.elapsed();
        assert_eq!(warm_report.index_builds, 0, "warm runs must not build");
        warm_total += elapsed;
        warm_min = warm_min.min(elapsed);
    }
    let warm_runs = (runs.max(2) - 1) as u32;
    let warm_avg = warm_total / warm_runs;
    let speedup = cold.as_secs_f64() / warm_avg.as_secs_f64().max(1e-9);
    println!(
        "index join {}x{} (top-1): cold {} (1 HNSW build, {} model calls), \
         warm avg {} / min {} over {warm_runs} runs (speedup {speedup:.1}x, \
         0 model calls, 0 HNSW builds)",
        outer_rows,
        inner_rows,
        fmt_ms(cold),
        cold_report.embedding_stats.model_calls,
        fmt_ms(warm_avg),
        fmt_ms(warm_min),
    );
    vec![
        ("prepared_cold_ms", cold.as_secs_f64() * 1e3),
        ("prepared_warm_avg_ms", warm_avg.as_secs_f64() * 1e3),
        ("prepared_warm_min_ms", warm_min.as_secs_f64() * 1e3),
        ("prepared_speedup", speedup),
    ]
}
