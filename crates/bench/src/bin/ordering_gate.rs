//! CI join-ordering regression gate.
//!
//! Builds a star-schema workload — a fact table with foreign keys into two
//! dimension tables plus a text column joined to a products table by
//! similarity — and times two executions of the *same* logical query:
//!
//! * **DP-chosen** — `session.prepare` runs the Selinger-style join-order
//!   pass, which hash-joins the (filter-reduced) dimensions into the fact
//!   table first, so the expensive similarity join sees a fraction of the
//!   rows;
//! * **worst left-deep** — the similarity join applied to the full fact
//!   table first, dimensions joined above it, lowered directly through the
//!   [`cej_core::Planner`] with the ordering pass bypassed.
//!
//! Both orders must produce the same canonicalised result set (column order,
//! row order, and the ejoin's `l_` renaming erased before hashing), and the
//! DP-chosen plan must be at least [`MIN_SPEEDUP`]x faster wall-clock —
//! ordering is measured as a ratio on one machine, so it is stable where
//! absolute times are not.  The DP plan's per-operator q-errors (from
//! `EXPLAIN ANALYZE`) must stay within bounds: the ordering decision is only
//! as good as the estimates it prices.
//!
//! ```sh
//! ordering_gate [baseline.json]
//! ```
//!
//! With `CEJ_REPORT=<path>` the machine-readable summary is written as
//! well.  The baseline lives at `ci/ordering_baseline.json`; refresh it
//! with `CEJ_SCALE=0.05 CEJ_REPORT=ci/ordering_baseline.json cargo run
//! --release -p cej-bench --bin ordering_gate`.

use std::process::ExitCode;

use cej_bench::harness::{fmt_ms, header, scaled, time_median};
use cej_bench::report::{extract_value, Report};
use cej_core::{ContextJoinSession, ExecContext, JoinStrategy, Planner, TensorJoinConfig};
use cej_embedding::{FastTextConfig, FastTextModel};
use cej_relational::{col, lit_i64, LogicalPlan, SimilarityPredicate};
use cej_storage::{Table, TableBuilder};

/// The DP-chosen plan must beat the worst left-deep order by at least this
/// factor (the acceptance criterion; timer noise at CI scale is absorbed by
/// the gap being much larger in practice).
const MIN_SPEEDUP: f64 = 2.0;
/// Absolute ceiling on the DP plan's worst per-operator q-error.
const MAX_QERROR: f64 = 8.0;
/// Fraction of the baseline speedup the current run must retain.
const MIN_FRACTION: f64 = 0.5;
/// Median-of runs per timed plan.
const RUNS: usize = 3;

/// Deterministic word pool shared by fact notes and product titles, so the
/// similarity join has real matches at the gate's threshold.
const POOL: [&str; 12] = [
    "barbecue", "grill", "database", "server", "laptop", "garden", "vector", "index", "tensor",
    "storage", "network", "kernel",
];

fn star_session(fact_rows: usize, dim_rows: usize, product_rows: usize) -> ContextJoinSession {
    let mut fact_store = Vec::with_capacity(fact_rows);
    let mut fact_courier = Vec::with_capacity(fact_rows);
    let mut fact_note = Vec::with_capacity(fact_rows);
    for i in 0..fact_rows {
        fact_store.push((i % dim_rows) as i64);
        fact_courier.push(((i * 7 + 1) % dim_rows) as i64);
        fact_note.push(format!(
            "{} {}",
            POOL[i % POOL.len()],
            POOL[(i * 5 + 3) % POOL.len()]
        ));
    }
    let mut s = ContextJoinSession::new();
    s.register_table(
        "fact",
        TableBuilder::new()
            .int64("order_id", (0..fact_rows as i64).collect())
            .int64("store_fk", fact_store)
            .int64("courier_fk", fact_courier)
            .utf8("note", fact_note)
            .build()
            .unwrap(),
    );
    s.register_table(
        "stores",
        TableBuilder::new()
            .int64("store_id", (0..dim_rows as i64).collect())
            .int64(
                "store_kind",
                (0..dim_rows).map(|i| (i % 10) as i64).collect(),
            )
            .build()
            .unwrap(),
    );
    s.register_table(
        "couriers",
        TableBuilder::new()
            .int64("courier_id", (0..dim_rows as i64).collect())
            .int64(
                "courier_tier",
                (0..dim_rows).map(|i| (i % 3) as i64).collect(),
            )
            .build()
            .unwrap(),
    );
    s.register_table(
        "products",
        TableBuilder::new()
            .int64("product_id", (0..product_rows as i64).collect())
            .utf8(
                "title",
                (0..product_rows)
                    .map(|j| {
                        format!(
                            "{} {}",
                            POOL[j % POOL.len()],
                            POOL[(j * 7 + 2) % POOL.len()]
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap(),
    );
    let model = FastTextModel::new(FastTextConfig {
        dim: 32,
        ..FastTextConfig::default()
    })
    .expect("model construction");
    s.register_model("ft", model);
    // deterministic kernel: byte-identical results for any thread count
    s.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));
    for table in ["fact", "stores", "couriers", "products"] {
        s.catalog().analyze(table).expect("analyze");
    }
    s
}

const THRESHOLD: f32 = 0.6;

/// The user-facing query: fact ⋈ filtered stores ⋈ couriers, then the
/// similarity join against products.  `prepare` runs the DP ordering pass
/// over this shape.
fn query(s: &ContextJoinSession) -> LogicalPlan {
    s.query("fact")
        .join_plan(
            LogicalPlan::scan("stores").select(col("store_kind").eq(lit_i64(0))),
            ("store_fk", "store_id"),
        )
        .join("couriers", ("courier_fk", "courier_id"))
        .ejoin(
            "products",
            ("note", "title"),
            "ft",
            cej_core::sim_gte(THRESHOLD),
        )
        .build()
}

/// The worst left-deep order of the same query: the similarity join runs
/// over the *full* fact table first, both dimension joins stacked above it.
fn worst_left_deep() -> LogicalPlan {
    let ejoin_first = LogicalPlan::e_join(
        LogicalPlan::scan("fact"),
        LogicalPlan::scan("products"),
        "note",
        "title",
        "ft",
        SimilarityPredicate::Threshold(THRESHOLD),
    );
    let with_stores = LogicalPlan::join(
        ejoin_first,
        LogicalPlan::scan("stores").select(col("store_kind").eq(lit_i64(0))),
        "l_store_fk",
        "store_id",
    );
    LogicalPlan::join(
        with_stores,
        LogicalPlan::scan("couriers"),
        "l_courier_fk",
        "courier_id",
    )
}

/// Canonicalises a result for cross-order comparison: strips the ejoin's
/// `l_` rename (the only naming difference between orders), sorts columns
/// by name and rows lexicographically, and hashes the rendering.
fn canonical_checksum(table: &Table) -> u64 {
    let mut columns: Vec<(String, usize)> = table
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let name = f.name.strip_prefix("l_").unwrap_or(&f.name).to_string();
            (name, i)
        })
        .collect();
    columns.sort();
    let mut rows = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let cells: Vec<String> = columns
            .iter()
            .map(|(name, i)| {
                let column = &table.columns()[*i];
                let cell = if let Ok(v) = column.as_int64() {
                    v[row].to_string()
                } else if let Ok(v) = column.as_utf8() {
                    v[row].clone()
                } else if let Ok(v) = column.as_float64() {
                    format!("{}", v[row])
                } else {
                    panic!("unexpected column type for {name}");
                };
                format!("{name}={cell}")
            })
            .collect();
        rows.push(cells.join("\t"));
    }
    rows.sort();
    let mut payload = String::new();
    for (name, _) in &columns {
        payload.push_str(name);
        payload.push('\t');
    }
    payload.push('\n');
    for row in &rows {
        payload.push_str(row);
        payload.push('\n');
    }
    cej_server::protocol::fnv1a(payload.as_bytes())
}

/// Largest `q-err <x>` annotation in an `EXPLAIN ANALYZE` rendering.
fn max_qerror(analyze_text: &str) -> f64 {
    let mut worst = 1.0f64;
    for part in analyze_text.split("q-err ").skip(1) {
        let number: String = part
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(value) = number.parse::<f64>() {
            worst = worst.max(value);
        }
    }
    worst
}

fn main() -> ExitCode {
    header(
        "Join ordering",
        "DP-chosen join order vs worst left-deep order, same star query",
    );
    let baseline_path = std::env::args().nth(1);
    let session = star_session(scaled(40_000), scaled(400), scaled(400));

    let prepared = session.prepare(&query(&session)).expect("prepare DP plan");
    let registry = session.model_registry();
    let ctx = ExecContext {
        catalog: session.catalog(),
        registry: &registry,
        embeddings: session.embedding_caches(),
        indexes: session.index_manager(),
        pool: *cej_exec::ExecPool::global(),
    };
    // the worst order bypasses `prepare` (which would re-order it): rewrite
    // pushdowns don't apply — filters are already on the scans — so lowering
    // the raw tree prices exactly this order
    let planner = Planner::new(
        session.advisor(),
        JoinStrategy::Tensor(TensorJoinConfig::default()),
    );
    let worst_physical = planner
        .plan(
            &worst_left_deep(),
            session.catalog(),
            &registry,
            session.index_manager(),
        )
        .expect("plan worst order");

    // warm both paths once: embeddings memoise in the shared session cache,
    // so the timed runs compare join work, not model calls
    let dp_table = prepared.run().expect("dp run").table;
    let worst_table = worst_physical.execute(&ctx).expect("worst run").table;
    let dp_checksum = canonical_checksum(&dp_table);
    let worst_checksum = canonical_checksum(&worst_table);
    let identical = dp_checksum == worst_checksum && dp_table.num_rows() > 0;

    let dp_time = time_median(RUNS, || prepared.run().expect("dp run"));
    let worst_time = time_median(RUNS, || worst_physical.execute(&ctx).expect("worst run"));
    let speedup = worst_time.as_secs_f64() / dp_time.as_secs_f64();
    let analyzed = prepared.explain_analyze().expect("explain analyze");
    let qerror = max_qerror(&analyzed.text);

    println!("dp plan:\n{}", prepared.explain());
    println!(
        "rows {} | dp {} | worst {} | speedup {speedup:.2}x | max q-err {qerror:.2} | identical {}",
        dp_table.num_rows(),
        fmt_ms(dp_time),
        fmt_ms(worst_time),
        if identical { "yes" } else { "NO" },
    );

    let mut report = Report::new("ordering");
    report.push_elapsed("dp", dp_time);
    report.push_elapsed("worst_left_deep", worst_time);
    report.push_value("dp_speedup", speedup);
    report.push_value("dp_max_qerror", qerror);
    report.push_value("result_rows", dp_table.num_rows() as f64);
    report.push_value("identical", if identical { 1.0 } else { 0.0 });
    report.write_if_requested();

    let mut failed = false;
    if !identical {
        eprintln!(
            "ordering_gate: join orders disagree (dp {dp_checksum:016x} vs worst \
             {worst_checksum:016x}, {} rows) — failing",
            dp_table.num_rows()
        );
        failed = true;
    }
    let mut required = MIN_SPEEDUP;
    let mut qerror_bound = MAX_QERROR;
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Ok(baseline) => {
                if let Some(old) = extract_value(&baseline, "dp_speedup") {
                    required = required.max(old * MIN_FRACTION);
                }
                if let Some(old) = extract_value(&baseline, "dp_max_qerror") {
                    // estimates may not degrade materially vs the baseline
                    qerror_bound = qerror_bound.min((old * 1.5).max(2.0));
                }
            }
            Err(e) => {
                eprintln!("ordering_gate: cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if speedup < required {
        eprintln!("ordering_gate: speedup {speedup:.2}x below required {required:.2}x — failing");
        failed = true;
    } else {
        println!("speedup {speedup:.2}x >= {required:.2}x [ok]");
    }
    if qerror > qerror_bound {
        eprintln!("ordering_gate: max q-error {qerror:.2} above {qerror_bound:.2} — failing");
        failed = true;
    } else {
        println!("max q-error {qerror:.2} <= {qerror_bound:.2} [ok]");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("ordering_gate: DP ordering holds");
        ExitCode::SUCCESS
    }
}
