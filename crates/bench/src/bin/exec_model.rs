//! Row-at-a-time vs vectorized batch execution.
//!
//! Runs the same physical plans — a selective filtered scan (selectivity
//! ~0.1) and a tensor e-join over a filtered inner — under both
//! [`cej_core::ExecMode`]s and reports median wall-clock times, the
//! batch-over-row speedup per section, and whether the outputs stayed
//! byte-identical.  Exits non-zero when they did not: the speedup is a
//! performance signal, but identity is a correctness gate.
//!
//! With `CEJ_REPORT=<path>` the machine-readable summary the CI
//! `exec_model_gate` consumes is written as well.

use std::process::ExitCode;

use cej_bench::experiments;
use cej_bench::harness::{fmt_ms, header, print_table, scaled};
use cej_bench::report::Report;

fn main() -> ExitCode {
    header(
        "Exec model",
        "row-at-a-time vs vectorized batch execution, same plans",
    );
    let rows = experiments::exec_model(scaled(40_000), scaled(400), scaled(20_000));
    let mut report = Report::new("exec_model");
    let mut identical = true;
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let speedup = r.row_time.as_secs_f64() / r.batch_time.as_secs_f64();
            report.push_elapsed(&format!("{}_row", r.section), r.row_time);
            report.push_elapsed(&format!("{}_batch", r.section), r.batch_time);
            report.push_value(&format!("{}_speedup", r.section), speedup);
            identical &= r.identical;
            vec![
                r.section.clone(),
                fmt_ms(r.row_time),
                fmt_ms(r.batch_time),
                format!("{speedup:.2}x"),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    report.push_value("identical", if identical { 1.0 } else { 0.0 });
    print_table(
        &["section", "row", "batch", "speedup", "identical"],
        &printable,
    );
    report.write_if_requested();
    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("exec_model: batch output diverged from row output — failing");
        ExitCode::FAILURE
    }
}
