//! Figure 9: thread scalability of the optimised NLJ (SIMD vs NO-SIMD).

use cej_bench::experiments::{fig09_thread_scalability, DIM};
use cej_bench::harness::{fmt_ms, header, print_table, scaled};

fn main() {
    header(
        "Figure 9",
        "optimised NLJ scalability with threads (10k x 10k in the paper)",
    );
    let rows = fig09_thread_scalability(scaled(1_500), DIM, &[1, 2, 4, 8]);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(t, simd, no_simd)| vec![t.to_string(), fmt_ms(*simd), fmt_ms(*no_simd)])
        .collect();
    print_table(&["threads", "SIMD [ms]", "NO-SIMD [ms]"], &printable);
}
