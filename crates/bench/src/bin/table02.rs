//! Table II: semantic matching using the trained embedding model.

use cej_bench::experiments::table02_semantic_matches;
use cej_bench::harness::header;

fn main() {
    header(
        "Table II",
        "semantic matches of the trained FastText-style model (top-15)",
    );
    for (query, matches) in table02_semantic_matches(15) {
        println!("{query:<12} {}", matches.join(", "));
    }
}
