//! CI execution-model regression gate.
//!
//! Compares the batch-over-row speedups of a freshly produced
//! `exec_model.json` report against a checked-in baseline and exits
//! non-zero when either timed section shows the batch executor materially
//! slower than the row executor (speedup below the absolute floor) or a
//! large regression against the baseline's speedup.  Absolute times are
//! deliberately ignored — both executors run on the same machine in the
//! same process, so their *ratio* is what is stable on shared runners.
//! The report's `identical` flag must also hold: byte-identical results
//! are a correctness invariant, not a tunable.
//!
//! ```sh
//! exec_model_gate <current.json> <baseline.json> [min_fraction]
//! ```
//!
//! The baseline lives at `ci/exec_model_baseline.json`; refresh it by
//! running the bench at the CI scale and copying the report:
//! `CEJ_SCALE=0.05 CEJ_REPORT=ci/exec_model_baseline.json cargo run
//! --release -p cej-bench --bin exec_model`.

use std::process::ExitCode;

use cej_bench::report::extract_value;

const SPEEDUP_KEYS: [&str; 2] = ["filtered_scan_speedup", "tensor_join_speedup"];
/// The batch executor may never be materially slower than the row executor,
/// regardless of how permissive the baseline fraction is (0.9 leaves room
/// for timer noise at the tiny CI scale).
const MIN_SPEEDUP: f64 = 0.9;
/// Default fraction of the baseline speedup the current run must retain.
const DEFAULT_MIN_FRACTION: f64 = 0.5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match (args.first(), args.get(1)) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!("usage: exec_model_gate <current.json> <baseline.json> [min_fraction]");
            return ExitCode::FAILURE;
        }
    };
    let min_fraction: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MIN_FRACTION);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("exec_model_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    let identical = extract_value(&current, "identical");
    if identical == Some(1.0) {
        println!("identical: yes [ok]");
    } else {
        eprintln!("exec_model_gate: batch/row outputs not identical ({identical:?}) — failing");
        failed = true;
    }
    for key in SPEEDUP_KEYS {
        let (Some(new), Some(old)) = (extract_value(&current, key), extract_value(&baseline, key))
        else {
            eprintln!("exec_model_gate: key {key} missing from one of the reports");
            failed = true;
            continue;
        };
        let required = MIN_SPEEDUP.max(old * min_fraction);
        let verdict = if new < required { "FAIL" } else { "ok" };
        println!(
            "{key}: baseline {old:.2}x, current {new:.2}x, required >= {required:.2}x [{verdict}]"
        );
        if new < required {
            failed = true;
        }
    }
    if failed {
        eprintln!("exec_model_gate: batch execution regressed — failing");
        ExitCode::FAILURE
    } else {
        println!("exec_model_gate: within tolerance (fraction {min_fraction})");
        ExitCode::SUCCESS
    }
}
