//! Figure 8: impact of logical (prefetch) and physical (SIMD) optimisation on
//! the E-NLJ formulation.

use cej_bench::experiments::{fig08_nlj_logical_physical, DIM};
use cej_bench::harness::{fmt_ms, header, print_table, scaled};

fn main() {
    header(
        "Figure 8",
        "logical (prefetch) x physical (SIMD) optimisation of the E-NLJ",
    );
    // Paper sizes: 1k x 1k, 10k x 1k, 10k x 10k.  Scaled down because the
    // naive variant embeds |R|*|S| pairs.
    let sizes = [
        (scaled(200), scaled(200)),
        (scaled(400), scaled(200)),
        (scaled(400), scaled(400)),
    ];
    let rows = fig08_nlj_logical_physical(&sizes, DIM);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sizes.clone(),
                fmt_ms(r.naive_no_simd),
                fmt_ms(r.naive_simd),
                fmt_ms(r.prefetch_no_simd),
                fmt_ms(r.prefetch_simd),
                r.naive_model_calls.to_string(),
                r.prefetch_model_calls.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "|R| x |S|",
            "NO-SIMD [ms]",
            "SIMD [ms]",
            "Prefetch NO-SIMD [ms]",
            "Prefetch SIMD [ms]",
            "naive model calls",
            "prefetch model calls",
        ],
        &printable,
    );
}
