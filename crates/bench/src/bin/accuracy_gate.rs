//! CI planner-accuracy regression gate.
//!
//! Compares the `scan_qerr_median` of a freshly produced
//! `planner_accuracy.json` report against the checked-in baseline and exits
//! non-zero when it exceeds `min(baseline · max_ratio, 2.0)` — the ratio
//! (default 1.5) catches regressions relative to the baseline, and the
//! absolute 2.0 ceiling is the acceptance bar on filtered scans; both must
//! hold.  `advisor_agreement` must also not drop below the baseline by
//! more than 0.25 (one decision on the four-point smoke workload).
//!
//! ```sh
//! accuracy_gate <current.json> <baseline.json> [max_ratio]
//! ```
//!
//! The baseline lives at `ci/planner_accuracy_baseline.json`; refresh it
//! with `CEJ_SCALE=0.05 CEJ_REPORT=ci/planner_accuracy_baseline.json cargo
//! run --release -p cej-bench --bin planner_accuracy`.

use std::process::ExitCode;

const DEFAULT_MAX_RATIO: f64 = 1.5;
const ABSOLUTE_QERR_CEILING: f64 = 2.0;
const MAX_AGREEMENT_DROP: f64 = 0.25;

use cej_bench::report::extract_value as extract;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match (args.first(), args.get(1)) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!("usage: accuracy_gate <current.json> <baseline.json> [max_ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_RATIO);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("accuracy_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    match (
        extract(&current, "scan_qerr_median"),
        extract(&baseline, "scan_qerr_median"),
    ) {
        (Some(new), Some(old)) => {
            // the ratio guards against relative regressions, the ceiling is
            // the absolute acceptance bar — the stricter of the two applies
            let limit = (old * max_ratio).min(ABSOLUTE_QERR_CEILING);
            let verdict = if new > limit { "FAIL" } else { "ok" };
            println!(
                "scan_qerr_median: baseline {old:.4}, current {new:.4}, limit {limit:.4} [{verdict}]"
            );
            if new > limit {
                failed = true;
            }
        }
        _ => {
            eprintln!("accuracy_gate: scan_qerr_median missing from one of the reports");
            failed = true;
        }
    }

    match (
        extract(&current, "advisor_agreement"),
        extract(&baseline, "advisor_agreement"),
    ) {
        (Some(new), Some(old)) => {
            let drop = old - new;
            let verdict = if drop > MAX_AGREEMENT_DROP {
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "advisor_agreement: baseline {old:.2}, current {new:.2}, drop {drop:+.2} [{verdict}]"
            );
            if drop > MAX_AGREEMENT_DROP {
                failed = true;
            }
        }
        _ => {
            eprintln!("accuracy_gate: advisor_agreement missing from one of the reports");
            failed = true;
        }
    }

    if failed {
        eprintln!("accuracy_gate: planner accuracy regressed — failing");
        ExitCode::FAILURE
    } else {
        println!("accuracy_gate: within tolerance (ratio {max_ratio})");
        ExitCode::SUCCESS
    }
}
