//! The serving benchmark: closed-loop load generation against an
//! in-process `cej-server` at 1/2/4/8 concurrent clients.
//!
//! Reports QPS per client count, warm prepared-run p50/p95/p99, the
//! 4-vs-1-client scaling factor, admission-burst behaviour, and the folded
//! response checksum (byte-identical-results witness; identical across
//! `CEJ_THREADS` settings and client counts by construction).
//!
//! `CEJ_SCALE` scales the table cardinalities; `CEJ_REPORT=<path>` writes
//! the JSON artifact the CI serve-smoke job gates with `serve_gate`
//! against `ci/serve_baseline.json` (refresh: `CEJ_SCALE=0.05
//! CEJ_REPORT=ci/serve_baseline.json cargo run --release -p cej-bench
//! --bin serve_throughput`).

use cej_bench::harness::{header, print_table, scaled};
use cej_bench::report::Report;
use cej_bench::serve::{serve_table, serve_throughput};

/// Simulated remote-embedding round trip per *cold* model call (µs).  Ad-hoc
/// probe text is always cold, so every probe hides this much latency behind
/// concurrency — the serving regime of the paper's model-cost analysis.
const REMOTE_MODEL_US: u64 = 2_000;

fn main() {
    header(
        "Serving throughput",
        "closed-loop clients against a shared-session cej-server",
    );
    let outer = scaled(400).max(8);
    let inner = scaled(4_000).max(16);
    let ops_per_client = 40;
    let client_counts = [1usize, 2, 4, 8];
    println!(
        "tables: r={outer} rows, s={inner} rows; {ops_per_client} ops/client; \
         mix: 50% warm prepared RUN, 50% ad-hoc PROBE (remote model {REMOTE_MODEL_US} µs); \
         threads={}",
        cej_exec::default_threads()
    );

    let summary = serve_throughput(
        outer,
        inner,
        ops_per_client,
        REMOTE_MODEL_US,
        &client_counts,
    );

    print_table(
        &[
            "clients",
            "QPS",
            "warm p50 µs",
            "warm p95 µs",
            "warm p99 µs",
        ],
        &serve_table(&summary),
    );
    println!(
        "scaling 1→4 clients: {:.2}x; results checksum {:08x}; \
         admission burst: {} served / {} busy-rejected",
        summary.scaling_c4,
        summary.results_checksum,
        summary.admission_served,
        summary.admission_rejected
    );

    let mut report = Report::new("serve_throughput");
    report.push_value("threads", cej_exec::default_threads() as f64);
    report.push_value("remote_model_us", REMOTE_MODEL_US as f64);
    for phase in &summary.phases {
        let c = phase.clients;
        report.push_value(&format!("qps_c{c}"), phase.qps);
        report.push_value(&format!("warm_p50_us_c{c}"), phase.warm_p50_us as f64);
        report.push_value(&format!("warm_p95_us_c{c}"), phase.warm_p95_us as f64);
        report.push_value(&format!("warm_p99_us_c{c}"), phase.warm_p99_us as f64);
    }
    report.push_value("scaling_c4", summary.scaling_c4);
    report.push_value("results_checksum", f64::from(summary.results_checksum));
    report.push_value("admission_rejected", summary.admission_rejected as f64);
    report.push_value("admission_served", summary.admission_served as f64);
    report.write_if_requested();
}
