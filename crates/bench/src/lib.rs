//! # cej-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section VI).  Two kinds of targets live here:
//!
//! * **Experiment binaries** (`src/bin/fig08.rs` … `fig17.rs`, `table02.rs`,
//!   `costmodel.rs`): each regenerates one table or figure of the paper,
//!   printing the same rows / series the paper reports.  Input sizes are
//!   scaled down from the paper's server-scale runs (documented per
//!   experiment in `EXPERIMENTS.md`); set the `CEJ_SCALE` environment
//!   variable to grow or shrink them (`CEJ_SCALE=2` doubles cardinalities).
//! * **Criterion micro-benchmarks** (`benches/`): kernel-level ablations
//!   (SIMD vs scalar dot products, tiled GEMM, NLJ vs tensor join, index
//!   probes, embedding throughput) used to sanity-check the figure-level
//!   results.
//!
//! The [`harness`] module provides the shared timing and reporting helpers;
//! [`experiments`] provides the parameterised experiment bodies shared by
//! related figures (e.g. Figures 15-17 all call
//! [`experiments::scan_vs_probe`]); [`report`] emits the machine-readable
//! JSON summaries the CI bench-smoke job archives (`CEJ_REPORT=<path>`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod accuracy;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod serve;
