//! Parameterised experiment bodies shared by the per-figure binaries.
//!
//! Each function reproduces the measurement loop of one (or one family of)
//! paper experiments and returns printable rows; the binaries only choose
//! parameters and print.  Keeping the bodies here also lets the integration
//! tests smoke-test every experiment at a tiny scale.

use std::time::Duration;

use cej_core::{
    CostModel, IndexJoin, IndexJoinConfig, NljConfig, PrefetchNlJoin, TensorJoin, TensorJoinConfig,
};
use cej_embedding::{
    train_on_corpus, CachedEmbedder, Embedder, FastTextConfig, FastTextModel, TrainingConfig,
};
use cej_index::HnswParams;
use cej_relational::SimilarityPredicate;
use cej_storage::SelectionBitmap;
use cej_vector::{BufferBudget, Kernel, Matrix};
use cej_workload::{uniform_matrix, CorpusGenerator, WordGenerator};

use crate::harness::{fmt_ms, fmt_ns_per, time_once};

/// Default embedding dimensionality used by the experiments (the paper's
/// 100-D FastText embeddings).
pub const DIM: usize = 100;

fn words(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}word{i}")).collect()
}

/// A deterministic "uniform [0, 100)" attribute used as the selectivity
/// control column (replaces an RNG so binaries need no rand dependency).
fn filter_value(i: usize) -> usize {
    (i.wrapping_mul(37) + 11) % 100
}

/// Builds the selectivity bitmap `filter < selectivity_percent` over `n` rows.
pub fn selectivity_bitmap(n: usize, selectivity_percent: usize) -> SelectionBitmap {
    SelectionBitmap::from_bools(
        (0..n)
            .map(|i| filter_value(i) < selectivity_percent)
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Table II — semantic matching with the trained embedding model
// ---------------------------------------------------------------------------

/// Trains a model on the synthetic synonym-cluster corpus and returns, for
/// each query word, its top-`k` nearest vocabulary words — the reproduction
/// of Table II.
pub fn table02_semantic_matches(k: usize) -> Vec<(String, Vec<String>)> {
    let mut generator = WordGenerator::new(42);
    let clusters = generator.clusters(10, 8);
    let corpus = CorpusGenerator::new(7)
        .with_noise(0.05)
        .generate(&clusters, 600);
    let mut model = FastTextModel::new(FastTextConfig {
        dim: DIM,
        buckets: 100_000,
        ..FastTextConfig::default()
    })
    .expect("valid config");
    train_on_corpus(&mut model, &corpus, &TrainingConfig::default()).expect("training succeeds");

    ["database", "postgres", "clothes", "barbecue"]
        .iter()
        .map(|query| {
            let matches = model
                .nearest_words(query, k)
                .into_iter()
                .map(|(w, _)| w)
                .collect::<Vec<_>>();
            (query.to_string(), matches)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 — logical (prefetch) × physical (SIMD) optimisation of the E-NLJ
// ---------------------------------------------------------------------------

/// One Figure 8 measurement row.
#[derive(Debug, Clone)]
pub struct Fig08Row {
    /// `|R| x |S|` label.
    pub sizes: String,
    /// Naive (per-pair embedding) join, scalar kernel.
    pub naive_no_simd: Duration,
    /// Naive join, unrolled kernel.
    pub naive_simd: Duration,
    /// Prefetch join, scalar kernel.
    pub prefetch_no_simd: Duration,
    /// Prefetch join, unrolled kernel.
    pub prefetch_simd: Duration,
    /// Model calls of the naive formulation.
    pub naive_model_calls: u64,
    /// Model calls of the prefetch formulation.
    pub prefetch_model_calls: u64,
}

/// Naive E-NLJ with a selectable kernel: embeds *inside* the pair loop.
fn naive_nlj_with_kernel(
    model: &dyn Embedder,
    left: &[String],
    right: &[String],
    threshold: f32,
    kernel: Kernel,
) -> usize {
    let mut matches = 0usize;
    for l in left {
        for r in right {
            let lv = model.embed(l);
            let rv = model.embed(r);
            let denom = kernel.l2_norm(lv.as_slice()) * kernel.l2_norm(rv.as_slice());
            let score = if denom > 0.0 {
                kernel.dot(lv.as_slice(), rv.as_slice()) / denom
            } else {
                0.0
            };
            if score >= threshold {
                matches += 1;
            }
        }
    }
    matches
}

/// Runs the Figure 8 experiment for the given `(|R|, |S|)` size pairs.
pub fn fig08_nlj_logical_physical(sizes: &[(usize, usize)], dim: usize) -> Vec<Fig08Row> {
    let threshold = 0.95;
    sizes
        .iter()
        .map(|&(r, s)| {
            let model = FastTextModel::new(FastTextConfig {
                dim,
                buckets: 20_000,
                ..FastTextConfig::default()
            })
            .expect("valid config");
            let left = words(r, "l");
            let right = words(s, "r");

            let counted = CachedEmbedder::uncached(
                FastTextModel::new(FastTextConfig {
                    dim,
                    buckets: 20_000,
                    ..FastTextConfig::default()
                })
                .expect("valid config"),
            );
            let (_, naive_no_simd) = time_once(|| {
                naive_nlj_with_kernel(&counted, &left, &right, threshold, Kernel::Scalar)
            });
            let naive_model_calls = counted.stats().model_calls;
            counted.reset_stats();
            let (_, naive_simd) = time_once(|| {
                naive_nlj_with_kernel(&counted, &left, &right, threshold, Kernel::Unrolled)
            });

            let prefetch_scalar =
                PrefetchNlJoin::new(NljConfig::default().with_kernel(Kernel::Scalar));
            let prefetch_simd_op = PrefetchNlJoin::new(NljConfig::default());
            let cached = CachedEmbedder::new(
                FastTextModel::new(FastTextConfig {
                    dim,
                    buckets: 20_000,
                    ..FastTextConfig::default()
                })
                .expect("valid config"),
            );
            let (_, prefetch_no_simd) = time_once(|| {
                prefetch_scalar
                    .join(
                        &cached,
                        &left,
                        &right,
                        SimilarityPredicate::Threshold(threshold),
                    )
                    .expect("join succeeds")
            });
            let prefetch_model_calls = cached.stats().model_calls;
            let (_, prefetch_simd) = time_once(|| {
                prefetch_simd_op
                    .join(
                        &model,
                        &left,
                        &right,
                        SimilarityPredicate::Threshold(threshold),
                    )
                    .expect("join succeeds")
            });

            Fig08Row {
                sizes: format!("{r} x {s}"),
                naive_no_simd,
                naive_simd,
                prefetch_no_simd,
                prefetch_simd,
                naive_model_calls,
                prefetch_model_calls,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9 — thread scalability of the optimised NLJ
// ---------------------------------------------------------------------------

/// Runs the Figure 9 experiment: optimised NLJ over `rows x rows` inputs for
/// every thread count, with both kernels.  Returns `(threads, simd, no_simd)`.
pub fn fig09_thread_scalability(
    rows: usize,
    dim: usize,
    threads: &[usize],
) -> Vec<(usize, Duration, Duration)> {
    let left = uniform_matrix(rows, dim, 1, true);
    let right = uniform_matrix(rows, dim, 2, true);
    let predicate = SimilarityPredicate::Threshold(0.9);
    threads
        .iter()
        .map(|&t| {
            let simd_op = PrefetchNlJoin::new(NljConfig::default().with_threads(t));
            let scalar_op = PrefetchNlJoin::new(
                NljConfig::default()
                    .with_threads(t)
                    .with_kernel(Kernel::Scalar),
            );
            let (_, simd) = time_once(|| simd_op.join_matrices(&left, &right, predicate).unwrap());
            let (_, no_simd) =
                time_once(|| scalar_op.join_matrices(&left, &right, predicate).unwrap());
            (t, simd, no_simd)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10 — optimised NLJ across input-size combinations
// ---------------------------------------------------------------------------

/// Runs the Figure 10 experiment: for each `(|R|, |S|)` pair report the
/// optimised NLJ time with the loop-order heuristic on and off, plus the
/// number of pair comparisons (the "operations" grouping of the figure).
pub fn fig10_input_sizes(
    sizes: &[(usize, usize)],
    dim: usize,
    threads: usize,
) -> Vec<(String, u64, Duration, Duration)> {
    sizes
        .iter()
        .map(|&(r, s)| {
            let left = uniform_matrix(r, dim, 3, true);
            let right = uniform_matrix(s, dim, 4, true);
            let predicate = SimilarityPredicate::Threshold(0.9);
            let with_heuristic = PrefetchNlJoin::new(NljConfig::default().with_threads(threads));
            let without_heuristic = PrefetchNlJoin::new(
                NljConfig::default()
                    .with_threads(threads)
                    .without_loop_order_heuristic(),
            );
            let (_, ordered) = time_once(|| {
                with_heuristic
                    .join_matrices(&left, &right, predicate)
                    .unwrap()
            });
            let (_, unordered) = time_once(|| {
                without_heuristic
                    .join_matrices(&left, &right, predicate)
                    .unwrap()
            });
            (
                format!("{r} x {s}"),
                (r as u64) * (s as u64),
                ordered,
                unordered,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 11 & 12 — per-element cost: NLJ vs tensor, batched vs non-batched
// ---------------------------------------------------------------------------

/// One row of the per-element experiments: total FP32 ops, vector width, and
/// the nanoseconds-per-element of the two compared strategies.
#[derive(Debug, Clone)]
pub struct PerElementRow {
    /// Total number of FP32 values processed per relation (`tuples · dim`).
    pub fp32_ops: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Tuples per input relation.
    pub tuples: usize,
    /// ns/element of the first strategy.
    pub first_ns: String,
    /// ns/element of the second strategy.
    pub second_ns: String,
}

fn tuples_for(fp32_ops: usize, dim: usize) -> usize {
    (((fp32_ops / dim.max(1)) as f64).sqrt().round() as usize).max(1)
}

/// Figure 11: vectorised NLJ vs the tensor formulation.
pub fn fig11_nlj_vs_tensor(fp32_ops: &[usize], dims: &[usize]) -> Vec<PerElementRow> {
    per_element_experiment(fp32_ops, dims, |left, right| {
        let nlj = PrefetchNlJoin::new(NljConfig::default());
        let tensor = TensorJoin::new(TensorJoinConfig::default());
        let predicate = SimilarityPredicate::Threshold(0.99);
        let (_, a) = time_once(|| nlj.join_matrices(left, right, predicate).unwrap());
        let (_, b) = time_once(|| tensor.join_matrices(left, right, predicate).unwrap());
        (a, b)
    })
}

/// Figure 12: fully-batched vs non-batched tensor formulation.
pub fn fig12_batched_vs_non_batched(fp32_ops: &[usize], dims: &[usize]) -> Vec<PerElementRow> {
    per_element_experiment(fp32_ops, dims, |left, right| {
        let batched = TensorJoin::new(TensorJoinConfig::default());
        let non_batched = TensorJoin::new(TensorJoinConfig::default().without_inner_batching());
        let predicate = SimilarityPredicate::Threshold(0.99);
        let (_, a) = time_once(|| batched.join_matrices(left, right, predicate).unwrap());
        let (_, b) = time_once(|| non_batched.join_matrices(left, right, predicate).unwrap());
        (a, b)
    })
}

fn per_element_experiment(
    fp32_ops: &[usize],
    dims: &[usize],
    mut run: impl FnMut(&Matrix, &Matrix) -> (Duration, Duration),
) -> Vec<PerElementRow> {
    let mut rows = Vec::new();
    for &ops in fp32_ops {
        for &dim in dims {
            let tuples = tuples_for(ops, dim);
            let left = uniform_matrix(tuples, dim, 5, true);
            let right = uniform_matrix(tuples, dim, 6, true);
            let (first, second) = run(&left, &right);
            let elements = tuples * dim;
            rows.push(PerElementRow {
                fp32_ops: ops,
                dim,
                tuples,
                first_ns: fmt_ns_per(first, elements),
                second_ns: fmt_ns_per(second, elements),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 13 — mini-batch size vs memory and slowdown
// ---------------------------------------------------------------------------

/// One Figure 13 row: batch label, relative slowdown, relative RAM reduction.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// `outer x inner` mini-batch shape label.
    pub batch: String,
    /// Execution time relative to the un-batched run (1.0 = equal).
    pub relative_slowdown: f64,
    /// Intermediate-state memory reduction factor vs the un-batched run.
    pub ram_reduction: f64,
}

/// Runs the Figure 13 experiment on an `n x n` self-join with the given
/// mini-batch shapes (tuples per side).
pub fn fig13_batch_size_impact(n: usize, dim: usize, batches: &[(usize, usize)]) -> Vec<Fig13Row> {
    let left = uniform_matrix(n, dim, 7, true);
    let right = uniform_matrix(n, dim, 8, true);
    let predicate = SimilarityPredicate::Threshold(0.95);
    let unbatched =
        TensorJoin::new(TensorJoinConfig::default().with_budget(BufferBudget::unlimited()));
    let (base_result, base_time) =
        time_once(|| unbatched.join_matrices(&left, &right, predicate).unwrap());
    let base_block_bytes =
        (base_result.stats.peak_buffer_bytes - left.bytes() - right.bytes()).max(1);

    let mut rows = vec![Fig13Row {
        batch: format!("{n} x {n} (No Batch)"),
        relative_slowdown: 1.0,
        ram_reduction: 1.0,
    }];
    for &(outer, inner) in batches {
        let budget = BufferBudget::from_bytes(outer * inner * std::mem::size_of::<f32>());
        let op = TensorJoin::new(TensorJoinConfig::default().with_budget(budget));
        let (result, elapsed) = time_once(|| op.join_matrices(&left, &right, predicate).unwrap());
        let block_bytes = (result.stats.peak_buffer_bytes - left.bytes() - right.bytes()).max(1);
        rows.push(Fig13Row {
            batch: format!("{outer} x {inner}"),
            relative_slowdown: elapsed.as_secs_f64() / base_time.as_secs_f64(),
            ram_reduction: base_block_bytes as f64 / block_bytes as f64,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 14 — tensor join vs optimised NLJ end-to-end
// ---------------------------------------------------------------------------

/// Runs the Figure 14 experiment: end-to-end tensor join vs optimised NLJ for
/// each `(|R|, |S|)` pair.  Returns `(label, tensor, nlj)`.
pub fn fig14_tensor_vs_nlj(
    sizes: &[(usize, usize)],
    dim: usize,
    threads: usize,
) -> Vec<(String, Duration, Duration)> {
    sizes
        .iter()
        .map(|&(r, s)| {
            let left = uniform_matrix(r, dim, 9, true);
            let right = uniform_matrix(s, dim, 10, true);
            let predicate = SimilarityPredicate::Threshold(0.95);
            let tensor = TensorJoin::new(TensorJoinConfig::default().with_threads(threads));
            let nlj = PrefetchNlJoin::new(NljConfig::default().with_threads(threads));
            let (_, tensor_time) =
                time_once(|| tensor.join_matrices(&left, &right, predicate).unwrap());
            let (_, nlj_time) = time_once(|| nlj.join_matrices(&left, &right, predicate).unwrap());
            (format!("{r} x {s}"), tensor_time, nlj_time)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 15-17 — scan vs probe under relational selectivity
// ---------------------------------------------------------------------------

/// One selectivity point of the scan-vs-probe experiments.
#[derive(Debug, Clone)]
pub struct ScanVsProbeRow {
    /// Selectivity in percent.
    pub selectivity: usize,
    /// Tensor join including the pre-filtering cost.
    pub tensor: Duration,
    /// Tensor join with the filtering cost excluded (the paper's
    /// "Tensor Join (-filter cost)" series).
    pub tensor_minus_filter: Duration,
    /// Index join with the low-recall configuration.
    pub index_lo: Duration,
    /// Index join with the high-recall configuration.
    pub index_hi: Duration,
}

/// Runs the scan-vs-probe experiment shared by Figures 15 (`TopK(1)`),
/// 16 (`TopK(32)`), and 17 (`Threshold(0.9)`).
pub fn scan_vs_probe(
    outer_rows: usize,
    inner_rows: usize,
    dim: usize,
    predicate: SimilarityPredicate,
    selectivities: &[usize],
    hnsw_scale_down: bool,
) -> Vec<ScanVsProbeRow> {
    let inner = uniform_matrix(inner_rows, dim, 11, true);
    let outer = uniform_matrix(outer_rows, dim, 12, true);

    // Scaled-down HNSW parameters keep index build times tolerable on one
    // core while preserving the Hi > Lo cost ordering.
    let (lo_params, hi_params) = if hnsw_scale_down {
        (
            HnswParams {
                m: 16,
                m0: 32,
                ef_construction: 64,
                ef_search: 48,
                ..HnswParams::low_recall()
            },
            HnswParams {
                m: 32,
                m0: 64,
                ef_construction: 128,
                ef_search: 96,
                ..HnswParams::high_recall()
            },
        )
    } else {
        (HnswParams::low_recall(), HnswParams::high_recall())
    };
    let k = match predicate {
        SimilarityPredicate::TopK(k) => k,
        SimilarityPredicate::Threshold(_) => 32,
    };
    let lo_join = IndexJoin::new(IndexJoinConfig {
        params: lo_params,
        range_probe_k: k,
    });
    let hi_join = IndexJoin::new(IndexJoinConfig {
        params: hi_params,
        range_probe_k: k,
    });
    let lo_index = lo_join.build_index(&inner).expect("index build");
    let hi_index = hi_join.build_index(&inner).expect("index build");
    let tensor = TensorJoin::new(TensorJoinConfig::default());

    selectivities
        .iter()
        .map(|&sel| {
            let bitmap = selectivity_bitmap(inner_rows, sel);

            let (_, tensor_time) = time_once(|| {
                tensor
                    .join_matrices_filtered(&outer, &inner, predicate, None, Some(&bitmap))
                    .unwrap()
            });
            // "-filter cost": the inner relation is compacted before timing.
            let compacted = {
                let mut m = Matrix::zeros(0, dim);
                for i in bitmap.iter_selected() {
                    m.push_row(inner.row(i).unwrap()).unwrap();
                }
                m
            };
            let (_, tensor_minus_filter) = time_once(|| {
                if compacted.rows() > 0 {
                    tensor.join_matrices(&outer, &compacted, predicate).unwrap()
                } else {
                    Default::default()
                }
            });
            let (_, lo) = time_once(|| {
                lo_join
                    .probe_join(&outer, &lo_index, predicate, None, Some(&bitmap))
                    .unwrap()
            });
            let (_, hi) = time_once(|| {
                hi_join
                    .probe_join(&outer, &hi_index, predicate, None, Some(&bitmap))
                    .unwrap()
            });
            ScanVsProbeRow {
                selectivity: sel,
                tensor: tensor_time,
                tensor_minus_filter,
                index_lo: lo,
                index_hi: hi,
            }
        })
        .collect()
}

/// Formats a [`ScanVsProbeRow`] list into printable table rows.
pub fn scan_vs_probe_rows(rows: &[ScanVsProbeRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{}%", r.selectivity),
                fmt_ms(r.tensor),
                fmt_ms(r.tensor_minus_filter),
                fmt_ms(r.index_lo),
                fmt_ms(r.index_hi),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Cost-model validation (Section IV)
// ---------------------------------------------------------------------------

/// Returns `(label, naive model calls, prefetch model calls, predicted naive
/// cost, predicted prefetch cost)` rows validating the cost formulas against
/// the operators' measured counters.
pub fn costmodel_validation(sizes: &[(usize, usize)]) -> Vec<(String, u64, u64, f64, f64)> {
    let cost = CostModel::default();
    sizes
        .iter()
        .map(|&(r, s)| {
            let model = FastTextModel::new(FastTextConfig {
                dim: 32,
                buckets: 5_000,
                ..FastTextConfig::default()
            })
            .expect("valid config");
            let left = words(r, "l");
            let right = words(s, "r");
            let uncached = CachedEmbedder::uncached(
                FastTextModel::new(FastTextConfig {
                    dim: 32,
                    buckets: 5_000,
                    ..FastTextConfig::default()
                })
                .expect("valid config"),
            );
            cej_core::NaiveNlJoin::new()
                .join(
                    &uncached,
                    &left,
                    &right,
                    SimilarityPredicate::Threshold(0.99),
                )
                .expect("join succeeds");
            let cached = CachedEmbedder::new(model);
            TensorJoin::new(TensorJoinConfig::default())
                .join(&cached, &left, &right, SimilarityPredicate::Threshold(0.99))
                .expect("join succeeds");
            (
                format!("{r} x {s}"),
                uncached.stats().model_calls,
                cached.stats().model_calls,
                cost.e_nlj_naive(r, s),
                cost.e_nlj_prefetch(r, s),
            )
        })
        .collect()
}

/// One section of the row-vs-batch execution-model comparison.
pub struct ExecModelRow {
    /// Section identifier (`filtered_scan`, `tensor_join`) — doubles as the
    /// report-key prefix.
    pub section: String,
    /// Median wall-clock time of the row-at-a-time executor.
    pub row_time: Duration,
    /// Median wall-clock time of the vectorized batch executor.
    pub batch_time: Duration,
    /// Whether the two executors produced byte-identical output (table and
    /// per-operator row actuals).
    pub identical: bool,
}

/// Row-at-a-time vs vectorized batch execution over the same physical
/// plans: a selective filtered scan (where the row executor pays a full
/// table materialisation per operator) and a tensor e-join over a filtered
/// inner (the paper's scan-side workhorse), both run warm so the comparison
/// isolates executor overhead from model calls.
pub fn exec_model(scan_rows: usize, outer_rows: usize, inner_rows: usize) -> Vec<ExecModelRow> {
    use cej_core::{ContextJoinSession, ExecContext, ExecMode, JoinStrategy};
    use cej_relational::{col, lit_i64, LogicalPlan};
    use cej_workload::{JoinWorkload, RelationSpec};

    let workload = JoinWorkload::generate(
        RelationSpec::with_rows(scan_rows.max(outer_rows)),
        RelationSpec::with_rows(inner_rows),
        23,
    );
    let mut session = ContextJoinSession::new();
    session.register_table("big", workload.outer.clone());
    session.register_table("r", {
        let sel: Vec<u32> = (0..outer_rows.min(workload.outer.num_rows()) as u32).collect();
        workload.outer.gather(&sel).expect("prefix gather")
    });
    session.register_table("s", workload.inner.clone());
    session.register_model(
        "ft",
        FastTextModel::new(FastTextConfig {
            dim: 32,
            buckets: 5_000,
            ..FastTextConfig::default()
        })
        .expect("valid config"),
    );
    session.with_strategy(JoinStrategy::Tensor(TensorJoinConfig::default()));

    // `filter` is uniform over [0, 100): `filter < 10` keeps ~10 % of rows.
    let scan_plan = LogicalPlan::scan("big")
        .select(col("filter").lt(lit_i64(10)))
        .project(&["id", "word"]);
    let join_plan = LogicalPlan::e_join(
        LogicalPlan::scan("r"),
        LogicalPlan::scan("s").select(col("filter").lt(lit_i64(10))),
        "word",
        "word",
        "ft",
        SimilarityPredicate::Threshold(0.4),
    );

    let registry = session.model_registry();
    let ctx = ExecContext {
        catalog: session.catalog(),
        registry: &registry,
        embeddings: session.embedding_caches(),
        indexes: session.index_manager(),
        pool: *cej_exec::ExecPool::global(),
    };
    let runs = 5;
    [("filtered_scan", scan_plan), ("tensor_join", join_plan)]
        .into_iter()
        .map(|(section, plan)| {
            let prepared = session.prepare(&plan).expect("prepare");
            let physical = prepared.physical_plan();
            // Warm run per mode: populates the embedding cache and checks
            // byte-identity of tables and per-operator actuals.
            let row = physical
                .execute_with(&ctx, ExecMode::Row)
                .expect("row execution");
            let batch = physical
                .execute_with(&ctx, ExecMode::default())
                .expect("batch execution");
            let identical = row.table == batch.table && row.operator_rows == batch.operator_rows;
            let row_time = crate::harness::time_median(runs, || {
                physical
                    .execute_with(&ctx, ExecMode::Row)
                    .expect("row execution")
            });
            let batch_time = crate::harness::time_median(runs, || {
                physical
                    .execute_with(&ctx, ExecMode::default())
                    .expect("batch execution")
            });
            ExecModelRow {
                section: section.to_string(),
                row_time,
                batch_time,
                identical,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_bitmap_is_roughly_uniform() {
        let b = selectivity_bitmap(10_000, 30);
        let frac = b.selectivity();
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
        assert_eq!(selectivity_bitmap(100, 0).count_selected(), 0);
        assert_eq!(selectivity_bitmap(100, 100).count_selected(), 100);
    }

    #[test]
    fn exec_model_smoke() {
        let rows = exec_model(200, 8, 40);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.identical,
                "section {}: batch output diverged from row output",
                r.section
            );
        }
    }

    #[test]
    fn tuples_for_inverts_fp32_budget() {
        assert_eq!(tuples_for(25_600, 1), 160);
        assert_eq!(tuples_for(25_600, 256), 10);
        assert!(tuples_for(10, 100) >= 1);
    }

    #[test]
    fn table02_returns_matches_for_every_query() {
        let rows = table02_semantic_matches(5);
        assert_eq!(rows.len(), 4);
        for (query, matches) in rows {
            assert_eq!(matches.len(), 5, "query {query} should have 5 matches");
        }
    }

    #[test]
    fn fig08_rows_show_model_call_gap() {
        let rows = fig08_nlj_logical_physical(&[(4, 4)], 16);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].naive_model_calls > rows[0].prefetch_model_calls);
    }

    #[test]
    fn fig09_and_fig10_smoke() {
        let scal = fig09_thread_scalability(16, 8, &[1, 2]);
        assert_eq!(scal.len(), 2);
        let sizes = fig10_input_sizes(&[(8, 16), (16, 8)], 8, 1);
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[0].1, 128);
    }

    #[test]
    fn fig11_to_fig14_smoke() {
        let rows = fig11_nlj_vs_tensor(&[256], &[4, 16]);
        assert_eq!(rows.len(), 2);
        let rows = fig12_batched_vs_non_batched(&[256], &[4]);
        assert_eq!(rows.len(), 1);
        let rows = fig13_batch_size_impact(32, 8, &[(8, 8), (16, 16)]);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].ram_reduction >= 1.0);
        let rows = fig14_tensor_vs_nlj(&[(16, 16)], 8, 1);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn scan_vs_probe_smoke() {
        let rows = scan_vs_probe(8, 200, 16, SimilarityPredicate::TopK(1), &[10, 100], true);
        assert_eq!(rows.len(), 2);
        let printable = scan_vs_probe_rows(&rows);
        assert_eq!(printable[0].len(), 5);
    }

    #[test]
    fn costmodel_validation_counts() {
        let rows = costmodel_validation(&[(3, 5)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 2 * 15);
        assert_eq!(rows[0].2, 8);
        assert!(rows[0].3 > rows[0].4);
    }
}
