//! Criterion micro-benchmarks for the blocked similarity-matrix kernel:
//! tile-size ablation and kernel choice (the physical design choices behind
//! the tensor join).

use std::time::Duration;

use cej_vector::{gemm::similarity_matrix, GemmConfig, Kernel};
use cej_workload::uniform_matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_gemm(c: &mut Criterion) {
    let a = uniform_matrix(256, 100, 1, true);
    let b = uniform_matrix(256, 100, 2, true);

    let mut group = c.benchmark_group("gemm_tile_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for tile in [8usize, 32, 64, 128] {
        let cfg = GemmConfig::default().tiles(tile, tile);
        group.bench_with_input(BenchmarkId::new("tile", tile), &tile, |bencher, _| {
            bencher.iter(|| similarity_matrix(&a, &b, &cfg).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gemm_kernel_choice");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for (name, kernel) in [("scalar", Kernel::Scalar), ("unrolled", Kernel::Unrolled)] {
        let cfg = GemmConfig::with_kernel(kernel);
        group.bench_function(name, |bencher| {
            bencher.iter(|| similarity_matrix(&a, &b, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
