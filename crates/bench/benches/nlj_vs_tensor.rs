//! Criterion benchmark comparing the three scan-based join formulations on
//! the same embedded inputs: the micro-scale counterpart of Figures 11 / 14,
//! plus the mini-batching ablation of Figure 13.

use std::time::Duration;

use cej_core::{NljConfig, PrefetchNlJoin, TensorJoin, TensorJoinConfig};
use cej_relational::SimilarityPredicate;
use cej_vector::{BufferBudget, Kernel};
use cej_workload::uniform_matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_join_formulations(c: &mut Criterion) {
    let left = uniform_matrix(512, 100, 1, true);
    let right = uniform_matrix(512, 100, 2, true);
    let predicate = SimilarityPredicate::Threshold(0.95);

    let mut group = c.benchmark_group("join_formulations_512x512_100d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("nlj_scalar", |b| {
        let op = PrefetchNlJoin::new(NljConfig::default().with_kernel(Kernel::Scalar));
        b.iter(|| op.join_matrices(&left, &right, predicate).unwrap())
    });
    group.bench_function("nlj_simd", |b| {
        let op = PrefetchNlJoin::new(NljConfig::default());
        b.iter(|| op.join_matrices(&left, &right, predicate).unwrap())
    });
    group.bench_function("tensor", |b| {
        let op = TensorJoin::new(TensorJoinConfig::default());
        b.iter(|| op.join_matrices(&left, &right, predicate).unwrap())
    });
    group.bench_function("tensor_non_batched", |b| {
        let op = TensorJoin::new(TensorJoinConfig::default().without_inner_batching());
        b.iter(|| op.join_matrices(&left, &right, predicate).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("tensor_buffer_budget_512x512");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for budget_kib in [16usize, 64, 256, 1024] {
        let op = TensorJoin::new(
            TensorJoinConfig::default().with_budget(BufferBudget::from_bytes(budget_kib * 1024)),
        );
        group.bench_with_input(
            BenchmarkId::new("budget_kib", budget_kib),
            &budget_kib,
            |b, _| b.iter(|| op.join_matrices(&left, &right, predicate).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_join_formulations);
criterion_main!(benches);
