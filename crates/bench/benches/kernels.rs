//! Criterion micro-benchmarks for the scalar vs unrolled (SIMD) kernels —
//! the building block behind the paper's SIMD / NO-SIMD axis.

use std::time::Duration;

use cej_vector::kernels::{dot_scalar, dot_unrolled, l2_norm_scalar, l2_norm_unrolled};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_product_kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    for dim in [16usize, 100, 256, 1024] {
        let a = random_vec(dim, 1);
        let b = random_vec(dim, 2);
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |bencher, _| {
            bencher.iter(|| dot_scalar(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("unrolled", dim), &dim, |bencher, _| {
            bencher.iter(|| dot_unrolled(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("norm_kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(200));
    let v = random_vec(100, 3);
    group.bench_function("l2_scalar_100d", |bencher| {
        bencher.iter(|| l2_norm_scalar(std::hint::black_box(&v)))
    });
    group.bench_function("l2_unrolled_100d", |bencher| {
        bencher.iter(|| l2_norm_unrolled(std::hint::black_box(&v)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
