//! Criterion benchmark for the embedding model: per-call cost of the subword
//! model (the `M` term of the cost model) and the benefit of caching — the
//! micro-scale counterpart of the Figure 8 logical optimisation.

use std::time::Duration;

use cej_embedding::{CachedEmbedder, Embedder, FastTextConfig, FastTextModel};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_embedding(c: &mut Criterion) {
    let model = FastTextModel::new(FastTextConfig {
        dim: 100,
        ..FastTextConfig::default()
    })
    .unwrap();
    let words: Vec<String> = (0..64).map(|i| format!("benchmarkword{i}")).collect();

    let mut group = c.benchmark_group("embedding_model");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("embed_single_word_100d", |b| {
        b.iter(|| model.embed(std::hint::black_box("barbecue")))
    });
    group.bench_function("embed_batch_64_words", |b| {
        b.iter(|| model.embed_batch(&words))
    });
    group.bench_function("embed_64_words_uncached", |b| {
        let uncached = CachedEmbedder::uncached(
            FastTextModel::new(FastTextConfig {
                dim: 100,
                ..FastTextConfig::default()
            })
            .unwrap(),
        );
        b.iter(|| {
            for w in &words {
                uncached.embed(w);
            }
        })
    });
    group.bench_function("embed_64_words_cached", |b| {
        let cached = CachedEmbedder::new(
            FastTextModel::new(FastTextConfig {
                dim: 100,
                ..FastTextConfig::default()
            })
            .unwrap(),
        );
        b.iter(|| {
            for w in &words {
                cached.embed(w);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
