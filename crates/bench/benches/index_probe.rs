//! Criterion benchmark for HNSW probes vs exhaustive scans of the same data:
//! the per-probe cost side of the access-path decision (Figures 15-16).

use std::time::Duration;

use cej_index::{BruteForce, HnswIndex, HnswParams};
use cej_vector::Metric;
use cej_workload::clustered_matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_index_probe(c: &mut Criterion) {
    let (vectors, _) = clustered_matrix(8_000, 64, 32, 0.05, 1);
    let queries = vectors.row_slice(0, 16).unwrap();
    let params = HnswParams {
        m: 16,
        m0: 32,
        ef_construction: 64,
        ef_search: 64,
        ..HnswParams::low_recall()
    };
    let index = HnswIndex::build(vectors.clone(), params).unwrap();
    let brute = BruteForce::new(vectors.clone(), Metric::Cosine);

    let mut group = c.benchmark_group("probe_vs_scan_8k_64d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for k in [1usize, 32] {
        group.bench_with_input(BenchmarkId::new("hnsw_probe", k), &k, |b, &k| {
            b.iter(|| {
                for q in 0..queries.rows() {
                    index.search(queries.row(q).unwrap(), k, None).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_scan", k), &k, |b, &k| {
            b.iter(|| {
                for q in 0..queries.rows() {
                    brute.search(queries.row(q).unwrap(), k, None).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_probe);
criterion_main!(benches);
