//! Error type for the relational layer.

use std::fmt;

use cej_storage::StorageError;

/// Errors raised by expression evaluation, planning, and optimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationalError {
    /// An underlying storage error.
    Storage(StorageError),
    /// An expression referenced a column that does not exist.
    UnknownColumn(String),
    /// An unqualified column reference (or a join output) is ambiguous
    /// because two joined inputs produce the same column name.
    AmbiguousColumn(String),
    /// An expression combined incompatible types.
    TypeError(String),
    /// A plan referenced a table missing from the catalog.
    UnknownTable(String),
    /// A plan referenced an embedding model missing from the registry.
    UnknownModel(String),
    /// The plan is structurally invalid for the requested operation.
    InvalidPlan(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::Storage(e) => write!(f, "storage error: {e}"),
            RelationalError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelationalError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            RelationalError::TypeError(msg) => write!(f, "type error: {msg}"),
            RelationalError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelationalError::UnknownModel(m) => write!(f, "unknown embedding model: {m}"),
            RelationalError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelationalError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelationalError {
    fn from(e: StorageError) -> Self {
        RelationalError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RelationalError::from(StorageError::ColumnNotFound("x".into()));
        assert!(e.to_string().contains("storage error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(RelationalError::UnknownColumn("c".into())
            .to_string()
            .contains("c"));
        assert!(RelationalError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        assert!(RelationalError::UnknownModel("m".into())
            .to_string()
            .contains("m"));
        assert!(RelationalError::InvalidPlan("p".into())
            .to_string()
            .contains("p"));
        assert!(RelationalError::TypeError("ty".into())
            .to_string()
            .contains("ty"));
        assert!(std::error::Error::source(&RelationalError::UnknownColumn("c".into())).is_none());
    }
}
