//! The extended logical algebra: relational operators plus the embedding
//! operator and the context-enhanced join.
//!
//! Plans are ordinary immutable trees.  The optimizer rewrites them using the
//! algebraic equivalences of Section III-C; the physical layer (and
//! `cej-core` for joins) turns them into executable operators.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;

/// Which input of a join a rewrite refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinSide {
    /// The left (outer, `R`) input.
    Left,
    /// The right (inner, `S`) input.
    Right,
}

/// The similarity predicate of a context-enhanced join.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimilarityPredicate {
    /// Keep every pair with cosine similarity at least the threshold
    /// (the paper's range predicate, e.g. `similarity > 0.9`).
    Threshold(f32),
    /// For each left tuple keep its `k` most similar right tuples
    /// (the paper's top-k probe semantics, Figures 15-16).
    TopK(usize),
}

impl SimilarityPredicate {
    /// Human-readable label used in plan displays and reports.
    pub fn label(&self) -> String {
        match self {
            SimilarityPredicate::Threshold(t) => format!("sim >= {t}"),
            SimilarityPredicate::TopK(k) => format!("top-{k}"),
        }
    }
}

/// Description of an embedding operator application: which column to embed,
/// with which model, into which output column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedSpec {
    /// Name of the context-rich input column (e.g. `word`).
    pub input_column: String,
    /// Name of the produced embedding column (e.g. `word_emb`).
    pub output_column: String,
    /// Name of the model in the [`crate::physical::ModelRegistry`].
    pub model: String,
}

impl EmbedSpec {
    /// Creates an embed spec with the conventional `<col>_emb` output name.
    pub fn new(input_column: &str, model: &str) -> Self {
        Self {
            input_column: input_column.to_string(),
            output_column: format!("{input_column}_emb"),
            model: model.to_string(),
        }
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Scan of a named base table.
    Scan {
        /// Catalog name of the table.
        table: String,
    },
    /// Relational selection `σ_θ(input)`.
    Selection {
        /// The predicate.
        predicate: Expr,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// Projection to a subset of columns.
    Projection {
        /// Output column names, in order.
        columns: Vec<String>,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// The embedding operator `E_µ(input)`: appends an embedding column.
    Embed {
        /// What to embed and with which model.
        spec: EmbedSpec,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// Relational hash equi-join `left ⋈_{l=r} right`.
    ///
    /// The output schema is the concatenation of both input schemas with
    /// column names preserved — which is why planning *rejects* joins whose
    /// inputs share a column name (see the README's "Query API" section for
    /// the N-table naming rules).  Use [`LogicalPlan::rename`] to disambiguate
    /// before joining.
    Join {
        /// Left (probe) input plan.
        left: Box<LogicalPlan>,
        /// Right (build) input plan.
        right: Box<LogicalPlan>,
        /// Equi-join column of the left input.
        left_column: String,
        /// Equi-join column of the right input.
        right_column: String,
    },
    /// Projection with renaming: keeps the listed input columns, in order,
    /// under new names.  Pure metadata at execution time (zero-copy).
    Rename {
        /// `(input_column, output_column)` pairs, in output order.
        columns: Vec<(String, String)>,
        /// The input plan.
        input: Box<LogicalPlan>,
    },
    /// The context-enhanced join `left ⋈_{E,µ,θ} right`.
    EJoin {
        /// Left (outer) input plan.
        left: Box<LogicalPlan>,
        /// Right (inner) input plan.
        right: Box<LogicalPlan>,
        /// Context-rich join column of the left input.
        left_column: String,
        /// Context-rich join column of the right input.
        right_column: String,
        /// Embedding model used for both sides.
        model: String,
        /// Similarity predicate.
        predicate: SimilarityPredicate,
    },
}

impl LogicalPlan {
    /// Scan helper.
    pub fn scan(table: &str) -> Self {
        LogicalPlan::Scan {
            table: table.to_string(),
        }
    }

    /// Wraps this plan in a selection.
    pub fn select(self, predicate: Expr) -> Self {
        LogicalPlan::Selection {
            predicate,
            input: Box::new(self),
        }
    }

    /// Wraps this plan in a projection.
    pub fn project(self, columns: &[&str]) -> Self {
        LogicalPlan::Projection {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            input: Box::new(self),
        }
    }

    /// Wraps this plan in an embedding operator.
    pub fn embed(self, spec: EmbedSpec) -> Self {
        LogicalPlan::Embed {
            spec,
            input: Box::new(self),
        }
    }

    /// Wraps this plan in a renaming projection.
    pub fn rename(self, columns: &[(&str, &str)]) -> Self {
        LogicalPlan::Rename {
            columns: columns
                .iter()
                .map(|(from, to)| (from.to_string(), to.to_string()))
                .collect(),
            input: Box::new(self),
        }
    }

    /// Builds a relational hash equi-join of two plans.
    pub fn join(
        left: LogicalPlan,
        right: LogicalPlan,
        left_column: &str,
        right_column: &str,
    ) -> Self {
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_column: left_column.to_string(),
            right_column: right_column.to_string(),
        }
    }

    /// Builds a context-enhanced join of two plans.
    pub fn e_join(
        left: LogicalPlan,
        right: LogicalPlan,
        left_column: &str,
        right_column: &str,
        model: &str,
        predicate: SimilarityPredicate,
    ) -> Self {
        LogicalPlan::EJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_column: left_column.to_string(),
            right_column: right_column.to_string(),
            model: model.to_string(),
            predicate,
        }
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Selection { input, .. }
            | LogicalPlan::Projection { input, .. }
            | LogicalPlan::Rename { input, .. }
            | LogicalPlan::Embed { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::EJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Total number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Number of [`LogicalPlan::Embed`] nodes in the tree.
    pub fn embed_count(&self) -> usize {
        let own = usize::from(matches!(self, LogicalPlan::Embed { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.embed_count())
            .sum::<usize>()
    }

    /// Number of [`LogicalPlan::Selection`] nodes that appear *below* the
    /// first embedding / join operator on each path — a proxy for "relational
    /// filters were pushed under the expensive operators", used by optimizer
    /// tests.
    pub fn selections_below_embedding(&self) -> usize {
        fn walk(plan: &LogicalPlan, below: bool, acc: &mut usize) {
            match plan {
                LogicalPlan::Selection { input, .. } => {
                    if below {
                        *acc += 1;
                    }
                    walk(input, below, acc);
                }
                LogicalPlan::Embed { input, .. } => walk(input, true, acc),
                LogicalPlan::EJoin { left, right, .. } => {
                    walk(left, true, acc);
                    walk(right, true, acc);
                }
                LogicalPlan::Projection { input, .. } | LogicalPlan::Rename { input, .. } => {
                    walk(input, below, acc)
                }
                LogicalPlan::Join { left, right, .. } => {
                    walk(left, below, acc);
                    walk(right, below, acc);
                }
                LogicalPlan::Scan { .. } => {}
            }
        }
        let mut acc = 0;
        walk(self, false, &mut acc);
        acc
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { table } => writeln!(f, "{pad}Scan: {table}"),
            LogicalPlan::Selection { predicate, input } => {
                writeln!(f, "{pad}Selection: {predicate}")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Projection { columns, input } => {
                writeln!(f, "{pad}Projection: [{}]", columns.join(", "))?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Embed { spec, input } => {
                writeln!(
                    f,
                    "{pad}Embed: {} -> {} (model {})",
                    spec.input_column, spec.output_column, spec.model
                )?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Join {
                left,
                right,
                left_column,
                right_column,
            } => {
                writeln!(f, "{pad}Join: {left_column} = {right_column}")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Rename { columns, input } => {
                let pairs: Vec<String> = columns
                    .iter()
                    .map(|(from, to)| {
                        if from == to {
                            from.clone()
                        } else {
                            format!("{from} as {to}")
                        }
                    })
                    .collect();
                writeln!(f, "{pad}Rename: [{}]", pairs.join(", "))?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::EJoin {
                left,
                right,
                left_column,
                right_column,
                model,
                predicate,
            } => {
                writeln!(
                    f,
                    "{pad}EJoin: {left_column} ~ {right_column} ({}, model {model})",
                    predicate.label()
                )?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_i64};

    fn sample_join() -> LogicalPlan {
        LogicalPlan::e_join(
            LogicalPlan::scan("photos").select(col("taken").gt(lit_i64(10))),
            LogicalPlan::scan("catalog"),
            "caption",
            "title",
            "fasttext",
            SimilarityPredicate::Threshold(0.9),
        )
    }

    #[test]
    fn builders_produce_expected_shape() {
        let plan = sample_join();
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.children().len(), 2);
        assert_eq!(plan.embed_count(), 0);
    }

    #[test]
    fn display_shows_tree() {
        let s = sample_join().to_string();
        assert!(s.contains("EJoin"));
        assert!(s.contains("Scan: photos"));
        assert!(s.contains("sim >= 0.9"));
        let embedded = LogicalPlan::scan("t").embed(EmbedSpec::new("word", "fasttext"));
        assert!(embedded.to_string().contains("word -> word_emb"));
        let projected = LogicalPlan::scan("t").project(&["a", "b"]);
        assert!(projected.to_string().contains("[a, b]"));
    }

    #[test]
    fn predicate_labels() {
        assert_eq!(SimilarityPredicate::Threshold(0.5).label(), "sim >= 0.5");
        assert_eq!(SimilarityPredicate::TopK(32).label(), "top-32");
    }

    #[test]
    fn embed_spec_default_output_name() {
        let spec = EmbedSpec::new("caption", "m");
        assert_eq!(spec.output_column, "caption_emb");
    }

    #[test]
    fn selections_below_embedding_counts_pushed_filters() {
        // Selection above the join: not counted.
        let above = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "a",
            "b",
            "m",
            SimilarityPredicate::TopK(1),
        )
        .select(col("x").gt(lit_i64(0)));
        assert_eq!(above.selections_below_embedding(), 0);

        // Selection below the join input: counted.
        let below = sample_join();
        assert_eq!(below.selections_below_embedding(), 1);

        // Selection below an Embed: counted.
        let below_embed = LogicalPlan::scan("t")
            .select(col("x").gt(lit_i64(0)))
            .embed(EmbedSpec::new("w", "m"));
        assert_eq!(below_embed.selections_below_embedding(), 1);
    }

    #[test]
    fn node_and_embed_counts() {
        let plan = LogicalPlan::scan("t")
            .embed(EmbedSpec::new("w", "m"))
            .select(col("x").gt(lit_i64(1)))
            .project(&["w"]);
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.embed_count(), 1);
    }
}
