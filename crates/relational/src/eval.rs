//! Predicate evaluation over tables.
//!
//! Evaluation is row-at-a-time over columnar data — adequate for the
//! experiment scales here, where predicate evaluation is never the
//! bottleneck (the paper's bottleneck analysis is entirely about model calls
//! and vector arithmetic).

use cej_storage::{Column, ScalarValue, SelectionBitmap, Table};
use cej_vector::{filter_cmp, CmpOp};

use crate::error::RelationalError;
use crate::expr::{CompareOp, Expr};
use crate::Result;

/// Evaluates a boolean predicate against every row of `table`, producing a
/// selection bitmap.
///
/// # Errors
/// Returns [`RelationalError::UnknownColumn`] for unresolved column
/// references and [`RelationalError::TypeError`] for non-boolean expressions
/// or incompatible comparisons.
pub fn evaluate_predicate(expr: &Expr, table: &Table) -> Result<SelectionBitmap> {
    let mut bits = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        bits.push(evaluate_bool(expr, table, row)?);
    }
    Ok(SelectionBitmap::from_bools(bits))
}

/// Evaluates a boolean predicate over the lanes named by a selection vector,
/// returning the surviving lanes (a refined selection vector, in order).
///
/// This is the vectorised executor's `Filter` path: instead of materialising
/// the upstream rows and re-scanning them, the predicate is applied directly
/// to the base table restricted to the still-selected lanes.  Simple
/// `column <op> literal` comparisons over totally-ordered types are
/// dispatched to the SIMD-friendly [`filter_cmp`] kernel; everything else
/// (including floats, whose row-path semantics treat NaN as equal) falls back
/// to the same row-at-a-time evaluation as [`evaluate_predicate`], so both
/// paths agree bit-for-bit on survivors and on error behaviour.
///
/// # Errors
/// Identical to [`evaluate_predicate`] over the selected lanes.
pub fn evaluate_predicate_select(expr: &Expr, table: &Table, sel: &[u32]) -> Result<Vec<u32>> {
    if sel.is_empty() {
        // row path over an empty upstream table evaluates nothing
        return Ok(Vec::new());
    }
    match expr {
        // `a AND b`: evaluate `b` only on `a`'s survivors — exactly the row
        // path's short-circuit `&&` semantics.
        Expr::And(a, b) => {
            let first = evaluate_predicate_select(a, table, sel)?;
            evaluate_predicate_select(b, table, &first)
        }
        Expr::Compare { left, op, right } => {
            if let (Expr::Column(name), Expr::Literal(rv)) = (left.as_ref(), right.as_ref()) {
                if let Some(out) = compare_fast_path(name, *op, rv, table, sel) {
                    return Ok(out);
                }
            }
            evaluate_rowwise_select(expr, table, sel)
        }
        _ => evaluate_rowwise_select(expr, table, sel),
    }
}

/// Vectorised `column <op> literal` comparison for totally-ordered column
/// types.  Returns `None` when the shape or types don't qualify, so the
/// caller falls back to row-wise evaluation (which reports the same errors
/// as the row path).
fn compare_fast_path(
    name: &str,
    op: CompareOp,
    rhs: &ScalarValue,
    table: &Table,
    sel: &[u32],
) -> Option<Vec<u32>> {
    let column = table.column_by_name(name).ok()?;
    let cmp = match op {
        CompareOp::Eq => CmpOp::Eq,
        CompareOp::NotEq => CmpOp::NotEq,
        CompareOp::Lt => CmpOp::Lt,
        CompareOp::LtEq => CmpOp::LtEq,
        CompareOp::Gt => CmpOp::Gt,
        CompareOp::GtEq => CmpOp::GtEq,
    };
    match (column, rhs) {
        (Column::Int64(values), ScalarValue::Int64(x)) => Some(filter_cmp(values, sel, cmp, *x)),
        (Column::Date(values), ScalarValue::Date(x)) => Some(filter_cmp(values, sel, cmp, *x)),
        // floats use `unwrap_or(Equal)` NaN semantics in the row path, and
        // other type pairings may be errors — let row-wise handle them
        _ => None,
    }
}

/// Row-at-a-time fallback for [`evaluate_predicate_select`].
fn evaluate_rowwise_select(expr: &Expr, table: &Table, sel: &[u32]) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    for &lane in sel {
        if evaluate_bool(expr, table, lane as usize)? {
            out.push(lane);
        }
    }
    Ok(out)
}

/// Evaluates an expression to a boolean for a single row.
fn evaluate_bool(expr: &Expr, table: &Table, row: usize) -> Result<bool> {
    match expr {
        Expr::And(a, b) => Ok(evaluate_bool(a, table, row)? && evaluate_bool(b, table, row)?),
        Expr::Or(a, b) => Ok(evaluate_bool(a, table, row)? || evaluate_bool(b, table, row)?),
        Expr::Not(inner) => Ok(!evaluate_bool(inner, table, row)?),
        Expr::Compare { left, op, right } => {
            let lv = evaluate_scalar(left, table, row)?;
            let rv = evaluate_scalar(right, table, row)?;
            compare(&lv, *op, &rv)
        }
        Expr::Literal(ScalarValue::Bool(b)) => Ok(*b),
        Expr::Column(name) => {
            let v = column_value(name, table, row)?;
            match v {
                ScalarValue::Bool(b) => Ok(b),
                other => Err(RelationalError::TypeError(format!(
                    "column {name} used as predicate but has type {}",
                    other.data_type()
                ))),
            }
        }
        Expr::Literal(other) => Err(RelationalError::TypeError(format!(
            "literal {other} is not a boolean predicate"
        ))),
    }
}

/// Evaluates an expression to a scalar for a single row.
fn evaluate_scalar(expr: &Expr, table: &Table, row: usize) -> Result<ScalarValue> {
    match expr {
        Expr::Column(name) => column_value(name, table, row),
        Expr::Literal(v) => Ok(v.clone()),
        other => Err(RelationalError::TypeError(format!(
            "expression {other} cannot be evaluated as a scalar operand"
        ))),
    }
}

fn column_value(name: &str, table: &Table, row: usize) -> Result<ScalarValue> {
    table
        .column_by_name(name)
        .map_err(|_| RelationalError::UnknownColumn(name.to_string()))?
        .get(row)
        .map_err(RelationalError::from)
}

fn compare(left: &ScalarValue, op: CompareOp, right: &ScalarValue) -> Result<bool> {
    use std::cmp::Ordering;
    let ord = left.partial_cmp_same_type(right).map_err(|_| {
        RelationalError::TypeError(format!(
            "cannot compare {} with {}",
            left.data_type(),
            right.data_type()
        ))
    })?;
    Ok(match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::NotEq => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::LtEq => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::GtEq => ord != Ordering::Less,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_date, lit_i64, lit_str};
    use cej_storage::TableBuilder;

    fn table() -> Table {
        TableBuilder::new()
            .int64("id", vec![1, 2, 3, 4])
            .utf8(
                "word",
                vec!["bbq".into(), "grill".into(), "dbms".into(), "sql".into()],
            )
            .date("taken", vec![100, 200, 300, 400])
            .bool("flag", vec![true, false, true, false])
            .build()
            .unwrap()
    }

    #[test]
    fn integer_range_predicate() {
        let t = table();
        let sel = evaluate_predicate(&col("id").gt(lit_i64(2)), &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![2, 3]);
    }

    #[test]
    fn date_predicate_matches_paper_example() {
        let t = table();
        let sel = evaluate_predicate(&col("taken").gt_eq(lit_i64(0)), &t);
        // comparing Date with Int64 is a type error — dates must use date literals
        assert!(sel.is_err());
        let pred = col("taken").gt(crate::expr::lit(ScalarValue::Date(150)));
        let sel = evaluate_predicate(&pred, &t).unwrap();
        assert_eq!(sel.count_selected(), 3);
        let _ = lit_date("2023-12-02").unwrap();
    }

    #[test]
    fn string_equality() {
        let t = table();
        let sel = evaluate_predicate(&col("word").eq(lit_str("dbms")), &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let pred = col("id")
            .lt(lit_i64(3))
            .and(col("flag").eq(crate::expr::lit(ScalarValue::Bool(true))));
        let sel = evaluate_predicate(&pred, &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![0]);

        let pred = col("id").eq(lit_i64(1)).or(col("id").eq(lit_i64(4)));
        let sel = evaluate_predicate(&pred, &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![0, 3]);

        let pred = col("flag").not();
        let sel = evaluate_predicate(&pred, &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![1, 3]);
    }

    #[test]
    fn bare_boolean_column_as_predicate() {
        let t = table();
        let sel = evaluate_predicate(&col("flag"), &t).unwrap();
        assert_eq!(sel.selected_indices(), vec![0, 2]);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(matches!(
            evaluate_predicate(&col("missing").gt(lit_i64(1)), &t),
            Err(RelationalError::UnknownColumn(_))
        ));
    }

    #[test]
    fn type_errors_reported() {
        let t = table();
        // string compared with integer
        assert!(evaluate_predicate(&col("word").gt(lit_i64(1)), &t).is_err());
        // non-boolean column as predicate
        assert!(evaluate_predicate(&col("id"), &t).is_err());
        // non-boolean literal as predicate
        assert!(evaluate_predicate(&lit_i64(1), &t).is_err());
        // nested non-scalar operand
        let nested = Expr::Compare {
            left: Box::new(col("id").gt(lit_i64(1))),
            op: CompareOp::Eq,
            right: Box::new(lit_i64(1)),
        };
        assert!(evaluate_predicate(&nested, &t).is_err());
    }

    #[test]
    fn all_comparison_operators() {
        let t = table();
        let cases = vec![
            (col("id").eq(lit_i64(2)), vec![1]),
            (col("id").not_eq(lit_i64(2)), vec![0, 2, 3]),
            (col("id").lt(lit_i64(2)), vec![0]),
            (col("id").lt_eq(lit_i64(2)), vec![0, 1]),
            (col("id").gt(lit_i64(3)), vec![3]),
            (col("id").gt_eq(lit_i64(3)), vec![2, 3]),
        ];
        for (pred, expected) in cases {
            assert_eq!(
                evaluate_predicate(&pred, &t).unwrap().selected_indices(),
                expected
            );
        }
    }

    use cej_storage::ScalarValue;

    fn all_lanes(t: &Table) -> Vec<u32> {
        (0..t.num_rows() as u32).collect()
    }

    #[test]
    fn select_path_agrees_with_bitmap_path() {
        let t = table();
        let preds = vec![
            col("id").gt(lit_i64(2)),
            col("id").not_eq(lit_i64(2)),
            col("taken").gt(crate::expr::lit(ScalarValue::Date(150))),
            col("word").eq(lit_str("dbms")),
            col("flag").not(),
            col("id")
                .lt(lit_i64(3))
                .and(col("flag").eq(crate::expr::lit(ScalarValue::Bool(true)))),
            col("id").eq(lit_i64(1)).or(col("id").eq(lit_i64(4))),
        ];
        for pred in preds {
            let bitmap = evaluate_predicate(&pred, &t).unwrap();
            let expected: Vec<u32> = bitmap
                .selected_indices()
                .into_iter()
                .map(|i| i as u32)
                .collect();
            let got = evaluate_predicate_select(&pred, &t, &all_lanes(&t)).unwrap();
            assert_eq!(got, expected, "predicate {pred}");
        }
    }

    #[test]
    fn select_path_refines_an_existing_selection() {
        let t = table();
        // start from lanes {1, 2, 3}; id > 2 keeps {2, 3}
        let got = evaluate_predicate_select(&col("id").gt(lit_i64(2)), &t, &[1, 2, 3]).unwrap();
        assert_eq!(got, vec![2, 3]);
        // empty input short-circuits without touching columns
        let got = evaluate_predicate_select(&col("missing").gt(lit_i64(0)), &t, &[]).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn select_path_reports_row_path_errors() {
        let t = table();
        assert!(matches!(
            evaluate_predicate_select(&col("missing").gt(lit_i64(1)), &t, &all_lanes(&t)),
            Err(RelationalError::UnknownColumn(_))
        ));
        // Date vs Int64 literal is a type error on both paths (the fast path
        // must decline rather than coerce)
        assert!(
            evaluate_predicate_select(&col("taken").gt(lit_i64(0)), &t, &all_lanes(&t)).is_err()
        );
    }
}
