//! Statistics-driven selectivity estimation and plan-time predicate checking.
//!
//! [`estimate_selectivity`] walks a predicate [`Expr`] against a table's
//! [`TableStats`] and returns the estimated fraction of surviving rows:
//!
//! * `col = v`   → exact heavy-hitter mass from degenerate histogram buckets,
//!   else `1/ndv`, else `0` outside the observed `[min, max]`;
//! * `col < v` (and friends) → equi-depth histogram mass;
//! * `a AND b`   → `s(a) · s(b)` (attribute-value independence);
//! * `a OR b`    → `s(a) + s(b) − s(a)·s(b)`;
//! * `NOT a`     → `1 − s(a)`.
//!
//! Anything the statistics cannot answer (cross-column comparisons, missing
//! columns, non-orderable types) falls back to the classic constants — which
//! is exactly what the whole plan used to be estimated with.
//!
//! [`check_predicate`] is the plan-time companion: it resolves every column
//! reference against a schema and type-checks comparisons, so malformed
//! predicates fail at `prepare()` instead of mid-execution.

use cej_storage::{ColumnStats, DataType, ScalarValue, Schema, TableStats};

use crate::error::RelationalError;
use crate::expr::{CompareOp, Expr};
use crate::Result;

/// Fallback selectivity when statistics cannot answer (the System-R
/// constant the planner used for *every* filter before statistics existed).
pub const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Fallback selectivity for inequality comparisons without a histogram.
pub const DEFAULT_INEQUALITY_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimates the fraction of rows of a relation described by `stats` that
/// satisfy `expr`.  Always in `[0, 1]`.
pub fn estimate_selectivity(expr: &Expr, stats: &TableStats) -> f64 {
    estimate(expr, stats).clamp(0.0, 1.0)
}

fn estimate(expr: &Expr, stats: &TableStats) -> f64 {
    match expr {
        Expr::And(a, b) => estimate(a, stats) * estimate(b, stats),
        Expr::Or(a, b) => {
            let (sa, sb) = (estimate(a, stats), estimate(b, stats));
            sa + sb - sa * sb
        }
        Expr::Not(inner) => 1.0 - estimate(inner, stats),
        Expr::Compare { left, op, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => compare_column_literal(stats, c, *op, v),
            (Expr::Literal(v), Expr::Column(c)) => compare_column_literal(stats, c, flip(*op), v),
            (Expr::Column(a), Expr::Column(b)) => compare_columns(stats, a, *op, b),
            _ => DEFAULT_SELECTIVITY,
        },
        // A bare boolean column: estimate the mass of `true`.
        Expr::Column(name) => match stats.column(name) {
            Some(cs) => cs.eq_fraction(&ScalarValue::Bool(true)),
            None => DEFAULT_SELECTIVITY,
        },
        Expr::Literal(ScalarValue::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Literal(_) => DEFAULT_SELECTIVITY,
    }
}

/// Mirrors the comparison so the column is always on the left.
fn flip(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::LtEq => CompareOp::GtEq,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::GtEq => CompareOp::LtEq,
        CompareOp::Eq | CompareOp::NotEq => op,
    }
}

fn compare_column_literal(
    stats: &TableStats,
    column: &str,
    op: CompareOp,
    value: &ScalarValue,
) -> f64 {
    let Some(cs) = stats.column(column) else {
        return DEFAULT_SELECTIVITY;
    };
    match op {
        CompareOp::Eq => cs.eq_fraction(value),
        CompareOp::NotEq => 1.0 - cs.eq_fraction(value),
        CompareOp::Lt => range_fraction(cs, value, false),
        CompareOp::LtEq => range_fraction(cs, value, true),
        CompareOp::Gt => 1.0 - range_fraction(cs, value, true),
        CompareOp::GtEq => 1.0 - range_fraction(cs, value, false),
    }
}

/// `P(col < v)` (or `<=` when `inclusive`), via the histogram when one
/// exists, with an ordering-based boundary check for histogram-less but
/// orderable columns (strings), and the classic constant otherwise.
fn range_fraction(cs: &ColumnStats, value: &ScalarValue, inclusive: bool) -> f64 {
    let hist = if inclusive {
        cs.fraction_leq(value)
    } else {
        cs.fraction_lt(value)
    };
    if let Some(f) = hist {
        return f;
    }
    // No histogram (e.g. strings): min/max still bound the answer exactly
    // when the literal falls outside the observed range.
    if let (Some(min), Some(max)) = (&cs.min, &cs.max) {
        use std::cmp::Ordering;
        if let (Ok(vs_min), Ok(vs_max)) = (
            value.partial_cmp_same_type(min),
            value.partial_cmp_same_type(max),
        ) {
            if vs_min == Ordering::Less || (!inclusive && vs_min == Ordering::Equal) {
                return 0.0;
            }
            if vs_max == Ordering::Greater || (inclusive && vs_max == Ordering::Equal) {
                return 1.0;
            }
        }
    }
    DEFAULT_INEQUALITY_SELECTIVITY
}

fn compare_columns(stats: &TableStats, a: &str, op: CompareOp, b: &str) -> f64 {
    match op {
        // The classic equi-join style estimate: 1 / max(ndv_a, ndv_b).
        CompareOp::Eq => {
            let ndv = stats
                .column(a)
                .map(|s| s.distinct_count)
                .unwrap_or(1)
                .max(stats.column(b).map(|s| s.distinct_count).unwrap_or(1))
                .max(1);
            1.0 / ndv as f64
        }
        CompareOp::NotEq => 1.0 - compare_columns(stats, a, CompareOp::Eq, b),
        _ => DEFAULT_INEQUALITY_SELECTIVITY,
    }
}

// ---------------------------------------------------------------------------
// Plan-time predicate checking
// ---------------------------------------------------------------------------

/// Checks that `expr` is a well-typed boolean predicate over `schema`:
/// every referenced column exists, comparisons combine identical orderable
/// types, and the boolean structure is sound.  Mirrors exactly what
/// [`crate::eval::evaluate_predicate`] would reject at execution time, but
/// runs at plan time so a `prepare()` surfaces the typed error.
///
/// # Errors
/// [`RelationalError::UnknownColumn`] for unresolved references,
/// [`RelationalError::TypeError`] for type mismatches.
pub fn check_predicate(expr: &Expr, schema: &Schema) -> Result<()> {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            check_predicate(a, schema)?;
            check_predicate(b, schema)
        }
        Expr::Not(inner) => check_predicate(inner, schema),
        Expr::Compare { left, op: _, right } => {
            let lt = operand_type(left, schema)?;
            let rt = operand_type(right, schema)?;
            if lt != rt {
                return Err(RelationalError::TypeError(format!(
                    "cannot compare {lt} with {rt} in {expr}"
                )));
            }
            if matches!(lt, DataType::Vector(_)) {
                return Err(RelationalError::TypeError(format!(
                    "vector columns are not orderable: {expr}"
                )));
            }
            Ok(())
        }
        Expr::Column(name) => match resolve(name, schema)? {
            DataType::Bool => Ok(()),
            other => Err(RelationalError::TypeError(format!(
                "column {name} used as predicate but has type {other}"
            ))),
        },
        Expr::Literal(ScalarValue::Bool(_)) => Ok(()),
        Expr::Literal(other) => Err(RelationalError::TypeError(format!(
            "literal {other} is not a boolean predicate"
        ))),
    }
}

fn operand_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    match expr {
        Expr::Column(name) => resolve(name, schema),
        Expr::Literal(v) => Ok(v.data_type()),
        other => Err(RelationalError::TypeError(format!(
            "expression {other} cannot be used as a comparison operand"
        ))),
    }
}

fn resolve(name: &str, schema: &Schema) -> Result<DataType> {
    schema
        .field(name)
        .map(|f| f.data_type)
        .map_err(|_| RelationalError::UnknownColumn(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, lit_f64, lit_i64, lit_str};
    use cej_storage::TableBuilder;

    fn stats() -> TableStats {
        TableBuilder::new()
            .int64("filter", (0..1000).map(|i| i % 100).collect())
            .int64(
                "skewed",
                (0..1000).map(|i| if i < 700 { 0 } else { i }).collect(),
            )
            .utf8("word", (0..1000).map(|i| format!("w{}", i % 50)).collect())
            .bool("flag", (0..1000).map(|i| i % 4 == 0).collect())
            .build()
            .unwrap()
            .analyze()
    }

    #[test]
    fn uniform_range_estimates_track_truth() {
        let s = stats();
        for cut in [10, 30, 50, 90] {
            let est = estimate_selectivity(&col("filter").lt(lit_i64(cut)), &s);
            let actual = cut as f64 / 100.0;
            assert!(
                (est - actual).abs() < 0.06,
                "cut {cut}: est {est} vs actual {actual}"
            );
        }
        // flipped literal-column order
        let est = estimate_selectivity(&lit_i64(50).gt(col("filter")), &s);
        assert!((est - 0.5).abs() < 0.06, "flipped est {est}");
    }

    #[test]
    fn skew_heavy_hitter_eq_is_exact() {
        let s = stats();
        let est = estimate_selectivity(&col("skewed").eq(lit_i64(0)), &s);
        assert!((est - 0.7).abs() < 0.05, "hitter est {est}");
        let tail = estimate_selectivity(&col("skewed").eq(lit_i64(750)), &s);
        assert!(tail < 0.05, "tail est {tail}");
        let out = estimate_selectivity(&col("skewed").eq(lit_i64(5000)), &s);
        assert_eq!(out, 0.0);
    }

    #[test]
    fn boolean_combinators_compose() {
        let s = stats();
        let and = estimate_selectivity(&col("filter").lt(lit_i64(50)).and(col("flag")), &s);
        assert!((and - 0.5 * 0.25).abs() < 0.05, "and est {and}");
        let or = estimate_selectivity(
            &col("filter")
                .lt(lit_i64(50))
                .or(col("filter").gt_eq(lit_i64(50))),
            &s,
        );
        assert!(or > 0.7, "or est {or}");
        let not = estimate_selectivity(&col("flag").not(), &s);
        assert!((not - 0.75).abs() < 0.05, "not est {not}");
    }

    #[test]
    fn string_and_fallback_estimates() {
        let s = stats();
        let eq = estimate_selectivity(&col("word").eq(lit_str("w7")), &s);
        assert!((eq - 1.0 / 50.0).abs() < 1e-6);
        // out-of-range string equality is impossible
        assert_eq!(
            estimate_selectivity(&col("word").eq(lit_str("zzz")), &s),
            0.0
        );
        // string ranges outside the observed bounds are exact
        assert_eq!(estimate_selectivity(&col("word").lt(lit_str("a")), &s), 0.0);
        assert_eq!(
            estimate_selectivity(&col("word").lt_eq(lit_str("zzz")), &s),
            1.0
        );
        // inside the range: the classic 1/3
        let mid = estimate_selectivity(&col("word").lt(lit_str("w3")), &s);
        assert!((mid - DEFAULT_INEQUALITY_SELECTIVITY).abs() < 1e-9);
        // unknown column: 0.5
        let unknown = estimate_selectivity(&col("missing").lt(lit_i64(3)), &s);
        assert!((unknown - DEFAULT_SELECTIVITY).abs() < 1e-9);
        // cross-column equality: 1/max(ndv)
        let cross = estimate_selectivity(&col("filter").eq(col("skewed")), &s);
        assert!(cross <= 1.0 / 100.0 + 1e-9);
        let cross_range = estimate_selectivity(&col("filter").lt(col("skewed")), &s);
        assert!((cross_range - DEFAULT_INEQUALITY_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn literal_predicates() {
        let s = stats();
        assert_eq!(estimate_selectivity(&lit(ScalarValue::Bool(true)), &s), 1.0);
        assert_eq!(
            estimate_selectivity(&lit(ScalarValue::Bool(false)), &s),
            0.0
        );
        assert!((estimate_selectivity(&lit_i64(1), &s) - DEFAULT_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn check_predicate_accepts_valid_and_rejects_invalid() {
        let t = TableBuilder::new()
            .int64("id", vec![1])
            .utf8("word", vec!["x".into()])
            .bool("flag", vec![true])
            .build()
            .unwrap();
        let schema = t.schema();
        assert!(check_predicate(&col("id").gt(lit_i64(1)), schema).is_ok());
        assert!(check_predicate(&col("flag").and(col("id").eq(lit_i64(2))), schema).is_ok());
        assert!(check_predicate(&col("word").eq(lit_str("x")).not(), schema).is_ok());
        // unknown column
        assert!(matches!(
            check_predicate(&col("nope").gt(lit_i64(1)), schema),
            Err(RelationalError::UnknownColumn(_))
        ));
        // type mismatch in comparison
        assert!(matches!(
            check_predicate(&col("word").gt(lit_i64(1)), schema),
            Err(RelationalError::TypeError(_))
        ));
        assert!(matches!(
            check_predicate(&col("id").lt(lit_f64(1.0)), schema),
            Err(RelationalError::TypeError(_))
        ));
        // non-boolean column / literal as predicate
        assert!(check_predicate(&col("id"), schema).is_err());
        assert!(check_predicate(&lit_i64(1), schema).is_err());
        // nested non-scalar operand
        let nested = Expr::Compare {
            left: Box::new(col("id").gt(lit_i64(1))),
            op: CompareOp::Eq,
            right: Box::new(lit_i64(1)),
        };
        assert!(check_predicate(&nested, schema).is_err());
    }
}
