//! Auxiliary rewrite rules: selection merging and redundant-embed
//! elimination.

use super::{transform_up, OptimizerRule};
use crate::algebra::LogicalPlan;
use crate::catalog::Catalog;
use crate::Result;

/// Fuses directly nested selections into a single conjunctive selection.
///
/// `σ_a(σ_b(x)) → σ_{a AND b}(x)` — harmless on its own, but it keeps the
/// plans produced by repeated pushdown passes small and makes the
/// "selections below the embedding" accounting used in tests unambiguous.
pub struct SelectionMerge;

impl OptimizerRule for SelectionMerge {
    fn name(&self) -> &'static str {
        "selection_merge"
    }

    fn apply(&self, plan: &LogicalPlan, _catalog: &Catalog) -> Result<Option<LogicalPlan>> {
        let (rewritten, changed) = transform_up(plan, &|node| match node {
            LogicalPlan::Selection { predicate, input } => match input.as_ref() {
                LogicalPlan::Selection {
                    predicate: inner_pred,
                    input: inner_input,
                } => Some(LogicalPlan::Selection {
                    predicate: predicate.clone().and(inner_pred.clone()),
                    input: inner_input.clone(),
                }),
                _ => None,
            },
            _ => None,
        });
        Ok(if changed { Some(rewritten) } else { None })
    }
}

/// Collapses `E_µ(E_µ(x))` with an identical [`crate::algebra::EmbedSpec`]
/// into a single embedding — embedding the same column twice with the same
/// model is pure waste under the paper's cost model, where `M` dominates.
pub struct RedundantEmbedElimination;

impl OptimizerRule for RedundantEmbedElimination {
    fn name(&self) -> &'static str {
        "redundant_embed_elimination"
    }

    fn apply(&self, plan: &LogicalPlan, _catalog: &Catalog) -> Result<Option<LogicalPlan>> {
        let (rewritten, changed) = transform_up(plan, &|node| match node {
            LogicalPlan::Embed { spec, input } => match input.as_ref() {
                LogicalPlan::Embed {
                    spec: inner_spec,
                    input: inner_input,
                } if spec == inner_spec => Some(LogicalPlan::Embed {
                    spec: spec.clone(),
                    input: inner_input.clone(),
                }),
                _ => None,
            },
            _ => None,
        });
        Ok(if changed { Some(rewritten) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::EmbedSpec;
    use crate::expr::{col, lit_i64};
    use crate::optimizer::Optimizer;
    use cej_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            TableBuilder::new()
                .int64("r_id", vec![1])
                .utf8("r_word", vec!["a".into()])
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn adjacent_selections_merge() {
        let c = catalog();
        let plan = LogicalPlan::scan("r")
            .select(col("r_id").gt(lit_i64(0)))
            .select(col("r_id").lt(lit_i64(10)));
        let rewritten = SelectionMerge.apply(&plan, &c).unwrap().unwrap();
        match rewritten {
            LogicalPlan::Selection { predicate, input } => {
                assert!(predicate.to_string().contains("AND"));
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
            }
            other => panic!("expected merged selection, got {other}"),
        }
        // no further change
        assert!(SelectionMerge
            .apply(&SelectionMerge.apply(&plan, &c).unwrap().unwrap(), &c)
            .unwrap()
            .is_none());
    }

    #[test]
    fn redundant_embed_removed() {
        let c = catalog();
        let spec = EmbedSpec::new("r_word", "m");
        let plan = LogicalPlan::scan("r")
            .embed(spec.clone())
            .embed(spec.clone());
        assert_eq!(plan.embed_count(), 2);
        let rewritten = RedundantEmbedElimination.apply(&plan, &c).unwrap().unwrap();
        assert_eq!(rewritten.embed_count(), 1);
    }

    #[test]
    fn different_embed_specs_not_collapsed() {
        let c = catalog();
        let plan = LogicalPlan::scan("r")
            .embed(EmbedSpec::new("r_word", "model_a"))
            .embed(EmbedSpec::new("r_word", "model_b"));
        assert!(RedundantEmbedElimination
            .apply(&plan, &c)
            .unwrap()
            .is_none());
    }

    #[test]
    fn full_optimizer_pipeline_end_state() {
        // σ(σ(Embed(scan))) with relational predicates ends up as
        // Embed(σ(merged predicate)(scan)).
        let c = catalog();
        let plan = LogicalPlan::scan("r")
            .embed(EmbedSpec::new("r_word", "m"))
            .select(col("r_id").gt(lit_i64(0)))
            .select(col("r_id").lt(lit_i64(10)));
        let optimized = Optimizer::with_default_rules().optimize(plan, &c).unwrap();
        match &optimized {
            LogicalPlan::Embed { input, .. } => match input.as_ref() {
                LogicalPlan::Selection {
                    predicate,
                    input: scan,
                } => {
                    assert!(predicate.to_string().contains("AND"));
                    assert!(matches!(**scan, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected selection under embed, got {other}"),
            },
            other => panic!("expected embed at root, got {other}"),
        }
        assert_eq!(optimized.selections_below_embedding(), 1);
        assert_eq!(optimized.embed_count(), 1);
    }
}
