//! Relational predicate pushdown below the embedding operator and the
//! context-enhanced join.
//!
//! This is the paper's single most important *logical* optimisation: without
//! it, the engine eagerly embeds (and pairwise-compares) tuples that a cheap
//! relational predicate would have discarded, exactly the "materialise
//! everything, embed, then filter" anti-pattern of Figure 1.  The rewrite is
//! justified by the E-Selection equivalence
//! `σ_{E,µ,θ}(R) ⇔ σ_θE(E_µ(σ_θR(R)))` (Section III-C).

use super::{output_columns, transform_up, OptimizerRule};
use crate::algebra::LogicalPlan;
use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::Result;

/// Pushes selections below `Embed` nodes and into the inputs of `EJoin`
/// nodes whenever the predicate only references columns produced by the
/// target child.
pub struct PredicatePushdown;

impl PredicatePushdown {
    fn try_push(plan: &LogicalPlan, catalog: &Catalog) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::Selection { predicate, input } = plan else {
            return Ok(None);
        };
        match input.as_ref() {
            // σ_p(E_µ(x)) → E_µ(σ_p(x)) when p does not use the embedding.
            LogicalPlan::Embed {
                spec,
                input: embed_input,
            } => {
                if predicate.referenced_columns().contains(&spec.output_column) {
                    return Ok(None);
                }
                Ok(Some(LogicalPlan::Embed {
                    spec: spec.clone(),
                    input: Box::new(LogicalPlan::Selection {
                        predicate: predicate.clone(),
                        input: embed_input.clone(),
                    }),
                }))
            }
            // σ_p(R ⋈_E S) → (σ_p R) ⋈_E S (or the mirror) when p only
            // references one side's columns.
            LogicalPlan::EJoin {
                left,
                right,
                left_column,
                right_column,
                model,
                predicate: jp,
            } => {
                let left_cols = output_columns(left, catalog)?;
                let right_cols = output_columns(right, catalog)?;
                let referenced = predicate.referenced_columns();
                let all_in =
                    |cols: &[String]| referenced.iter().all(|c| cols.iter().any(|col| col == c));
                if all_in(&left_cols) {
                    Ok(Some(LogicalPlan::EJoin {
                        left: Box::new(LogicalPlan::Selection {
                            predicate: predicate.clone(),
                            input: left.clone(),
                        }),
                        right: right.clone(),
                        left_column: left_column.clone(),
                        right_column: right_column.clone(),
                        model: model.clone(),
                        predicate: *jp,
                    }))
                } else if all_in(&right_cols) {
                    Ok(Some(LogicalPlan::EJoin {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::Selection {
                            predicate: predicate.clone(),
                            input: right.clone(),
                        }),
                        left_column: left_column.clone(),
                        right_column: right_column.clone(),
                        model: model.clone(),
                        predicate: *jp,
                    }))
                } else {
                    Ok(None)
                }
            }
            // σ_p(R ⋈ S) → (σ_p R) ⋈ S (or the mirror) for the relational
            // hash equi-join — the same one-side rule as for EJoin.
            LogicalPlan::Join {
                left,
                right,
                left_column,
                right_column,
            } => {
                let left_cols = output_columns(left, catalog)?;
                let right_cols = output_columns(right, catalog)?;
                let referenced = predicate.referenced_columns();
                let all_in =
                    |cols: &[String]| referenced.iter().all(|c| cols.iter().any(|col| col == c));
                if all_in(&left_cols) {
                    Ok(Some(LogicalPlan::Join {
                        left: Box::new(LogicalPlan::Selection {
                            predicate: predicate.clone(),
                            input: left.clone(),
                        }),
                        right: right.clone(),
                        left_column: left_column.clone(),
                        right_column: right_column.clone(),
                    }))
                } else if all_in(&right_cols) {
                    Ok(Some(LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new(LogicalPlan::Selection {
                            predicate: predicate.clone(),
                            input: right.clone(),
                        }),
                        left_column: left_column.clone(),
                        right_column: right_column.clone(),
                    }))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }

    fn predicate_of(plan: &LogicalPlan) -> Option<&Expr> {
        match plan {
            LogicalPlan::Selection { predicate, .. } => Some(predicate),
            _ => None,
        }
    }
}

impl OptimizerRule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn apply(&self, plan: &LogicalPlan, catalog: &Catalog) -> Result<Option<LogicalPlan>> {
        // transform_up cannot thread Results, so collect the first error
        // encountered while resolving join schemas.
        let error: std::cell::RefCell<Option<crate::error::RelationalError>> =
            std::cell::RefCell::new(None);
        let (rewritten, changed) = transform_up(plan, &|node| {
            if error.borrow().is_some() {
                return None;
            }
            match Self::try_push(node, catalog) {
                Ok(result) => result,
                Err(e) => {
                    *error.borrow_mut() = Some(e);
                    None
                }
            }
        });
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        // Guard against a pathological rewrite loop: the rewrite strictly
        // pushes selections downward, so a changed plan that is equal to the
        // input would indicate a bug.
        debug_assert!(!changed || rewritten != *plan || Self::predicate_of(plan).is_none());
        Ok(if changed { Some(rewritten) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{EmbedSpec, SimilarityPredicate};
    use crate::expr::{col, lit_i64};
    use cej_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            TableBuilder::new()
                .int64("r_id", vec![1])
                .utf8("r_word", vec!["a".into()])
                .build()
                .unwrap(),
        );
        c.register(
            "s",
            TableBuilder::new()
                .int64("s_id", vec![1])
                .utf8("s_word", vec!["b".into()])
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn selection_pushed_below_embed() {
        let c = catalog();
        let plan = LogicalPlan::scan("r")
            .embed(EmbedSpec::new("r_word", "m"))
            .select(col("r_id").gt(lit_i64(0)));
        assert_eq!(plan.selections_below_embedding(), 0);
        let rewritten = PredicatePushdown.apply(&plan, &c).unwrap().unwrap();
        assert_eq!(rewritten.selections_below_embedding(), 1);
        match rewritten {
            LogicalPlan::Embed { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Selection { .. }));
            }
            other => panic!("expected Embed at the root, got {other}"),
        }
    }

    #[test]
    fn selection_on_embedding_output_not_pushed() {
        let c = catalog();
        let plan = LogicalPlan::scan("r")
            .embed(EmbedSpec::new("r_word", "m"))
            .select(col("r_word_emb").eq(col("r_word_emb")));
        assert!(PredicatePushdown.apply(&plan, &c).unwrap().is_none());
    }

    #[test]
    fn selection_pushed_into_left_join_input() {
        let c = catalog();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "r_word",
            "s_word",
            "m",
            SimilarityPredicate::Threshold(0.9),
        )
        .select(col("r_id").gt(lit_i64(5)));
        let rewritten = PredicatePushdown.apply(&plan, &c).unwrap().unwrap();
        match rewritten {
            LogicalPlan::EJoin { left, right, .. } => {
                assert!(matches!(*left, LogicalPlan::Selection { .. }));
                assert!(matches!(*right, LogicalPlan::Scan { .. }));
            }
            other => panic!("expected EJoin at root, got {other}"),
        }
    }

    #[test]
    fn selection_pushed_into_right_join_input() {
        let c = catalog();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "r_word",
            "s_word",
            "m",
            SimilarityPredicate::TopK(4),
        )
        .select(col("s_id").lt(lit_i64(100)));
        let rewritten = PredicatePushdown.apply(&plan, &c).unwrap().unwrap();
        match rewritten {
            LogicalPlan::EJoin { left, right, .. } => {
                assert!(matches!(*left, LogicalPlan::Scan { .. }));
                assert!(matches!(*right, LogicalPlan::Selection { .. }));
            }
            other => panic!("expected EJoin at root, got {other}"),
        }
    }

    #[test]
    fn cross_side_predicate_stays_above_join() {
        let c = catalog();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "r_word",
            "s_word",
            "m",
            SimilarityPredicate::TopK(4),
        )
        .select(col("r_id").eq(col("s_id")));
        assert!(PredicatePushdown.apply(&plan, &c).unwrap().is_none());
    }

    #[test]
    fn unknown_table_surfaces_error() {
        let c = catalog();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("missing"),
            LogicalPlan::scan("s"),
            "x",
            "s_word",
            "m",
            SimilarityPredicate::TopK(1),
        )
        .select(col("s_id").gt(lit_i64(0)));
        assert!(PredicatePushdown.apply(&plan, &c).is_err());
    }

    #[test]
    fn nested_pushdown_through_both_embed_and_join() {
        let c = catalog();
        // σ_{r_id>0}( EJoin( Embed(scan r), scan s ) )
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("r").embed(EmbedSpec::new("r_word", "m")),
            LogicalPlan::scan("s"),
            "r_word",
            "s_word",
            "m",
            SimilarityPredicate::Threshold(0.8),
        )
        .select(col("r_id").gt(lit_i64(0)));
        // one application pushes below the join; a second (fixpoint) pass in
        // the Optimizer would push it further below the Embed.
        let first = PredicatePushdown.apply(&plan, &c).unwrap().unwrap();
        let second = PredicatePushdown.apply(&first, &c).unwrap().unwrap();
        assert_eq!(second.selections_below_embedding(), 1);
        // and the selection now sits directly on the scan
        let display = second.to_string();
        let select_pos = display.find("Selection").unwrap();
        let embed_pos = display.find("Embed").unwrap();
        assert!(
            select_pos > embed_pos,
            "selection should print below the embed:\n{display}"
        );
    }
}
