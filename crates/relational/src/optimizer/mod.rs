//! Rule-based logical optimizer.
//!
//! The optimizer applies the algebraic equivalences of Section III-C /
//! Section IV as rewrite rules until a fixpoint is reached:
//!
//! * [`PredicatePushdown`] — relational selections move below the embedding
//!   operator and below the context-enhanced join, so that the expensive
//!   model invocations and vector comparisons only see pre-filtered inputs
//!   (the paper's E-Selection equivalence and selection pushdown).
//! * [`SelectionMerge`] — adjacent selections are fused into a conjunction to
//!   avoid repeated scans.
//! * [`RedundantEmbedElimination`] — duplicate applications of the same
//!   embedding operator are collapsed; together with the prefetching join
//!   operators in `cej-core`, this realises the `(|R| + |S|) · M` model cost
//!   of the optimised cost model rather than the naive `|R| · |S| · M`.

pub mod join_order;
pub mod pushdown;
pub mod rules;

use crate::algebra::LogicalPlan;
use crate::catalog::Catalog;
use crate::error::RelationalError;
use crate::Result;

pub use join_order::{physical_output_columns, reorder_joins, MAX_DP_RELATIONS};
pub use pushdown::PredicatePushdown;
pub use rules::{RedundantEmbedElimination, SelectionMerge};

/// A rewrite rule over logical plans.  Rules are shared by every
/// connection of a served session, so implementations must be `Send + Sync`
/// to be installed (they are typically stateless unit structs).
pub trait OptimizerRule {
    /// Rule name (for plan explanations and tests).
    fn name(&self) -> &'static str;

    /// Attempts to rewrite the plan.  Returns `Ok(None)` when the rule does
    /// not apply; a returned plan must be semantically equivalent.
    fn apply(&self, plan: &LogicalPlan, catalog: &Catalog) -> Result<Option<LogicalPlan>>;
}

/// Computes the output column names of a plan, resolving scans against the
/// catalog.  Used by rules that must decide whether a predicate can be pushed
/// into one side of a join.
pub fn output_columns(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<String>> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.table(table)?;
            Ok(t.schema().fields().iter().map(|f| f.name.clone()).collect())
        }
        LogicalPlan::Selection { input, .. } => output_columns(input, catalog),
        LogicalPlan::Projection { columns, .. } => Ok(columns.clone()),
        LogicalPlan::Embed { spec, input } => {
            let mut cols = output_columns(input, catalog)?;
            cols.push(spec.output_column.clone());
            Ok(cols)
        }
        LogicalPlan::Rename { columns, .. } => {
            Ok(columns.iter().map(|(_, to)| to.clone()).collect())
        }
        LogicalPlan::Join { left, right, .. } | LogicalPlan::EJoin { left, right, .. } => {
            let mut cols = output_columns(left, catalog)?;
            cols.extend(output_columns(right, catalog)?);
            Ok(cols)
        }
    }
}

/// The rule-driven optimizer.
pub struct Optimizer {
    rules: Vec<Box<dyn OptimizerRule + Send + Sync>>,
    max_passes: usize,
}

impl Optimizer {
    /// Creates an optimizer with the default rule set.
    pub fn with_default_rules() -> Self {
        Self {
            rules: vec![
                Box::new(SelectionMerge),
                Box::new(PredicatePushdown),
                Box::new(RedundantEmbedElimination),
            ],
            max_passes: 16,
        }
    }

    /// Creates an optimizer with a custom rule set.
    pub fn new(rules: Vec<Box<dyn OptimizerRule + Send + Sync>>) -> Self {
        Self {
            rules,
            max_passes: 16,
        }
    }

    /// Names of the installed rules, in application order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Rewrites the plan to a fixpoint (bounded by an internal pass limit).
    ///
    /// # Errors
    /// Propagates rule errors (e.g. unknown tables while resolving schemas)
    /// and reports non-converging rule sets as [`RelationalError::InvalidPlan`].
    pub fn optimize(&self, plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
        let mut current = plan;
        for _ in 0..self.max_passes {
            let mut changed = false;
            for rule in &self.rules {
                if let Some(rewritten) = rule.apply(&current, catalog)? {
                    current = rewritten;
                    changed = true;
                }
            }
            if !changed {
                return Ok(current);
            }
        }
        Err(RelationalError::InvalidPlan(format!(
            "optimizer did not converge within {} passes",
            self.max_passes
        )))
    }
}

/// Applies a transformation bottom-up to every node of the plan, rebuilding
/// parents whose children changed.  `f` returns `Some(new_node)` to replace a
/// node and `None` to keep it.
pub(crate) fn transform_up<F>(plan: &LogicalPlan, f: &F) -> (LogicalPlan, bool)
where
    F: Fn(&LogicalPlan) -> Option<LogicalPlan>,
{
    // First rebuild children.
    let (rebuilt, changed) = match plan {
        LogicalPlan::Scan { .. } => (plan.clone(), false),
        LogicalPlan::Selection { predicate, input } => {
            let (child, ch) = transform_up(input, f);
            (
                LogicalPlan::Selection {
                    predicate: predicate.clone(),
                    input: Box::new(child),
                },
                ch,
            )
        }
        LogicalPlan::Projection { columns, input } => {
            let (child, ch) = transform_up(input, f);
            (
                LogicalPlan::Projection {
                    columns: columns.clone(),
                    input: Box::new(child),
                },
                ch,
            )
        }
        LogicalPlan::Embed { spec, input } => {
            let (child, ch) = transform_up(input, f);
            (
                LogicalPlan::Embed {
                    spec: spec.clone(),
                    input: Box::new(child),
                },
                ch,
            )
        }
        LogicalPlan::Rename { columns, input } => {
            let (child, ch) = transform_up(input, f);
            (
                LogicalPlan::Rename {
                    columns: columns.clone(),
                    input: Box::new(child),
                },
                ch,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            left_column,
            right_column,
        } => {
            let (l, cl) = transform_up(left, f);
            let (r, cr) = transform_up(right, f);
            (
                LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_column: left_column.clone(),
                    right_column: right_column.clone(),
                },
                cl || cr,
            )
        }
        LogicalPlan::EJoin {
            left,
            right,
            left_column,
            right_column,
            model,
            predicate,
        } => {
            let (l, cl) = transform_up(left, f);
            let (r, cr) = transform_up(right, f);
            (
                LogicalPlan::EJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_column: left_column.clone(),
                    right_column: right_column.clone(),
                    model: model.clone(),
                    predicate: *predicate,
                },
                cl || cr,
            )
        }
    };
    // Then give the callback a chance to rewrite this node.
    if let Some(new_node) = f(&rebuilt) {
        (new_node, true)
    } else {
        (rebuilt, changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{EmbedSpec, SimilarityPredicate};
    use crate::expr::{col, lit_i64};
    use cej_storage::TableBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "r",
            TableBuilder::new()
                .int64("r_id", vec![1])
                .utf8("r_word", vec!["a".into()])
                .build()
                .unwrap(),
        );
        c.register(
            "s",
            TableBuilder::new()
                .int64("s_id", vec![1])
                .utf8("s_word", vec!["b".into()])
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn output_columns_resolution() {
        let c = catalog();
        let scan = LogicalPlan::scan("r");
        assert_eq!(output_columns(&scan, &c).unwrap(), vec!["r_id", "r_word"]);
        let emb = LogicalPlan::scan("r").embed(EmbedSpec::new("r_word", "m"));
        assert_eq!(
            output_columns(&emb, &c).unwrap(),
            vec!["r_id", "r_word", "r_word_emb"]
        );
        let proj = LogicalPlan::scan("r").project(&["r_word"]);
        assert_eq!(output_columns(&proj, &c).unwrap(), vec!["r_word"]);
        let join = LogicalPlan::e_join(
            LogicalPlan::scan("r"),
            LogicalPlan::scan("s"),
            "r_word",
            "s_word",
            "m",
            SimilarityPredicate::TopK(1),
        );
        assert_eq!(
            output_columns(&join, &c).unwrap(),
            vec!["r_id", "r_word", "s_id", "s_word"]
        );
        assert!(output_columns(&LogicalPlan::scan("missing"), &c).is_err());
    }

    #[test]
    fn optimizer_reaches_fixpoint_on_trivial_plan() {
        let c = catalog();
        let plan = LogicalPlan::scan("r");
        let opt = Optimizer::with_default_rules();
        assert_eq!(opt.optimize(plan.clone(), &c).unwrap(), plan);
        assert_eq!(opt.rule_names().len(), 3);
    }

    #[test]
    fn transform_up_rebuilds_parents() {
        let plan = LogicalPlan::scan("r").select(col("r_id").gt(lit_i64(0)));
        // Replace every Scan with a scan of "s".
        let (rewritten, changed) = transform_up(&plan, &|node| match node {
            LogicalPlan::Scan { table } if table == "r" => Some(LogicalPlan::scan("s")),
            _ => None,
        });
        assert!(changed);
        match rewritten {
            LogicalPlan::Selection { input, .. } => {
                assert_eq!(*input, LogicalPlan::scan("s"));
            }
            other => panic!("unexpected shape: {other}"),
        }
    }

    #[test]
    fn non_converging_rule_reports_error() {
        struct Flip;
        impl OptimizerRule for Flip {
            fn name(&self) -> &'static str {
                "flip"
            }
            fn apply(&self, plan: &LogicalPlan, _: &Catalog) -> Result<Option<LogicalPlan>> {
                // always "changes" the plan by cloning it
                Ok(Some(plan.clone()))
            }
        }
        let c = catalog();
        let opt = Optimizer::new(vec![Box::new(Flip)]);
        assert!(matches!(
            opt.optimize(LogicalPlan::scan("r"), &c),
            Err(RelationalError::InvalidPlan(_))
        ));
    }
}
