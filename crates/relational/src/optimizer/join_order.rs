//! Selinger-style dynamic-programming join ordering.
//!
//! Runs between the rewrite optimizer and the physical planner (see
//! `cej-core`'s `Session::prepare`).  Two cooperating transformations:
//!
//! 1. **Ejoin placement** ([`sink` rewrites]): a relational equi-join sitting
//!    *above* a context-enhanced join is pushed *below* it whenever the
//!    equi-join shrinks the ejoin's input — ejoin cost is dominated by model
//!    calls, whose count the optimizer controls through input cardinality.
//!    A compensating [`LogicalPlan::Rename`] restores the original output
//!    schema, so the rewrite is invisible to callers.
//! 2. **Join-order DP**: every maximal region of [`LogicalPlan::Join`] nodes
//!    is flattened into a query graph (leaves + equi-edges) and re-ordered
//!    bottom-up over *connected* subsets — the classic Selinger enumeration,
//!    extended to bushy trees (every connected split is considered, not just
//!    leaf extensions).  Cross products are never enumerated while a
//!    connecting predicate exists; disconnected graphs keep their original
//!    shape.
//!
//! Cardinalities come from the catalog's `ANALYZE` statistics: leaf rows are
//! scaled by [`estimate_selectivity`] for pushed-down filters, and each
//! equi-edge contributes the classic `1 / max(ndv_left, ndv_right)`
//! selectivity.  Costs are abstract row units: build + probe + output per
//! hash join, summed over the tree.

use std::cell::RefCell;

use cej_storage::ColumnStats;

use crate::algebra::{LogicalPlan, SimilarityPredicate};
use crate::catalog::Catalog;
use crate::error::RelationalError;
use crate::expr::col;
use crate::selectivity::estimate_selectivity;
use crate::Result;

use super::transform_up;

/// Largest join region the DP enumerates (2^n subsets); bigger regions keep
/// their written order.
pub const MAX_DP_RELATIONS: usize = 14;

/// Selectivity assumed for a filter when no statistics are available
/// (mirrors the planner's default).
const DEFAULT_FILTER_SELECTIVITY: f64 = 0.5;

/// Output-row fraction of `sim >= t` assuming scores uniform over [-1, 1]
/// (mirrors `cej-core`'s `threshold_selectivity`).
fn threshold_fraction(t: f32) -> f64 {
    ((1.0 - t as f64) / 2.0).clamp(0.0, 1.0)
}

/// Computes the *physical* output column names of a plan — the names results
/// actually carry, including the ejoin's `l_*` / `r_*` / `similarity`
/// renaming (unlike [`output_columns`], which resolves the pre-rename names
/// used for pushdown side decisions).
///
/// # Errors
/// [`RelationalError::AmbiguousColumn`] when an equi-join's inputs share a
/// column name — the documented N-table naming rule: equi-joins preserve
/// names and therefore require them to be disjoint; rename first.
pub fn physical_output_columns(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<String>> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.table(table)?;
            Ok(t.schema().fields().iter().map(|f| f.name.clone()).collect())
        }
        LogicalPlan::Selection { input, .. } => physical_output_columns(input, catalog),
        LogicalPlan::Projection { columns, .. } => Ok(columns.clone()),
        LogicalPlan::Rename { columns, .. } => {
            Ok(columns.iter().map(|(_, to)| to.clone()).collect())
        }
        LogicalPlan::Embed { spec, input } => {
            let mut cols = physical_output_columns(input, catalog)?;
            cols.push(spec.output_column.clone());
            Ok(cols)
        }
        LogicalPlan::Join { left, right, .. } => {
            let mut cols = physical_output_columns(left, catalog)?;
            let right_cols = physical_output_columns(right, catalog)?;
            for c in &right_cols {
                if cols.iter().any(|l| l == c) {
                    return Err(RelationalError::AmbiguousColumn(format!(
                        "`{c}` is produced by both equi-join inputs; project or rename one side"
                    )));
                }
            }
            cols.extend(right_cols);
            Ok(cols)
        }
        LogicalPlan::EJoin { left, right, .. } => {
            let mut cols: Vec<String> = physical_output_columns(left, catalog)?
                .into_iter()
                .map(|c| format!("l_{c}"))
                .collect();
            cols.extend(
                physical_output_columns(right, catalog)?
                    .into_iter()
                    .map(|c| format!("r_{c}")),
            );
            cols.push("similarity".to_string());
            Ok(cols)
        }
    }
}

/// Estimated output rows of a plan, from catalog statistics.
pub(crate) fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table } => catalog
            .stats(table)
            .map(|s| s.row_count as f64)
            .or_else(|_| catalog.table(table).map(|t| t.num_rows() as f64))
            .unwrap_or(1000.0),
        LogicalPlan::Selection { predicate, input } => {
            let base = estimate_rows(input, catalog);
            let sel = base_table(input)
                .and_then(|t| catalog.stats(t).ok())
                .map(|s| estimate_selectivity(predicate, &s))
                .unwrap_or(DEFAULT_FILTER_SELECTIVITY);
            base * sel
        }
        LogicalPlan::Projection { input, .. }
        | LogicalPlan::Rename { input, .. }
        | LogicalPlan::Embed { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Join {
            left,
            right,
            left_column,
            right_column,
        } => {
            let lr = estimate_rows(left, catalog);
            let rr = estimate_rows(right, catalog);
            equi_join_rows(
                lr,
                rr,
                column_stats(left, left_column, catalog).as_ref(),
                column_stats(right, right_column, catalog).as_ref(),
            )
        }
        LogicalPlan::EJoin {
            left,
            right,
            predicate,
            ..
        } => {
            let lr = estimate_rows(left, catalog);
            let rr = estimate_rows(right, catalog);
            match predicate {
                SimilarityPredicate::TopK(k) => lr * (*k as f64).min(rr.max(1.0)),
                SimilarityPredicate::Threshold(t) => lr * rr * threshold_fraction(*t),
            }
        }
    }
}

/// Base table a single-source plan chain reads from (`None` below joins).
fn base_table(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { table } => Some(table),
        LogicalPlan::Selection { input, .. }
        | LogicalPlan::Projection { input, .. }
        | LogicalPlan::Rename { input, .. }
        | LogicalPlan::Embed { input, .. } => base_table(input),
        LogicalPlan::Join { .. } | LogicalPlan::EJoin { .. } => None,
    }
}

/// Full base-table statistics of `column` in the plan's output, resolved
/// through projections, renames, and joins.  Filters and joins above the
/// base table do not adjust the stats — the same approximation the ndv
/// estimate always made.
fn column_stats(plan: &LogicalPlan, column: &str, catalog: &Catalog) -> Option<ColumnStats> {
    match plan {
        LogicalPlan::Scan { table } => catalog
            .stats(table)
            .ok()
            .and_then(|s| s.column(column).cloned()),
        LogicalPlan::Selection { input, .. }
        | LogicalPlan::Projection { input, .. }
        | LogicalPlan::Embed { input, .. } => column_stats(input, column, catalog),
        LogicalPlan::Rename { columns, input } => {
            let (from, _) = columns.iter().find(|(_, to)| to == column)?;
            column_stats(input, from, catalog)
        }
        LogicalPlan::Join { left, right, .. } => {
            column_stats(left, column, catalog).or_else(|| column_stats(right, column, catalog))
        }
        LogicalPlan::EJoin { left, right, .. } => {
            if let Some(c) = column.strip_prefix("l_") {
                column_stats(left, c, catalog)
            } else if let Some(c) = column.strip_prefix("r_") {
                column_stats(right, c, catalog)
            } else {
                None
            }
        }
    }
}

/// Estimated equi-join output rows: bucket-wise histogram intersection of
/// the two key domains when both sides carry histograms
/// ([`Histogram::join_rows`]), the classic `|L|·|R| / max(ndv)` otherwise.
/// The intersection matters whenever the key domains only partially overlap
/// (a fact table referencing just the old half of a grown dimension): the
/// classic formula assumes coinciding domains and over-counts there.
fn equi_join_rows(
    lr: f64,
    rr: f64,
    left: Option<&ColumnStats>,
    right: Option<&ColumnStats>,
) -> f64 {
    if let (Some(l), Some(r)) = (left, right) {
        if let (Some(lh), Some(rh)) = (&l.histogram, &r.histogram) {
            return lh.join_rows(
                rh,
                lr,
                (l.distinct_count as f64).max(1.0),
                rr,
                (r.distinct_count as f64).max(1.0),
            );
        }
    }
    let lndv = left.map(|s| s.distinct_count as f64).unwrap_or(lr.max(1.0));
    let rndv = right
        .map(|s| s.distinct_count as f64)
        .unwrap_or(rr.max(1.0));
    (lr * rr / lndv.max(rndv).max(1.0)).max(0.0)
}

/// Entry point: re-orders every join region of `plan` (see module docs).
/// The returned plan is semantically equivalent — same result set, same
/// output schema — but may execute its joins in a different order.
pub fn reorder_joins(plan: &LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let sunk = sink_joins_below_ejoins(plan, catalog)?;
    reorder_node(&sunk, catalog)
}

// ---------------------------------------------------------------------------
// Ejoin placement: sink equi-joins below context-enhanced joins
// ---------------------------------------------------------------------------

/// Fixpoint loop over the sink / rename-pull-up rewrites, bounded like the
/// rule optimizer's pass limit.
fn sink_joins_below_ejoins(plan: &LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let mut current = plan.clone();
    for _ in 0..16 {
        let error: RefCell<Option<RelationalError>> = RefCell::new(None);
        let (next, changed) = transform_up(&current, &|node| {
            if error.borrow().is_some() {
                return None;
            }
            match try_sink(node, catalog) {
                Ok(result) => result,
                Err(e) => {
                    *error.borrow_mut() = Some(e);
                    None
                }
            }
        });
        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        if !changed {
            break;
        }
        current = next;
    }
    Ok(current)
}

/// One sink step: either pulls a compensating `Rename` out of a join's left
/// input (so the ejoin underneath becomes visible to the sink pattern), or
/// sinks the equi-join below the ejoin itself.
fn try_sink(node: &LogicalPlan, catalog: &Catalog) -> Result<Option<LogicalPlan>> {
    let LogicalPlan::Join {
        left,
        right,
        left_column,
        right_column,
    } = node
    else {
        return Ok(None);
    };
    match left.as_ref() {
        // Join over (Rename over EJoin): pull the rename above the join so a
        // later pass can sink the join into the now-exposed ejoin.
        LogicalPlan::Rename { columns, input } if matches!(**input, LogicalPlan::EJoin { .. }) => {
            let Some((from, _)) = columns.iter().find(|(_, to)| to == left_column) else {
                return Ok(None);
            };
            let mut new_columns = columns.clone();
            for c in physical_output_columns(right, catalog)? {
                if new_columns.iter().any(|(f, t)| f == &c || t == &c) {
                    return Ok(None); // would collide; leave the plan alone
                }
                new_columns.push((c.clone(), c));
            }
            Ok(Some(LogicalPlan::Rename {
                columns: new_columns,
                input: Box::new(LogicalPlan::Join {
                    left: input.clone(),
                    right: right.clone(),
                    left_column: from.clone(),
                    right_column: right_column.clone(),
                }),
            }))
        }
        LogicalPlan::EJoin {
            left: e_left,
            right: e_right,
            left_column: e_lc,
            right_column: e_rc,
            model,
            predicate,
        } => {
            let right_cols = physical_output_columns(right, catalog)?;
            // Keyed on the ejoin's outer side (`l_x`): always semantics-
            // preserving — per-outer-row top-k / threshold sets are computed
            // from the same inner relation before and after.
            if let Some(x) = left_column.strip_prefix("l_") {
                let outer_cols = physical_output_columns(e_left, catalog)?;
                if !outer_cols.iter().any(|c| c == x) {
                    return Ok(None);
                }
                if right_cols.iter().any(|c| outer_cols.contains(c)) {
                    return Ok(None); // inner join would be ambiguous
                }
                let sunk_join = LogicalPlan::Join {
                    left: e_left.clone(),
                    right: right.clone(),
                    left_column: x.to_string(),
                    right_column: right_column.clone(),
                };
                // Only sink when the equi-join shrinks the ejoin's outer
                // input — that is the whole point (fewer model calls).
                if estimate_rows(&sunk_join, catalog)
                    >= estimate_rows(e_left, catalog) * (1.0 - 1e-9)
                {
                    return Ok(None);
                }
                let inner_cols = physical_output_columns(e_right, catalog)?;
                let mut renames: Vec<(String, String)> = Vec::new();
                for c in &outer_cols {
                    renames.push((format!("l_{c}"), format!("l_{c}")));
                }
                for c in &inner_cols {
                    renames.push((format!("r_{c}"), format!("r_{c}")));
                }
                renames.push(("similarity".to_string(), "similarity".to_string()));
                for c in &right_cols {
                    renames.push((format!("l_{c}"), c.clone()));
                }
                let rewritten = LogicalPlan::Rename {
                    columns: renames,
                    input: Box::new(LogicalPlan::EJoin {
                        left: Box::new(sunk_join),
                        right: e_right.clone(),
                        left_column: e_lc.clone(),
                        right_column: e_rc.clone(),
                        model: model.clone(),
                        predicate: *predicate,
                    }),
                };
                // The rewrite must reproduce the original schema exactly.
                debug_assert_eq!(
                    physical_output_columns(&rewritten, catalog).ok(),
                    physical_output_columns(node, catalog).ok()
                );
                return Ok(Some(rewritten));
            }
            // Keyed on the ejoin's inner side (`r_x`): only valid for
            // threshold predicates — top-k winners depend on the full inner
            // set, so filtering it first would change the result.
            if let Some(x) = left_column.strip_prefix("r_") {
                if !matches!(predicate, SimilarityPredicate::Threshold(_)) {
                    return Ok(None);
                }
                let inner_cols = physical_output_columns(e_right, catalog)?;
                if !inner_cols.iter().any(|c| c == x) {
                    return Ok(None);
                }
                if right_cols.iter().any(|c| inner_cols.contains(c)) {
                    return Ok(None);
                }
                let sunk_join = LogicalPlan::Join {
                    left: e_right.clone(),
                    right: right.clone(),
                    left_column: x.to_string(),
                    right_column: right_column.clone(),
                };
                if estimate_rows(&sunk_join, catalog)
                    >= estimate_rows(e_right, catalog) * (1.0 - 1e-9)
                {
                    return Ok(None);
                }
                let outer_cols = physical_output_columns(e_left, catalog)?;
                let mut renames: Vec<(String, String)> = Vec::new();
                for c in &outer_cols {
                    renames.push((format!("l_{c}"), format!("l_{c}")));
                }
                for c in &inner_cols {
                    renames.push((format!("r_{c}"), format!("r_{c}")));
                }
                renames.push(("similarity".to_string(), "similarity".to_string()));
                for c in &right_cols {
                    renames.push((format!("r_{c}"), c.clone()));
                }
                let rewritten = LogicalPlan::Rename {
                    columns: renames,
                    input: Box::new(LogicalPlan::EJoin {
                        left: e_left.clone(),
                        right: Box::new(sunk_join),
                        left_column: e_lc.clone(),
                        right_column: e_rc.clone(),
                        model: model.clone(),
                        predicate: *predicate,
                    }),
                };
                debug_assert_eq!(
                    physical_output_columns(&rewritten, catalog).ok(),
                    physical_output_columns(node, catalog).ok()
                );
                return Ok(Some(rewritten));
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Selinger DP over equi-join regions
// ---------------------------------------------------------------------------

/// An equi-edge of the flattened query graph.
struct Edge {
    a: usize,
    a_col: String,
    b: usize,
    b_col: String,
}

/// A flattened maximal region of `Join` nodes.
struct Region {
    leaves: Vec<LogicalPlan>,
    cols: Vec<Vec<String>>,
    edges: Vec<Edge>,
}

/// A DP plan shape over region leaf indices.
enum Tree {
    Leaf(usize),
    Join {
        left: Box<Tree>,
        right: Box<Tree>,
        left_column: String,
        right_column: String,
        /// Additional equi-edges between the same two subtrees, applied as a
        /// post-join selection.
        extra: Vec<(String, String)>,
    },
}

/// One DP table entry: best known cost/rows/shape for a leaf subset.
struct Entry {
    cost: f64,
    rows: f64,
    tree: Tree,
}

/// Recursively re-orders join regions bottom-up through the plan.
fn reorder_node(plan: &LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    if matches!(plan, LogicalPlan::Join { .. }) {
        return optimize_region(plan, catalog);
    }
    Ok(match plan {
        LogicalPlan::Scan { .. } => plan.clone(),
        LogicalPlan::Selection { predicate, input } => LogicalPlan::Selection {
            predicate: predicate.clone(),
            input: Box::new(reorder_node(input, catalog)?),
        },
        LogicalPlan::Projection { columns, input } => LogicalPlan::Projection {
            columns: columns.clone(),
            input: Box::new(reorder_node(input, catalog)?),
        },
        LogicalPlan::Rename { columns, input } => LogicalPlan::Rename {
            columns: columns.clone(),
            input: Box::new(reorder_node(input, catalog)?),
        },
        LogicalPlan::Embed { spec, input } => LogicalPlan::Embed {
            spec: spec.clone(),
            input: Box::new(reorder_node(input, catalog)?),
        },
        LogicalPlan::EJoin {
            left,
            right,
            left_column,
            right_column,
            model,
            predicate,
        } => LogicalPlan::EJoin {
            left: Box::new(reorder_node(left, catalog)?),
            right: Box::new(reorder_node(right, catalog)?),
            left_column: left_column.clone(),
            right_column: right_column.clone(),
            model: model.clone(),
            predicate: *predicate,
        },
        LogicalPlan::Join { .. } => unreachable!("handled above"),
    })
}

/// Flattens a maximal `Join` subtree into `region`.  Returns `false` when
/// the region cannot be represented (duplicate column ownership).
fn flatten(plan: &LogicalPlan, catalog: &Catalog, region: &mut Region) -> Result<bool> {
    if let LogicalPlan::Join {
        left,
        right,
        left_column,
        right_column,
    } = plan
    {
        if !flatten(left, catalog, region)? || !flatten(right, catalog, region)? {
            return Ok(false);
        }
        let Some(a) = owner_of(&region.cols, left_column) else {
            return Ok(false);
        };
        let Some(b) = owner_of(&region.cols, right_column) else {
            return Ok(false);
        };
        if a == b {
            return Ok(false); // self-join edge; keep the written order
        }
        region.edges.push(Edge {
            a,
            a_col: left_column.clone(),
            b,
            b_col: right_column.clone(),
        });
        Ok(true)
    } else {
        // Region leaf: optimize its interior (it may contain nested regions,
        // e.g. below an ejoin), then record its physical columns.
        let optimized = reorder_node(plan, catalog)?;
        let cols = physical_output_columns(&optimized, catalog)?;
        // Every column must have a unique owner for edge attribution.
        for c in &cols {
            if owner_of(&region.cols, c).is_some() {
                return Ok(false);
            }
        }
        region.leaves.push(optimized);
        region.cols.push(cols);
        Ok(true)
    }
}

/// Index of the unique leaf producing `column`, if any.
fn owner_of(cols: &[Vec<String>], column: &str) -> Option<usize> {
    cols.iter()
        .position(|leaf| leaf.iter().any(|c| c == column))
}

/// Runs the DP over one region root; falls back to recursing into the
/// children when the region is not DP-able.
fn optimize_region(plan: &LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let mut region = Region {
        leaves: Vec::new(),
        cols: Vec::new(),
        edges: Vec::new(),
    };
    let flattened = flatten(plan, catalog, &mut region)?;
    let n = region.leaves.len();
    if !flattened || n < 2 {
        return fallback_rebuild(plan, catalog);
    }

    // Per-leaf estimates and per-edge selectivities.
    let leaf_rows: Vec<f64> = region
        .leaves
        .iter()
        .map(|l| estimate_rows(l, catalog).max(1.0))
        .collect();
    let edge_sel: Vec<f64> = region
        .edges
        .iter()
        .map(|e| {
            let joined = equi_join_rows(
                leaf_rows[e.a],
                leaf_rows[e.b],
                column_stats(&region.leaves[e.a], &e.a_col, catalog).as_ref(),
                column_stats(&region.leaves[e.b], &e.b_col, catalog).as_ref(),
            );
            (joined / (leaf_rows[e.a] * leaf_rows[e.b])).clamp(1e-12, 1.0)
        })
        .collect();
    let rows_of = |mask: usize| -> f64 {
        let mut rows: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| leaf_rows[i])
            .product();
        for (e, sel) in region.edges.iter().zip(&edge_sel) {
            if mask & (1 << e.a) != 0 && mask & (1 << e.b) != 0 {
                rows *= sel;
            }
        }
        rows.max(0.0)
    };

    // Regions too wide for the 2^n enumeration get a greedy min-cost-edge
    // left-deep order instead of keeping the written order: start from the
    // cheapest-output edge and repeatedly absorb the connected leaf whose
    // join keeps the intermediate smallest.  O(n²·edges) instead of 2^n,
    // and still cross-product-free (disconnected graphs fall back).
    if n > MAX_DP_RELATIONS {
        return match greedy_tree(&region, &leaf_rows, &rows_of) {
            Some(tree) => finish_region(plan, catalog, &tree, &region),
            None => fallback_rebuild(plan, catalog),
        };
    }

    // Bottom-up enumeration: every strict submask is numerically smaller, so
    // a single ascending pass visits subsets in a valid DP order.
    let mut best: Vec<Option<Entry>> = (0..1usize << n).map(|_| None).collect();
    for (i, &rows) in leaf_rows.iter().enumerate() {
        best[1 << i] = Some(Entry {
            cost: rows,
            rows,
            tree: Tree::Leaf(i),
        });
    }
    for mask in 1..1usize << n {
        if (mask as u64).count_ones() < 2 {
            continue;
        }
        let out_rows = rows_of(mask);
        let low = mask & mask.wrapping_neg(); // canonical split: keep lowest bit left
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask ^ sub;
            if sub & low != 0 {
                // Selinger cross-product avoidance: a split is only priced
                // when an equi-edge connects the two halves.
                let connecting: Vec<usize> = region
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| {
                        (sub & (1 << e.a) != 0 && other & (1 << e.b) != 0)
                            || (sub & (1 << e.b) != 0 && other & (1 << e.a) != 0)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if !connecting.is_empty() {
                    if let (Some(se), Some(oe)) = (&best[sub], &best[other]) {
                        let cost = se.cost + oe.cost + se.rows + oe.rows + out_rows;
                        let better = match &best[mask] {
                            None => true,
                            Some(existing) => cost < existing.cost,
                        };
                        if better {
                            // Probe with the larger side, build on the
                            // smaller (hash joins build their right input).
                            let (probe_mask, build_mask) = if se.rows >= oe.rows {
                                (sub, other)
                            } else {
                                (other, sub)
                            };
                            let first = &region.edges[connecting[0]];
                            let (lc, rc) = if probe_mask & (1 << first.a) != 0 {
                                (first.a_col.clone(), first.b_col.clone())
                            } else {
                                (first.b_col.clone(), first.a_col.clone())
                            };
                            let extra = connecting[1..]
                                .iter()
                                .map(|&i| {
                                    let e = &region.edges[i];
                                    if probe_mask & (1 << e.a) != 0 {
                                        (e.a_col.clone(), e.b_col.clone())
                                    } else {
                                        (e.b_col.clone(), e.a_col.clone())
                                    }
                                })
                                .collect();
                            let probe = rebuild_tree(&best, probe_mask);
                            let build = rebuild_tree(&best, build_mask);
                            best[mask] = Some(Entry {
                                cost,
                                rows: out_rows,
                                tree: Tree::Join {
                                    left: Box::new(probe),
                                    right: Box::new(build),
                                    left_column: lc,
                                    right_column: rc,
                                    extra,
                                },
                            });
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
    }

    let full = (1usize << n) - 1;
    if best[full].is_none() {
        // Disconnected query graph: a cross product is unavoidable, which
        // the DP refuses to price — keep the written order.
        return fallback_rebuild(plan, catalog);
    }
    let chosen = best[full].take().expect("checked above");
    finish_region(plan, catalog, &chosen.tree, &region)
}

/// Materialises an ordered tree and restores the original output column
/// order (join re-ordering permutes the concatenation) so the rewrite stays
/// schema-invisible.
fn finish_region(
    plan: &LogicalPlan,
    catalog: &Catalog,
    tree: &Tree,
    region: &Region,
) -> Result<LogicalPlan> {
    let (ordered, ordered_cols) = emit(tree, region);
    let original_cols = physical_output_columns(plan, catalog)?;
    if ordered_cols == original_cols {
        Ok(ordered)
    } else {
        Ok(LogicalPlan::Rename {
            columns: original_cols.into_iter().map(|c| (c.clone(), c)).collect(),
            input: Box::new(ordered),
        })
    }
}

/// Greedy left-deep ordering for regions wider than [`MAX_DP_RELATIONS`]:
/// seed with the edge whose join output is smallest, then repeatedly join in
/// the connected leaf that keeps the running intermediate smallest.  Returns
/// `None` when the query graph is disconnected (a cross product would be
/// required — keep the written order instead).
fn greedy_tree(region: &Region, leaf_rows: &[f64], rows_of: &dyn Fn(usize) -> f64) -> Option<Tree> {
    let n = region.leaves.len();
    // Seed: the edge with the smallest joined output.
    let seed = region.edges.iter().min_by(|x, y| {
        let rx = rows_of((1 << x.a) | (1 << x.b));
        let ry = rows_of((1 << y.a) | (1 << y.b));
        rx.partial_cmp(&ry).unwrap_or(std::cmp::Ordering::Equal)
    })?;
    // Probe with the larger side, build on the smaller, like the DP.
    let (probe, build) = if leaf_rows[seed.a] >= leaf_rows[seed.b] {
        (seed.a, seed.b)
    } else {
        (seed.b, seed.a)
    };
    let (lc, rc) = if probe == seed.a {
        (seed.a_col.clone(), seed.b_col.clone())
    } else {
        (seed.b_col.clone(), seed.a_col.clone())
    };
    let mut mask = (1 << seed.a) | (1 << seed.b);
    let mut extra = Vec::new();
    for e in &region.edges {
        if ((1 << e.a) | (1 << e.b)) == mask && !std::ptr::eq(e, seed) {
            extra.push(if probe == e.a {
                (e.a_col.clone(), e.b_col.clone())
            } else {
                (e.b_col.clone(), e.a_col.clone())
            });
        }
    }
    let mut tree = Tree::Join {
        left: Box::new(Tree::Leaf(probe)),
        right: Box::new(Tree::Leaf(build)),
        left_column: lc,
        right_column: rc,
        extra,
    };
    while mask != (1 << n) - 1 {
        // Candidate leaves: outside the joined set, connected to it.
        let next = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .filter(|i| {
                region.edges.iter().any(|e| {
                    (e.a == *i && mask & (1 << e.b) != 0) || (e.b == *i && mask & (1 << e.a) != 0)
                })
            })
            .min_by(|&x, &y| {
                let rx = rows_of(mask | (1 << x));
                let ry = rows_of(mask | (1 << y));
                rx.partial_cmp(&ry).unwrap_or(std::cmp::Ordering::Equal)
            })?;
        // All edges connecting the joined set to the new leaf: first one
        // keys the join, the rest become post-join selections.
        let connecting: Vec<&Edge> = region
            .edges
            .iter()
            .filter(|e| {
                (e.a == next && mask & (1 << e.b) != 0) || (e.b == next && mask & (1 << e.a) != 0)
            })
            .collect();
        let first = connecting[0];
        // The running intermediate is the probe (left) side; `next` builds.
        let orient = |e: &Edge| {
            if e.b == next {
                (e.a_col.clone(), e.b_col.clone())
            } else {
                (e.b_col.clone(), e.a_col.clone())
            }
        };
        let (lc, rc) = orient(first);
        let extra = connecting[1..].iter().map(|e| orient(e)).collect();
        tree = Tree::Join {
            left: Box::new(tree),
            right: Box::new(Tree::Leaf(next)),
            left_column: lc,
            right_column: rc,
            extra,
        };
        mask |= 1 << next;
    }
    Some(tree)
}

/// Clones the stored tree for `mask` (trees are small; the DP stores the
/// shape rather than back-pointers for simplicity).
fn rebuild_tree(best: &[Option<Entry>], mask: usize) -> Tree {
    fn clone_tree(t: &Tree) -> Tree {
        match t {
            Tree::Leaf(i) => Tree::Leaf(*i),
            Tree::Join {
                left,
                right,
                left_column,
                right_column,
                extra,
            } => Tree::Join {
                left: Box::new(clone_tree(left)),
                right: Box::new(clone_tree(right)),
                left_column: left_column.clone(),
                right_column: right_column.clone(),
                extra: extra.clone(),
            },
        }
    }
    clone_tree(&best[mask].as_ref().expect("DP entry must exist").tree)
}

/// Materialises a DP tree back into a `LogicalPlan`, returning the plan and
/// its output column order.
fn emit(tree: &Tree, region: &Region) -> (LogicalPlan, Vec<String>) {
    match tree {
        Tree::Leaf(i) => (region.leaves[*i].clone(), region.cols[*i].clone()),
        Tree::Join {
            left,
            right,
            left_column,
            right_column,
            extra,
        } => {
            let (lp, mut lc) = emit(left, region);
            let (rp, rc) = emit(right, region);
            let mut plan = LogicalPlan::Join {
                left: Box::new(lp),
                right: Box::new(rp),
                left_column: left_column.clone(),
                right_column: right_column.clone(),
            };
            for (a, b) in extra {
                plan = plan.select(col(a).eq(col(b)));
            }
            lc.extend(rc);
            (plan, lc)
        }
    }
}

/// Keeps the written join order but still recurses into the region's
/// immediate inputs (they may contain optimizable regions of their own).
fn fallback_rebuild(plan: &LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let LogicalPlan::Join {
        left,
        right,
        left_column,
        right_column,
    } = plan
    else {
        return reorder_node(plan, catalog);
    };
    let l = if matches!(**left, LogicalPlan::Join { .. }) {
        fallback_rebuild(left, catalog)?
    } else {
        reorder_node(left, catalog)?
    };
    let r = if matches!(**right, LogicalPlan::Join { .. }) {
        fallback_rebuild(right, catalog)?
    } else {
        reorder_node(right, catalog)?
    };
    Ok(LogicalPlan::Join {
        left: Box::new(l),
        right: Box::new(r),
        left_column: left_column.clone(),
        right_column: right_column.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit_i64;
    use cej_storage::TableBuilder;

    /// fact(fk1, fk2, caption) 1000 rows; dim1(id, tag) 100 rows;
    /// dim2(id, price) 10 rows; ctx(title) 50 rows.
    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(
            "fact",
            TableBuilder::new()
                .int64("fk1", (0..1000).map(|i| i % 100).collect())
                .int64("fk2", (0..1000).map(|i| i % 10).collect())
                .utf8("caption", (0..1000).map(|i| format!("cap {i}")).collect())
                .build()
                .unwrap(),
        );
        c.register(
            "dim1",
            TableBuilder::new()
                .int64("id", (0..100).collect())
                .int64("tag", (0..100).map(|i| i % 4).collect())
                .build()
                .unwrap(),
        );
        c.register(
            "dim2",
            TableBuilder::new()
                .int64("d2_id", (0..10).collect())
                .int64("price", (0..10).map(|i| i * 7).collect())
                .build()
                .unwrap(),
        );
        c.register(
            "ctx",
            TableBuilder::new()
                .utf8("title", (0..50).map(|i| format!("title {i}")).collect())
                .build()
                .unwrap(),
        );
        for t in ["fact", "dim1", "dim2", "ctx"] {
            c.analyze(t).unwrap();
        }
        c
    }

    fn leaf_tables(plan: &LogicalPlan, acc: &mut Vec<String>) {
        match plan {
            LogicalPlan::Scan { table } => acc.push(table.clone()),
            _ => {
                for c in plan.children() {
                    leaf_tables(c, acc);
                }
            }
        }
    }

    #[test]
    fn physical_columns_of_ejoin_are_prefixed() {
        let c = catalog();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("fact"),
            LogicalPlan::scan("ctx"),
            "caption",
            "title",
            "m",
            SimilarityPredicate::TopK(2),
        );
        assert_eq!(
            physical_output_columns(&plan, &c).unwrap(),
            vec!["l_fk1", "l_fk2", "l_caption", "r_title", "similarity"]
        );
    }

    #[test]
    fn join_with_duplicate_columns_is_ambiguous() {
        let c = catalog();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("dim1"),
            LogicalPlan::scan("dim1"),
            "id",
            "id",
        );
        assert!(matches!(
            physical_output_columns(&plan, &c),
            Err(RelationalError::AmbiguousColumn(_))
        ));
        // rename on one side resolves the ambiguity
        let renamed = LogicalPlan::join(
            LogicalPlan::scan("dim1"),
            LogicalPlan::scan("dim1").rename(&[("id", "id2"), ("tag", "tag2")]),
            "id",
            "id2",
        );
        let cols = physical_output_columns(&renamed, &c).unwrap();
        assert_eq!(cols, vec!["id", "tag", "id2", "tag2"]);
    }

    #[test]
    fn dp_orders_selective_dimension_first() {
        let c = catalog();
        // Written order joins the (unfiltered) dim1 first, the highly
        // selective dim2 last; the DP must flip that.
        let written = LogicalPlan::join(
            LogicalPlan::join(
                LogicalPlan::scan("fact"),
                LogicalPlan::scan("dim1"),
                "fk1",
                "id",
            ),
            LogicalPlan::scan("dim2").select(col("price").lt(lit_i64(7))),
            "fk2",
            "d2_id",
        );
        let ordered = reorder_joins(&written, &c).unwrap();
        // Schema must be preserved exactly.
        assert_eq!(
            physical_output_columns(&ordered, &c).unwrap(),
            physical_output_columns(&written, &c).unwrap()
        );
        // The first join applied to fact must now involve dim2 (1 row after
        // the filter) rather than dim1: some join node's leaves must be
        // exactly {fact, dim2}.
        fn has_fact_dim2_join(plan: &LogicalPlan) -> bool {
            if let LogicalPlan::Join { .. } = plan {
                let mut tables = Vec::new();
                leaf_tables(plan, &mut tables);
                tables.sort();
                if tables == ["dim2".to_string(), "fact".to_string()] {
                    return true;
                }
            }
            plan.children().iter().any(|c| has_fact_dim2_join(c))
        }
        assert!(
            has_fact_dim2_join(&ordered),
            "selective dim2 should join fact first:\n{ordered}"
        );
    }

    #[test]
    fn dp_never_prices_a_cross_product_when_edges_exist() {
        let c = catalog();
        // Chain graph: dim1 — fact — dim2 (no dim1–dim2 edge).  dim1 and
        // dim2 are tiny, so a greedy enumerator would pair them first; the
        // cross product must never appear in the DP result.
        let written = LogicalPlan::join(
            LogicalPlan::join(
                LogicalPlan::scan("fact"),
                LogicalPlan::scan("dim1"),
                "fk1",
                "id",
            ),
            LogicalPlan::scan("dim2"),
            "fk2",
            "d2_id",
        );
        let ordered = reorder_joins(&written, &c).unwrap();
        fn no_cross(plan: &LogicalPlan) {
            if let LogicalPlan::Join { left, right, .. } = plan {
                let mut lt = Vec::new();
                let mut rt = Vec::new();
                leaf_tables(left, &mut lt);
                leaf_tables(right, &mut rt);
                let disconnected = (lt == vec!["dim1".to_string()]
                    && rt == vec!["dim2".to_string()])
                    || (lt == vec!["dim2".to_string()] && rt == vec!["dim1".to_string()]);
                assert!(!disconnected, "cross product dim1 × dim2 in plan");
            }
            for ch in plan.children() {
                no_cross(ch);
            }
        }
        no_cross(&ordered);
    }

    #[test]
    fn equi_join_sinks_below_ejoin_when_selective() {
        let c = catalog();
        // ejoin(fact, ctx) first, then a very selective dim2 join keyed on
        // the ejoin's outer side: the sink rewrite must push the equi-join
        // below the ejoin (fewer model calls) and hide it behind a Rename.
        let written = LogicalPlan::join(
            LogicalPlan::e_join(
                LogicalPlan::scan("fact"),
                LogicalPlan::scan("ctx"),
                "caption",
                "title",
                "m",
                SimilarityPredicate::Threshold(0.5),
            ),
            LogicalPlan::scan("dim2").select(col("price").lt(lit_i64(7))),
            "l_fk2",
            "d2_id",
        );
        let ordered = reorder_joins(&written, &c).unwrap();
        assert_eq!(
            physical_output_columns(&ordered, &c).unwrap(),
            physical_output_columns(&written, &c).unwrap(),
            "sink rewrite must preserve the output schema"
        );
        // After the rewrite the equi-join must sit below the ejoin.
        let display = ordered.to_string();
        let ejoin_pos = display.find("EJoin").unwrap();
        let join_pos = display.find("Join:").unwrap();
        assert!(
            join_pos > ejoin_pos,
            "equi-join should print below the ejoin:\n{display}"
        );
    }

    #[test]
    fn topk_ejoin_never_sinks_into_inner_side() {
        let c = catalog();
        // Join keyed on the ejoin's *inner* side with top-k semantics: the
        // rewrite would change which k rows win, so it must not fire.
        let written = LogicalPlan::join(
            LogicalPlan::e_join(
                LogicalPlan::scan("dim1"),
                LogicalPlan::scan("fact"),
                "tag",
                "caption",
                "m",
                SimilarityPredicate::TopK(3),
            ),
            LogicalPlan::scan("dim2"),
            "r_fk2",
            "d2_id",
        );
        let ordered = reorder_joins(&written, &c).unwrap();
        assert_eq!(ordered, written, "top-k inner-side sink must not fire");
    }

    /// Sum of estimated intermediate rows over every equi-join in the plan —
    /// the cost measure the ordering tests compare plans by.
    fn summed_join_rows(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
        let own = if matches!(plan, LogicalPlan::Join { .. }) {
            estimate_rows(plan, catalog)
        } else {
            0.0
        };
        own + plan
            .children()
            .iter()
            .map(|c| summed_join_rows(c, catalog))
            .sum::<f64>()
    }

    #[test]
    fn skewed_fk_join_estimate_uses_histogram_intersection() {
        // A "grown dimension" workload: the dimension covers keys 50..150
        // but the fact only references 0..100 — half its rows are dangling,
        // and 500 of them pile onto the single hot key 75.
        let c = Catalog::new();
        let mut fks: Vec<i64> = vec![75; 500];
        fks.extend((0..500).map(|i| i % 100));
        c.register(
            "skew_fact",
            TableBuilder::new().int64("fk", fks).build().unwrap(),
        );
        c.register(
            "grown_dim",
            TableBuilder::new()
                .int64("id", (50..150).collect())
                .build()
                .unwrap(),
        );
        let plan = LogicalPlan::join(
            LogicalPlan::scan("skew_fact"),
            LogicalPlan::scan("grown_dim"),
            "fk",
            "id",
        );
        let est = estimate_rows(&plan, &c);
        // True output: 500 (hot key) + 250 (uniform rows in the overlap).
        // The classic |L|·|R|/max(ndv) formula says 1000·100/100 = 1000.
        assert!(
            (600.0..=900.0).contains(&est),
            "histogram intersection estimate {est} should be near 750, not the classic 1000"
        );
    }

    #[test]
    fn wide_chain_uses_greedy_order_and_beats_written() {
        // 16-relation chain r0 — r1 — … — r15 (beyond MAX_DP_RELATIONS=14).
        // Every table has 400 rows with unique keys except r15, which has a
        // single row: joining from the r15 end carries a 1-row intermediate
        // across the whole chain, while the written order drags 400 rows
        // through every join.
        const N: usize = 16;
        let c = Catalog::new();
        for i in 0..N {
            let rows: Vec<i64> = if i == N - 1 {
                vec![0]
            } else {
                (0..400).collect()
            };
            c.register(
                &format!("r{i}"),
                TableBuilder::new()
                    .int64(&format!("a{i}"), rows.clone())
                    .int64(&format!("b{i}"), rows)
                    .build()
                    .unwrap(),
            );
        }
        // written: (((r0 ⋈ r1) ⋈ r2) ⋈ …) on b{i} = a{i+1}
        let mut written = LogicalPlan::scan("r0");
        for i in 1..N {
            written = LogicalPlan::join(
                written,
                LogicalPlan::scan(&format!("r{i}")),
                &format!("b{}", i - 1),
                &format!("a{i}"),
            );
        }
        let ordered = reorder_joins(&written, &c).unwrap();
        assert_eq!(
            physical_output_columns(&ordered, &c).unwrap(),
            physical_output_columns(&written, &c).unwrap(),
            "greedy reorder must preserve the output schema"
        );
        let written_cost = summed_join_rows(&written, &c);
        let greedy_cost = summed_join_rows(&ordered, &c);
        assert!(
            greedy_cost < written_cost / 10.0,
            "greedy ({greedy_cost}) should beat written order ({written_cost}) on the chain"
        );
    }

    #[test]
    fn estimates_follow_stats() {
        let c = catalog();
        let fact = LogicalPlan::scan("fact");
        assert!((estimate_rows(&fact, &c) - 1000.0).abs() < 1e-9);
        // fact ⋈ dim1 on fk1=id is a perfect FK join: ~1000 output rows.
        // The histogram intersection lands near the classic 1000 (within
        // one-bucket interpolation error).
        let j = LogicalPlan::join(
            LogicalPlan::scan("fact"),
            LogicalPlan::scan("dim1"),
            "fk1",
            "id",
        );
        let est = estimate_rows(&j, &c);
        assert!((est - 1000.0).abs() < 200.0, "FK join estimate {est}");
    }
}
