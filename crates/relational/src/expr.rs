//! Relational scalar expressions.
//!
//! Only the expression surface the paper's queries need is implemented:
//! column references, literals, comparisons, and boolean combinators — enough
//! to express the running example ("`taken > 2023-12-02`") and the
//! selectivity-controlled filters of the evaluation.

use std::collections::BTreeSet;
use std::fmt;

use cej_storage::{scalar::date, ScalarValue};
use serde::{Deserialize, Serialize};

use crate::error::RelationalError;
use crate::Result;

/// Comparison operators over orderable scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    NotEq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "!=",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar predicate expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal value.
    Literal(ScalarValue),
    /// Comparison between two sub-expressions.
    Compare {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: CompareOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// The set of column names referenced by this expression.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(name) => {
                out.insert(name.clone());
            }
            Expr::Literal(_) => {}
            Expr::Compare { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// `true` when the expression only references columns in `available`.
    pub fn only_references(&self, available: &[&str]) -> bool {
        self.referenced_columns()
            .iter()
            .all(|c| available.contains(&c.as_str()))
    }

    /// Conjunction helper.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    fn compare(self, op: CompareOp, other: Expr) -> Expr {
        Expr::Compare {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.compare(CompareOp::Eq, other)
    }

    /// `self != other`.
    pub fn not_eq(self, other: Expr) -> Expr {
        self.compare(CompareOp::NotEq, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.compare(CompareOp::Lt, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.compare(CompareOp::LtEq, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.compare(CompareOp::Gt, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.compare(CompareOp::GtEq, other)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Compare { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(inner) => write!(f, "(NOT {inner})"),
        }
    }
}

/// Column reference helper.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

/// Generic literal helper.
pub fn lit(value: ScalarValue) -> Expr {
    Expr::Literal(value)
}

/// Integer literal helper.
pub fn lit_i64(value: i64) -> Expr {
    Expr::Literal(ScalarValue::Int64(value))
}

/// Float literal helper.
pub fn lit_f64(value: f64) -> Expr {
    Expr::Literal(ScalarValue::Float64(value))
}

/// String literal helper.
pub fn lit_str(value: &str) -> Expr {
    Expr::Literal(ScalarValue::Utf8(value.to_string()))
}

/// Date literal helper from an ISO `YYYY-MM-DD` string.
///
/// # Errors
/// Returns [`RelationalError::Storage`] wrapping a parse error for malformed
/// literals.
pub fn lit_date(iso: &str) -> Result<Expr> {
    let days = date::parse_iso(iso).map_err(RelationalError::from)?;
    Ok(Expr::Literal(ScalarValue::Date(days)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_compose() {
        let e = col("taken")
            .gt(lit_date("2023-12-02").unwrap())
            .and(col("id").lt_eq(lit_i64(10)));
        let cols = e.referenced_columns();
        assert!(cols.contains("taken"));
        assert!(cols.contains("id"));
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = col("a")
            .eq(lit_i64(3))
            .or(col("b").not_eq(lit_str("x")).not());
        let s = e.to_string();
        assert!(s.contains("a = 3"));
        assert!(s.contains("OR"));
        assert!(s.contains("NOT"));
    }

    #[test]
    fn only_references_checks_scope() {
        let e = col("taken").gt(lit_i64(5));
        assert!(e.only_references(&["taken", "id"]));
        assert!(!e.only_references(&["id"]));
        let lit_only = lit_i64(5).eq(lit_i64(5));
        assert!(lit_only.only_references(&[]));
    }

    #[test]
    fn all_compare_ops_display() {
        for (op, s) in [
            (CompareOp::Eq, "="),
            (CompareOp::NotEq, "!="),
            (CompareOp::Lt, "<"),
            (CompareOp::LtEq, "<="),
            (CompareOp::Gt, ">"),
            (CompareOp::GtEq, ">="),
        ] {
            assert_eq!(op.to_string(), s);
        }
    }

    #[test]
    fn lit_date_parses_and_rejects() {
        assert!(lit_date("2024-01-31").is_ok());
        assert!(lit_date("garbage").is_err());
    }

    #[test]
    fn float_and_literal_helpers() {
        assert_eq!(lit_f64(0.5), Expr::Literal(ScalarValue::Float64(0.5)));
        assert_eq!(
            lit(ScalarValue::Bool(true)),
            Expr::Literal(ScalarValue::Bool(true))
        );
    }
}
