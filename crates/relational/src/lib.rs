//! # cej-relational
//!
//! Relational expressions, the extended logical algebra with the embedding
//! operator `E_µ`, the rule-based optimizer, and physical execution of the
//! purely relational operators.
//!
//! The paper (Section III) extends relational algebra with an embedding
//! operator that is composable with selections and θ-joins:
//!
//! * `E_µ(R)` maps a context-rich column of `R` into vector space,
//! * `σ_{E,µ,θ}(R) ⇔ σ_θE(E_µ(σ_θR(R)))` — relational predicates can be
//!   pushed below the embedding (E-Selection), and
//! * `R ⋈_{E,µ,θ} S ⇔ E_µ(R) ⋈_θ E_µ(S)` — the context-enhanced join
//!   (E-θ-Join).
//!
//! This crate implements that algebra as a [`LogicalPlan`] tree
//! ([`algebra`]), the algebraic rewrites as optimizer rules ([`optimizer`]) —
//! most importantly *relational predicate pushdown below the embedding
//! operator*, which is what keeps the expensive model invocations off the
//! unfiltered inputs — and a small physical executor ([`physical`]) for the
//! relational and embedding operators.  The join operators themselves (the
//! paper's core contribution) live in `cej-core`, which consumes the plans
//! produced here.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algebra;
pub mod catalog;
pub mod error;
pub mod eval;
pub mod expr;
pub mod optimizer;
pub mod physical;
pub mod selectivity;

pub use algebra::{EmbedSpec, JoinSide, LogicalPlan, SimilarityPredicate};
pub use catalog::Catalog;
pub use error::RelationalError;
pub use expr::{col, lit, lit_date, lit_f64, lit_i64, lit_str, CompareOp, Expr};
pub use optimizer::{physical_output_columns, reorder_joins, Optimizer, OptimizerRule};
pub use physical::ModelRegistry;
pub use selectivity::{check_predicate, estimate_selectivity};

/// Result alias for the relational layer.
pub type Result<T> = std::result::Result<T, RelationalError>;
