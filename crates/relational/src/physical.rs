//! Physical execution of the relational and embedding operators.
//!
//! Scans, selections, projections, and the embedding operator are executed
//! here; the context-enhanced join itself — the paper's contribution — has
//! several physical implementations that live in `cej-core` and consume the
//! tables produced by this executor for the two join inputs.

use std::collections::HashMap;
use std::sync::Arc;

use cej_embedding::Embedder;
use cej_storage::{Column, Table};

use crate::algebra::{EmbedSpec, LogicalPlan};
use crate::catalog::Catalog;
use crate::error::RelationalError;
use crate::eval::evaluate_predicate;
use crate::Result;

/// A named registry of embedding models available to plans.
///
/// Plans refer to models by name (the declarative interface of the paper:
/// "the user should only specify the embedding model and a threshold"); the
/// registry resolves the name at execution time.
#[derive(Clone, Default)]
pub struct ModelRegistry {
    models: HashMap<String, Arc<dyn Embedder>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.model_names())
            .finish()
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model under `name`.
    pub fn register(&mut self, name: &str, model: Arc<dyn Embedder>) {
        self.models.insert(name.to_string(), model);
    }

    /// Resolves a model by name.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownModel`] when absent.
    pub fn model(&self, name: &str) -> Result<Arc<dyn Embedder>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownModel(name.to_string()))
    }

    /// Registered model names (unsorted).
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    /// Whether a model with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }
}

/// Executes the relational portion of a plan (everything except `EJoin`),
/// returning the materialised table.
///
/// # Errors
/// Returns [`RelationalError::InvalidPlan`] when the plan contains an
/// `EJoin` node (joins are executed by `cej-core`), plus any catalog, model,
/// or evaluation errors.
pub fn execute_relational(
    plan: &LogicalPlan,
    catalog: &Catalog,
    models: &ModelRegistry,
) -> Result<Table> {
    match plan {
        LogicalPlan::Scan { table } => Ok(catalog.table(table)?.as_ref().clone()),
        LogicalPlan::Selection { predicate, input } => {
            let table = execute_relational(input, catalog, models)?;
            let selection = evaluate_predicate(predicate, &table)?;
            table.filter(&selection).map_err(RelationalError::from)
        }
        LogicalPlan::Projection { columns, input } => {
            let table = execute_relational(input, catalog, models)?;
            let names: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
            table.project(&names).map_err(RelationalError::from)
        }
        LogicalPlan::Embed { spec, input } => {
            let table = execute_relational(input, catalog, models)?;
            apply_embedding(&table, spec, models)
        }
        LogicalPlan::EJoin { .. } => Err(RelationalError::InvalidPlan(
            "EJoin nodes are executed by the cej-core join operators, not the relational executor"
                .into(),
        )),
    }
}

/// Applies the embedding operator `E_µ` to one column of a table, appending
/// the embedding column named by the spec.
///
/// # Errors
/// Returns model-resolution, column-lookup, and type errors.
pub fn apply_embedding(table: &Table, spec: &EmbedSpec, models: &ModelRegistry) -> Result<Table> {
    let model = models.model(&spec.model)?;
    let strings = table
        .column_by_name(&spec.input_column)
        .map_err(|_| RelationalError::UnknownColumn(spec.input_column.clone()))?
        .as_utf8()
        .map_err(RelationalError::from)?;
    let matrix = model.embed_batch(strings);
    table
        .with_column(&spec.output_column, Column::Vector(matrix))
        .map_err(RelationalError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::SimilarityPredicate;
    use crate::expr::{col, lit_i64};
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_storage::{DataType, TableBuilder};

    fn setup() -> (Catalog, ModelRegistry) {
        let mut catalog = Catalog::new();
        catalog.register(
            "photos",
            TableBuilder::new()
                .int64("id", vec![1, 2, 3])
                .utf8(
                    "caption",
                    vec!["bbq party".into(), "database talk".into(), "grill".into()],
                )
                .date("taken", vec![10, 20, 30])
                .build()
                .unwrap(),
        );
        let mut models = ModelRegistry::new();
        let model = FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap();
        models.register("fasttext", Arc::new(model));
        (catalog, models)
    }

    #[test]
    fn registry_lookup() {
        let (_, models) = setup();
        assert!(models.contains("fasttext"));
        assert!(models.model("fasttext").is_ok());
        assert!(matches!(
            models.model("bert"),
            Err(RelationalError::UnknownModel(_))
        ));
        assert_eq!(models.model_names(), vec!["fasttext"]);
        assert!(format!("{models:?}").contains("fasttext"));
    }

    #[test]
    fn scan_and_selection_execute() {
        let (catalog, models) = setup();
        let plan = LogicalPlan::scan("photos").select(col("id").gt(lit_i64(1)));
        let out = execute_relational(&plan, &catalog, &models).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn projection_executes() {
        let (catalog, models) = setup();
        let plan = LogicalPlan::scan("photos").project(&["caption"]);
        let out = execute_relational(&plan, &catalog, &models).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn embedding_appends_vector_column() {
        let (catalog, models) = setup();
        let plan = LogicalPlan::scan("photos").embed(EmbedSpec::new("caption", "fasttext"));
        let out = execute_relational(&plan, &catalog, &models).unwrap();
        assert_eq!(out.num_columns(), 4);
        let field = out.schema().field("caption_emb").unwrap();
        assert_eq!(field.data_type, DataType::Vector(16));
        // embedding rows correspond to input rows
        let emb = out
            .column_by_name("caption_emb")
            .unwrap()
            .as_vectors()
            .unwrap();
        assert_eq!(emb.rows(), 3);
    }

    #[test]
    fn selection_below_embedding_reduces_model_work() {
        let (catalog, models) = setup();
        let plan = LogicalPlan::scan("photos")
            .select(col("id").gt(lit_i64(2)))
            .embed(EmbedSpec::new("caption", "fasttext"));
        let out = execute_relational(&plan, &catalog, &models).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "caption").unwrap().as_str(), Some("grill"));
    }

    #[test]
    fn ejoin_rejected_by_relational_executor() {
        let (catalog, models) = setup();
        let plan = LogicalPlan::e_join(
            LogicalPlan::scan("photos"),
            LogicalPlan::scan("photos"),
            "caption",
            "caption",
            "fasttext",
            SimilarityPredicate::TopK(1),
        );
        assert!(matches!(
            execute_relational(&plan, &catalog, &models),
            Err(RelationalError::InvalidPlan(_))
        ));
    }

    #[test]
    fn unknown_table_model_and_column_errors() {
        let (catalog, models) = setup();
        assert!(execute_relational(&LogicalPlan::scan("nope"), &catalog, &models).is_err());
        let bad_model = LogicalPlan::scan("photos").embed(EmbedSpec::new("caption", "bert"));
        assert!(matches!(
            execute_relational(&bad_model, &catalog, &models),
            Err(RelationalError::UnknownModel(_))
        ));
        let bad_column = LogicalPlan::scan("photos").embed(EmbedSpec::new("nope", "fasttext"));
        assert!(matches!(
            execute_relational(&bad_column, &catalog, &models),
            Err(RelationalError::UnknownColumn(_))
        ));
        // embedding a non-string column is a type error
        let bad_type = LogicalPlan::scan("photos").embed(EmbedSpec::new("id", "fasttext"));
        assert!(execute_relational(&bad_type, &catalog, &models).is_err());
    }
}
