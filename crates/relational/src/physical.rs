//! Execution-facing pieces of the relational layer: the model registry and
//! the embedding operator kernel.
//!
//! Physical *lowering* does not live here.  Plans — including the purely
//! relational operators (scan, selection, projection) — are lowered to an
//! explicit physical operator tree by `cej-core`'s `Planner` and executed by
//! its `PhysicalPlan` executor, which consults the
//! [`ModelRegistry`] defined here to resolve model names and calls
//! [`apply_embedding`] for `Embed` nodes.  This module keeps only what the
//! algebra itself owes the execution layer: name resolution and the `E_µ`
//! kernel.

use std::collections::HashMap;
use std::sync::Arc;

use cej_embedding::Embedder;
use cej_storage::{Column, Table};

use crate::algebra::EmbedSpec;
use crate::error::RelationalError;
use crate::Result;

/// A named registry of embedding models available to plans.
///
/// Plans refer to models by name (the declarative interface of the paper:
/// "the user should only specify the embedding model and a threshold"); the
/// registry resolves the name at plan and execution time.  The registry is
/// cheap to clone (models are `Arc`-shared) and is itself held in an `Arc`
/// by the session so prepared queries share one instance.
#[derive(Clone, Default)]
pub struct ModelRegistry {
    models: HashMap<String, Arc<dyn Embedder>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.model_names())
            .finish()
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model under `name`.
    pub fn register(&mut self, name: &str, model: Arc<dyn Embedder>) {
        self.models.insert(name.to_string(), model);
    }

    /// Resolves a model by name.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownModel`] when absent.
    pub fn model(&self, name: &str) -> Result<Arc<dyn Embedder>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownModel(name.to_string()))
    }

    /// Registered model names (unsorted).
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(|s| s.as_str()).collect()
    }

    /// Whether a model with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.models.contains_key(name)
    }
}

/// Applies the embedding operator `E_µ` to one column of a table, appending
/// the embedding column named by the spec.
///
/// # Errors
/// Returns model-resolution, column-lookup, and type errors.
pub fn apply_embedding(table: &Table, spec: &EmbedSpec, models: &ModelRegistry) -> Result<Table> {
    let model = models.model(&spec.model)?;
    let strings = table
        .column_by_name(&spec.input_column)
        .map_err(|_| RelationalError::UnknownColumn(spec.input_column.clone()))?
        .as_utf8()
        .map_err(RelationalError::from)?;
    let matrix = model.embed_batch(strings);
    table
        .with_column(&spec.output_column, Column::Vector(matrix))
        .map_err(RelationalError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_embedding::{FastTextConfig, FastTextModel};
    use cej_storage::{DataType, TableBuilder};

    fn setup() -> (Table, ModelRegistry) {
        let table = TableBuilder::new()
            .int64("id", vec![1, 2, 3])
            .utf8(
                "caption",
                vec!["bbq party".into(), "database talk".into(), "grill".into()],
            )
            .date("taken", vec![10, 20, 30])
            .build()
            .unwrap();
        let mut models = ModelRegistry::new();
        let model = FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap();
        models.register("fasttext", Arc::new(model));
        (table, models)
    }

    #[test]
    fn registry_lookup() {
        let (_, models) = setup();
        assert!(models.contains("fasttext"));
        assert!(models.model("fasttext").is_ok());
        assert!(matches!(
            models.model("bert"),
            Err(RelationalError::UnknownModel(_))
        ));
        assert_eq!(models.model_names(), vec!["fasttext"]);
        assert!(format!("{models:?}").contains("fasttext"));
    }

    #[test]
    fn embedding_appends_vector_column() {
        let (table, models) = setup();
        let out = apply_embedding(&table, &EmbedSpec::new("caption", "fasttext"), &models).unwrap();
        assert_eq!(out.num_columns(), 4);
        let field = out.schema().field("caption_emb").unwrap();
        assert_eq!(field.data_type, DataType::Vector(16));
        // embedding rows correspond to input rows
        let emb = out
            .column_by_name("caption_emb")
            .unwrap()
            .as_vectors()
            .unwrap();
        assert_eq!(emb.rows(), 3);
    }

    #[test]
    fn unknown_model_column_and_type_errors() {
        let (table, models) = setup();
        assert!(matches!(
            apply_embedding(&table, &EmbedSpec::new("caption", "bert"), &models),
            Err(RelationalError::UnknownModel(_))
        ));
        assert!(matches!(
            apply_embedding(&table, &EmbedSpec::new("nope", "fasttext"), &models),
            Err(RelationalError::UnknownColumn(_))
        ));
        // embedding a non-string column is a type error
        assert!(apply_embedding(&table, &EmbedSpec::new("id", "fasttext"), &models).is_err());
    }
}
