//! In-memory table catalog with per-table statistics.
//!
//! Registration doubles as the `ANALYZE` pipeline: every `register` (and
//! re-register) recomputes the table's [`TableStats`], so planners always see
//! statistics consistent with the resident data — the stats analogue of how
//! the session's `IndexManager` invalidates indexes on re-registration.
//! Plans snapshot these statistics at plan time (the `Arc` is cloned into
//! the planner's estimates), so a prepared query keeps the cardinalities it
//! was costed with even while new registrations refresh the catalog.

use std::collections::HashMap;
use std::sync::Arc;

use cej_storage::{Table, TableStats};

use crate::error::RelationalError;
use crate::Result;

/// A named collection of in-memory tables that plans can scan, plus the
/// per-table statistics the planner estimates cardinalities from.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    stats: HashMap<String, Arc<TableStats>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`, running the `ANALYZE`
    /// pass over its columns.
    pub fn register(&mut self, name: &str, table: Table) {
        self.register_shared(name, Arc::new(table));
    }

    /// Registers a shared table under `name`, running the `ANALYZE` pass
    /// over its columns.
    pub fn register_shared(&mut self, name: &str, table: Arc<Table>) {
        self.stats
            .insert(name.to_string(), Arc::new(table.analyze()));
        self.tables.insert(name.to_string(), table);
    }

    /// The statistics view of a table — what plan-time consumers of row
    /// counts read instead of the raw table.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>> {
        self.stats
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Recomputes (and returns) the statistics of one table — the explicit
    /// `ANALYZE <table>` entry point.  Registration already analyzes, so this
    /// is only needed to refresh a snapshot taken by `register_shared` when
    /// the shared table was mutated elsewhere.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn analyze(&mut self, name: &str) -> Result<Arc<TableStats>> {
        let table = self.table(name)?;
        let stats = Arc::new(table.analyze());
        self.stats.insert(name.to_string(), stats.clone());
        Ok(stats)
    }

    /// Looks up a table.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_storage::TableBuilder;

    fn table() -> Table {
        TableBuilder::new().int64("id", vec![1, 2]).build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("photos", table());
        assert!(c.contains("photos"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("photos").unwrap().num_rows(), 2);
        assert!(matches!(
            c.table("nope"),
            Err(RelationalError::UnknownTable(_))
        ));
    }

    #[test]
    fn register_shared_and_replace() {
        let mut c = Catalog::new();
        let shared = Arc::new(table());
        c.register_shared("t", shared.clone());
        assert_eq!(c.table("t").unwrap().num_rows(), 2);
        // replacing works
        c.register(
            "t",
            TableBuilder::new().int64("id", vec![1]).build().unwrap(),
        );
        assert_eq!(c.table("t").unwrap().num_rows(), 1);
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn registration_analyzes_and_reregistration_refreshes() {
        let mut c = Catalog::new();
        c.register("t", table());
        let stats = c.stats("t").unwrap();
        assert_eq!(stats.row_count, 2);
        assert_eq!(stats.column("id").unwrap().distinct_count, 2);
        assert!(c.stats("missing").is_err());
        // re-registration recomputes the statistics
        c.register(
            "t",
            TableBuilder::new()
                .int64("id", vec![5, 5, 5])
                .build()
                .unwrap(),
        );
        let refreshed = c.stats("t").unwrap();
        assert_eq!(refreshed.row_count, 3);
        assert_eq!(refreshed.column("id").unwrap().distinct_count, 1);
        // the old snapshot is unaffected (plans keep what they were costed with)
        assert_eq!(stats.row_count, 2);
        // explicit ANALYZE returns a fresh snapshot
        let explicit = c.analyze("t").unwrap();
        assert_eq!(explicit.row_count, 3);
        assert!(c.analyze("missing").is_err());
    }
}
