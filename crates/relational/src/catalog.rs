//! In-memory table catalog.

use std::collections::HashMap;
use std::sync::Arc;

use cej_storage::Table;

use crate::error::RelationalError;
use crate::Result;

/// A named collection of in-memory tables that plans can scan.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), Arc::new(table));
    }

    /// Registers a shared table under `name`.
    pub fn register_shared(&mut self, name: &str, table: Arc<Table>) {
        self.tables.insert(name.to_string(), table);
    }

    /// Looks up a table.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_storage::TableBuilder;

    fn table() -> Table {
        TableBuilder::new().int64("id", vec![1, 2]).build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("photos", table());
        assert!(c.contains("photos"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("photos").unwrap().num_rows(), 2);
        assert!(matches!(
            c.table("nope"),
            Err(RelationalError::UnknownTable(_))
        ));
    }

    #[test]
    fn register_shared_and_replace() {
        let mut c = Catalog::new();
        let shared = Arc::new(table());
        c.register_shared("t", shared.clone());
        assert_eq!(c.table("t").unwrap().num_rows(), 2);
        // replacing works
        c.register(
            "t",
            TableBuilder::new().int64("id", vec![1]).build().unwrap(),
        );
        assert_eq!(c.table("t").unwrap().num_rows(), 1);
        assert_eq!(c.table_names(), vec!["t"]);
    }
}
