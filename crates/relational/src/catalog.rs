//! In-memory table catalog with per-table statistics.
//!
//! Registration doubles as the `ANALYZE` pipeline: every `register` (and
//! re-register) recomputes the table's [`TableStats`], so planners always see
//! statistics consistent with the resident data — the stats analogue of how
//! the session's `IndexManager` invalidates indexes on re-registration.
//! Plans snapshot these statistics at plan time (the `Arc` is cloned into
//! the planner's estimates), so a prepared query keeps the cardinalities it
//! was costed with even while new registrations refresh the catalog.
//!
//! ## Concurrency
//!
//! The catalog is internally synchronised (a `parking_lot` RwLock over the
//! name → table map), so a server can share one catalog between many
//! connection threads: registrations take `&self`, lookups return
//! `Arc`-shared snapshots, and a query that resolved its tables keeps them
//! alive regardless of concurrent re-registrations.  Each lookup is
//! individually atomic; a multi-table query observes tables registered at
//! possibly different instants, which matches the engine's
//! registration-replaces-table semantics.

use std::collections::HashMap;
use std::sync::Arc;

use cej_storage::{AppliedDelta, Delta, Table, TableStats, TableVersion};
use parking_lot::RwLock;

use crate::error::RelationalError;
use crate::Result;

/// The catalog's maps, updated together under one lock so a reader can
/// never observe a table paired with another registration's statistics.
#[derive(Debug, Default, Clone)]
struct CatalogMaps {
    tables: HashMap<String, Arc<Table>>,
    stats: HashMap<String, Arc<TableStats>>,
    versions: HashMap<String, Arc<TableVersion>>,
}

/// A named collection of in-memory tables that plans can scan, plus the
/// per-table statistics the planner estimates cardinalities from.  Shareable
/// across threads (`&self` registration, internally locked).
#[derive(Debug, Default)]
pub struct Catalog {
    maps: RwLock<CatalogMaps>,
}

impl Clone for Catalog {
    /// Clones the catalog *contents* (cheap: tables and stats are
    /// `Arc`-shared).  The clone is an independent catalog; use an
    /// `Arc<Catalog>` (as the session does) to share one catalog instead.
    fn clone(&self) -> Self {
        Catalog {
            maps: RwLock::new(self.maps.read().clone()),
        }
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`, running the `ANALYZE`
    /// pass over its columns.
    pub fn register(&self, name: &str, table: Table) {
        self.register_shared(name, Arc::new(table));
    }

    /// Registers a shared table under `name`, running the `ANALYZE` pass
    /// over its columns.
    pub fn register_shared(&self, name: &str, table: Arc<Table>) {
        // Analyze outside the lock (it walks every column), then publish
        // table and stats atomically.
        let stats = Arc::new(table.analyze());
        let mut maps = self.maps.write();
        maps.stats.insert(name.to_string(), stats);
        maps.versions
            .insert(name.to_string(), TableVersion::initial(table.clone()));
        maps.tables.insert(name.to_string(), table);
    }

    /// Applies a [`Delta`] to a registered table, atomically publishing the
    /// new snapshot, an incrementally maintained statistics view, and the
    /// advanced [`TableVersion`] head.  Returns the new head and the exact
    /// added/removed row multisets for delta propagation.
    ///
    /// The delta is computed outside the lock against a version snapshot and
    /// published only if the head has not moved (compare-and-swap with
    /// retry), so concurrent appliers serialise without holding the write
    /// lock during row movement.  Statistics are maintained in O(delta):
    /// appends merge the analyzed delta batch into the existing view
    /// ([`TableStats::merged_append`]), deletes scale the view down
    /// ([`TableStats::scaled`]), upserts do both; an explicit
    /// [`Catalog::analyze`] resets the accumulated approximation.
    ///
    /// # Errors
    /// [`RelationalError::UnknownTable`] when absent; storage errors on
    /// schema/key mismatch.
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &Delta,
    ) -> Result<(Arc<TableVersion>, AppliedDelta)> {
        loop {
            let (head, stats) = {
                let maps = self.maps.read();
                let head = maps
                    .versions
                    .get(name)
                    .cloned()
                    .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))?;
                let stats = maps.stats.get(name).cloned();
                (head, stats)
            };
            let (new_head, applied) = head.apply(delta).map_err(RelationalError::from)?;
            let new_stats = stats.map(|s| Arc::new(incremental_stats(&s, &applied)));
            let mut maps = self.maps.write();
            let current = maps
                .versions
                .get(name)
                .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))?;
            if !Arc::ptr_eq(current, &head) {
                // another applier (or a re-registration) advanced the table
                // while we were computing — redo against the new head
                continue;
            }
            maps.tables
                .insert(name.to_string(), new_head.table().clone());
            if let Some(s) = new_stats {
                maps.stats.insert(name.to_string(), s);
            }
            maps.versions.insert(name.to_string(), new_head.clone());
            return Ok((new_head, applied));
        }
    }

    /// The current version number of a table's delta chain (0 at
    /// registration, +1 per applied delta).
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn version(&self, name: &str) -> Result<u64> {
        Ok(self.table_version(name)?.version())
    }

    /// The head of a table's [`TableVersion`] chain.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn table_version(&self, name: &str) -> Result<Arc<TableVersion>> {
        self.maps
            .read()
            .versions
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// The statistics view of a table — what plan-time consumers of row
    /// counts read instead of the raw table.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>> {
        self.maps
            .read()
            .stats
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Recomputes (and returns) the statistics of one table — the explicit
    /// `ANALYZE <table>` entry point.  Registration already analyzes, so this
    /// is only needed to refresh a snapshot taken by `register_shared` when
    /// the shared table was mutated elsewhere.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStats>> {
        let table = self.table(name)?;
        let stats = Arc::new(table.analyze());
        let mut maps = self.maps.write();
        // only publish if the analyzed snapshot is still the registered
        // table — a concurrent re-registration's fresh stats must win
        if maps
            .tables
            .get(name)
            .is_some_and(|current| Arc::ptr_eq(current, &table))
        {
            maps.stats.insert(name.to_string(), stats.clone());
        }
        Ok(stats)
    }

    /// Removes a table (and its statistics).  Returns whether it existed.
    /// Used by the serving layer to reap per-connection scratch tables;
    /// queries that already resolved the table keep their `Arc` snapshots.
    pub fn unregister(&self, name: &str) -> bool {
        let mut maps = self.maps.write();
        maps.stats.remove(name);
        maps.versions.remove(name);
        maps.tables.remove(name).is_some()
    }

    /// Looks up a table.
    ///
    /// # Errors
    /// Returns [`RelationalError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.maps
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.maps.read().tables.contains_key(name)
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> Vec<String> {
        self.maps.read().tables.keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.maps.read().tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.maps.read().tables.is_empty()
    }
}

/// Maintains a table's statistics view across an applied delta in O(delta):
/// removals scale the view down, additions merge the analyzed delta batch.
fn incremental_stats(old: &TableStats, applied: &AppliedDelta) -> TableStats {
    let after_delete = old.row_count.saturating_sub(applied.removed.num_rows());
    let mut stats = if applied.removed.num_rows() > 0 {
        old.scaled(after_delete)
    } else {
        old.clone()
    };
    if applied.added.num_rows() > 0 {
        stats = stats.merged_append(&applied.added.analyze());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_storage::TableBuilder;

    fn table() -> Table {
        TableBuilder::new().int64("id", vec![1, 2]).build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register("photos", table());
        assert!(c.contains("photos"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("photos").unwrap().num_rows(), 2);
        assert!(matches!(
            c.table("nope"),
            Err(RelationalError::UnknownTable(_))
        ));
    }

    #[test]
    fn register_shared_and_replace() {
        let c = Catalog::new();
        let shared = Arc::new(table());
        c.register_shared("t", shared.clone());
        assert_eq!(c.table("t").unwrap().num_rows(), 2);
        // replacing works
        c.register(
            "t",
            TableBuilder::new().int64("id", vec![1]).build().unwrap(),
        );
        assert_eq!(c.table("t").unwrap().num_rows(), 1);
        assert_eq!(c.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn registration_analyzes_and_reregistration_refreshes() {
        let c = Catalog::new();
        c.register("t", table());
        let stats = c.stats("t").unwrap();
        assert_eq!(stats.row_count, 2);
        assert_eq!(stats.column("id").unwrap().distinct_count, 2);
        assert!(c.stats("missing").is_err());
        // re-registration recomputes the statistics
        c.register(
            "t",
            TableBuilder::new()
                .int64("id", vec![5, 5, 5])
                .build()
                .unwrap(),
        );
        let refreshed = c.stats("t").unwrap();
        assert_eq!(refreshed.row_count, 3);
        assert_eq!(refreshed.column("id").unwrap().distinct_count, 1);
        // the old snapshot is unaffected (plans keep what they were costed with)
        assert_eq!(stats.row_count, 2);
        // explicit ANALYZE returns a fresh snapshot
        let explicit = c.analyze("t").unwrap();
        assert_eq!(explicit.row_count, 3);
        assert!(c.analyze("missing").is_err());
    }

    #[test]
    fn concurrent_registration_and_lookup() {
        let c = Arc::new(Catalog::new());
        c.register("base", table());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    c.register(
                        &format!("t{t}"),
                        TableBuilder::new()
                            .int64("id", (0..=i).collect())
                            .build()
                            .unwrap(),
                    );
                    let snapshot = c.table("base").expect("base stays resident");
                    assert_eq!(snapshot.num_rows(), 2);
                    let stats = c.stats(&format!("t{t}")).expect("own stats resident");
                    assert!(stats.row_count >= 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn apply_delta_advances_version_and_maintains_stats() {
        use cej_storage::{Delta, ScalarValue};
        let c = Catalog::new();
        c.register(
            "t",
            TableBuilder::new()
                .int64("id", (0..100).collect())
                .build()
                .unwrap(),
        );
        assert_eq!(c.version("t").unwrap(), 0);
        let snapshot = c.table("t").unwrap();

        let add = TableBuilder::new()
            .int64("id", (100..110).collect())
            .build()
            .unwrap();
        let (head, applied) = c.apply_delta("t", &Delta::Append(add)).unwrap();
        assert_eq!(head.version(), 1);
        assert_eq!(applied.added.num_rows(), 10);
        assert_eq!(c.version("t").unwrap(), 1);
        assert_eq!(c.table("t").unwrap().num_rows(), 110);
        // stats were maintained incrementally, not re-analyzed
        let stats = c.stats("t").unwrap();
        assert_eq!(stats.row_count, 110);
        assert_eq!(stats.column("id").unwrap().distinct_count, 110);
        // live plans keep their snapshot
        assert_eq!(snapshot.num_rows(), 100);

        let (_, applied) = c
            .apply_delta(
                "t",
                &Delta::DeleteByKey {
                    key_column: "id".into(),
                    keys: (0..55).map(ScalarValue::Int64).collect(),
                },
            )
            .unwrap();
        assert_eq!(applied.removed.num_rows(), 55);
        assert_eq!(c.table("t").unwrap().num_rows(), 55);
        assert_eq!(c.stats("t").unwrap().row_count, 55);
        assert_eq!(c.version("t").unwrap(), 2);

        assert!(c.apply_delta("missing", &Delta::Append(table())).is_err());
        // re-registration resets the chain
        c.register("t", table());
        assert_eq!(c.version("t").unwrap(), 0);
        assert!(!c.unregister("gone"));
        assert!(c.unregister("t"));
        assert!(c.version("t").is_err());
    }

    #[test]
    fn concurrent_appliers_serialise() {
        use cej_storage::Delta;
        let c = Arc::new(Catalog::new());
        c.register(
            "t",
            TableBuilder::new().int64("id", vec![]).build().unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let rows = TableBuilder::new()
                        .int64("id", vec![t * 1000 + i])
                        .build()
                        .unwrap();
                    c.apply_delta("t", &Delta::Append(rows)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            c.version("t").unwrap(),
            100,
            "every delta landed exactly once"
        );
        assert_eq!(c.table("t").unwrap().num_rows(), 100);
        assert_eq!(c.stats("t").unwrap().row_count, 100);
    }

    #[test]
    fn clone_snapshots_contents() {
        let c = Catalog::new();
        c.register("t", table());
        let snap = c.clone();
        c.register("u", table());
        assert!(c.contains("u"));
        assert!(!snap.contains("u"), "clone is independent");
        assert!(snap.contains("t"));
    }
}
