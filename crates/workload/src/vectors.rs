//! Random embedding matrices for model-free benchmarks.
//!
//! Figures 8-14 of the paper measure operator performance as a function of
//! cardinality and dimensionality only; the semantic content of the vectors
//! is irrelevant.  These helpers generate uniform or clustered matrices
//! directly so benches don't pay model cost where the paper didn't.

use cej_vector::{normalize, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `rows × dim` matrix of uniform random values in `[-1, 1)`, row-normalised
/// when `normalize_rows` is set (cosine similarity then equals dot product).
pub fn uniform_matrix(rows: usize, dim: usize, seed: u64, normalize_rows: bool) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; rows * dim];
    for v in &mut data {
        *v = rng.gen_range(-1.0..1.0);
    }
    let mut m = Matrix::from_flat(rows, dim, data).expect("shape matches by construction");
    if normalize_rows {
        for r in 0..rows {
            normalize(m.row_mut(r).expect("row in range"));
        }
    }
    m
}

/// A clustered matrix: `clusters` Gaussian-ish blobs, `rows` total rows,
/// row-normalised.  Returns the matrix and the per-row cluster labels.
pub fn clustered_matrix(
    rows: usize,
    dim: usize,
    clusters: usize,
    spread: f32,
    seed: u64,
) -> (Matrix, Vec<usize>) {
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut m = Matrix::zeros(0, dim);
    let mut labels = Vec::with_capacity(rows);
    for i in 0..rows {
        let c = i % clusters;
        let mut row: Vec<f32> = centroids[c]
            .iter()
            .map(|v| v + rng.gen_range(-spread..spread))
            .collect();
        normalize(&mut row);
        m.push_row(&row).expect("row width fixed");
        labels.push(c);
    }
    (m, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cej_vector::cosine_similarity;

    #[test]
    fn uniform_matrix_shape_and_determinism() {
        let a = uniform_matrix(10, 16, 4, false);
        let b = uniform_matrix(10, 16, 4, false);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 10);
        assert_eq!(a.cols(), 16);
        let c = uniform_matrix(10, 16, 5, false);
        assert_ne!(a, c);
    }

    #[test]
    fn normalized_rows_have_unit_norm() {
        let m = uniform_matrix(20, 32, 1, true);
        for r in 0..m.rows() {
            let norm: f32 = m.row(r).unwrap().iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn clustered_matrix_same_cluster_is_closer() {
        let (m, labels) = clustered_matrix(60, 24, 3, 0.05, 7);
        assert_eq!(m.rows(), 60);
        assert_eq!(labels.len(), 60);
        // rows 0 and 3 share cluster 0; rows 0 and 1 do not
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[1]);
        let same = cosine_similarity(m.row(0).unwrap(), m.row(3).unwrap());
        let cross = cosine_similarity(m.row(0).unwrap(), m.row(1).unwrap());
        assert!(
            same > cross,
            "same-cluster similarity {same} should exceed cross {cross}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        clustered_matrix(10, 4, 0, 0.1, 1);
    }
}
