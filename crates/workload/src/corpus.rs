//! Training-corpus generation from word clusters.
//!
//! The embedding trainer (`cej_embedding::train_on_corpus`) only needs
//! sentences in which words of the same cluster co-occur; this generator
//! produces them, optionally mixing in cross-cluster "noise" words so the
//! model has to actually separate the clusters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::words::WordCluster;
use crate::zipf::Zipf;

/// Generates synthetic training sentences from word clusters.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    rng: StdRng,
    /// Words per generated sentence.
    pub sentence_len: usize,
    /// Probability that a sentence position is filled from a *different*
    /// cluster (noise).
    pub noise: f64,
    /// Zipf skew over clusters (frequent concepts appear more often).
    pub skew: f64,
}

impl CorpusGenerator {
    /// Creates a generator with the given seed and default shape
    /// (6-word sentences, 10 % noise, mild skew).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            sentence_len: 6,
            noise: 0.1,
            skew: 0.5,
        }
    }

    /// Sets the sentence length.
    pub fn with_sentence_len(mut self, len: usize) -> Self {
        self.sentence_len = len.max(2);
        self
    }

    /// Sets the cross-cluster noise probability.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.clamp(0.0, 1.0);
        self
    }

    /// Generates `sentences` sentences over the given clusters.
    ///
    /// # Panics
    /// Panics when `clusters` is empty.
    pub fn generate(&mut self, clusters: &[WordCluster], sentences: usize) -> Vec<String> {
        assert!(!clusters.is_empty(), "need at least one cluster");
        let zipf = Zipf::new(clusters.len(), self.skew);
        let mut out = Vec::with_capacity(sentences);
        for _ in 0..sentences {
            let cluster_idx = zipf.sample(&mut self.rng);
            let mut words = Vec::with_capacity(self.sentence_len);
            for _ in 0..self.sentence_len {
                let source = if self.rng.gen_bool(self.noise) && clusters.len() > 1 {
                    // noise word from some other cluster
                    let mut other = self.rng.gen_range(0..clusters.len());
                    if other == cluster_idx {
                        other = (other + 1) % clusters.len();
                    }
                    &clusters[other]
                } else {
                    &clusters[cluster_idx]
                };
                let v = self.rng.gen_range(0..source.variants.len());
                words.push(source.variants[v].clone());
            }
            out.push(words.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::WordGenerator;

    #[test]
    fn generates_requested_number_of_sentences() {
        let clusters = WordGenerator::new(1).clusters(6, 4);
        let corpus = CorpusGenerator::new(2).generate(&clusters, 50);
        assert_eq!(corpus.len(), 50);
        assert!(corpus.iter().all(|s| s.split_whitespace().count() == 6));
    }

    #[test]
    fn deterministic_given_seed() {
        let clusters = WordGenerator::new(1).clusters(4, 4);
        let a = CorpusGenerator::new(9).generate(&clusters, 10);
        let b = CorpusGenerator::new(9).generate(&clusters, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn sentences_are_mostly_single_cluster() {
        let clusters = WordGenerator::new(1).clusters(8, 4);
        let corpus = CorpusGenerator::new(3)
            .with_noise(0.0)
            .generate(&clusters, 20);
        for sentence in &corpus {
            let words: Vec<&str> = sentence.split_whitespace().collect();
            // with zero noise every word must come from one cluster
            let home = clusters.iter().position(|c| c.contains(words[0])).unwrap();
            assert!(
                words.iter().all(|w| clusters[home].contains(w)),
                "mixed sentence: {sentence}"
            );
        }
    }

    #[test]
    fn builders_clamp_values() {
        let g = CorpusGenerator::new(1).with_sentence_len(1).with_noise(5.0);
        assert_eq!(g.sentence_len, 2);
        assert_eq!(g.noise, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_clusters_panic() {
        CorpusGenerator::new(1).generate(&[], 1);
    }
}
