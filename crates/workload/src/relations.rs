//! Relational join workloads: table pairs with a string join column and a
//! selectivity-controllable filter column.
//!
//! This mirrors the paper's evaluation setup for Figures 15-17: an outer
//! relation of probe strings, an inner relation of 1 M strings with "one
//! relational attribute column based on which we control the selectivity".
//! The filter column here is an integer in `[0, 100)` drawn uniformly, so a
//! predicate `filter < s` selects approximately `s` percent of the rows.

use cej_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::words::{WordCluster, WordGenerator};

/// Shape of one generated relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSpec {
    /// Number of rows.
    pub rows: usize,
    /// Number of word clusters the string column draws from.
    pub clusters: usize,
    /// Variants per cluster.
    pub variants_per_cluster: usize,
}

impl RelationSpec {
    /// A spec with the given row count and a default vocabulary shape.
    pub fn with_rows(rows: usize) -> Self {
        Self {
            rows,
            clusters: 32,
            variants_per_cluster: 8,
        }
    }
}

/// A generated pair of relations plus ground-truth cluster labels.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// The outer relation `R` (columns: `id`, `word`, `filter`, `date`).
    pub outer: Table,
    /// The inner relation `S` (same schema).
    pub inner: Table,
    /// Cluster label of each outer row (ground truth for semantic matches).
    pub outer_labels: Vec<usize>,
    /// Cluster label of each inner row.
    pub inner_labels: Vec<usize>,
    /// The shared vocabulary clusters.
    pub clusters: Vec<WordCluster>,
}

impl JoinWorkload {
    /// Generates a join workload: both relations draw strings from the same
    /// cluster vocabulary, so semantically matching pairs exist by
    /// construction.
    ///
    /// # Panics
    /// Panics when either spec requests zero rows or zero clusters.
    pub fn generate(outer: RelationSpec, inner: RelationSpec, seed: u64) -> Self {
        assert!(
            outer.rows > 0 && inner.rows > 0,
            "relations must be non-empty"
        );
        assert!(outer.clusters > 0, "need at least one cluster");
        let mut words = WordGenerator::new(seed);
        let clusters = words.clusters(outer.clusters, outer.variants_per_cluster.max(1));
        let (outer_strings, outer_labels) = words.sample_strings(&clusters, outer.rows);
        let (inner_strings, inner_labels) = words.sample_strings(&clusters, inner.rows);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let outer_table = Self::build_table(outer_strings, &mut rng);
        let inner_table = Self::build_table(inner_strings, &mut rng);
        Self {
            outer: outer_table,
            inner: inner_table,
            outer_labels,
            inner_labels,
            clusters,
        }
    }

    fn build_table(strings: Vec<String>, rng: &mut StdRng) -> Table {
        let rows = strings.len();
        let ids: Vec<i64> = (0..rows as i64).collect();
        // Uniform [0, 100) integer: `filter < s` selects ~s% of rows.
        let filter: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..100)).collect();
        // Dates uniform over 2023 (days 19358..19723 since the epoch).
        let date: Vec<i32> = (0..rows).map(|_| rng.gen_range(19_358..19_723)).collect();
        TableBuilder::new()
            .int64("id", ids)
            .utf8("word", strings)
            .int64("filter", filter)
            .date("date", date)
            .build()
            .expect("workload table construction cannot fail")
    }

    /// The number of ground-truth matching pairs (same cluster label) —
    /// the reference result size for exact semantic joins.
    pub fn ground_truth_pairs(&self) -> usize {
        let mut inner_counts = vec![0usize; self.clusters.len()];
        for &l in &self.inner_labels {
            inner_counts[l] += 1;
        }
        self.outer_labels.iter().map(|&l| inner_counts[l]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shapes() {
        let w = JoinWorkload::generate(
            RelationSpec {
                rows: 50,
                clusters: 8,
                variants_per_cluster: 4,
            },
            RelationSpec {
                rows: 120,
                clusters: 8,
                variants_per_cluster: 4,
            },
            42,
        );
        assert_eq!(w.outer.num_rows(), 50);
        assert_eq!(w.inner.num_rows(), 120);
        assert_eq!(w.outer_labels.len(), 50);
        assert_eq!(w.inner_labels.len(), 120);
        assert_eq!(w.clusters.len(), 8);
        assert_eq!(w.outer.num_columns(), 4);
        assert!(w.outer.column_by_name("word").is_ok());
        assert!(w.outer.column_by_name("filter").is_ok());
        assert!(w.outer.column_by_name("date").is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = RelationSpec::with_rows(30);
        let a = JoinWorkload::generate(spec, spec, 7);
        let b = JoinWorkload::generate(spec, spec, 7);
        assert_eq!(a.outer, b.outer);
        assert_eq!(a.inner, b.inner);
        let c = JoinWorkload::generate(spec, spec, 8);
        assert_ne!(a.outer, c.outer);
    }

    #[test]
    fn labels_match_cluster_membership() {
        let w = JoinWorkload::generate(
            RelationSpec {
                rows: 40,
                clusters: 5,
                variants_per_cluster: 4,
            },
            RelationSpec {
                rows: 40,
                clusters: 5,
                variants_per_cluster: 4,
            },
            3,
        );
        let words = w.outer.column_by_name("word").unwrap().as_utf8().unwrap();
        for (word, &label) in words.iter().zip(w.outer_labels.iter()) {
            assert!(w.clusters[label].contains(word));
        }
    }

    #[test]
    fn filter_column_gives_controllable_selectivity() {
        let w = JoinWorkload::generate(
            RelationSpec::with_rows(5000),
            RelationSpec::with_rows(10),
            11,
        );
        let filter = w
            .outer
            .column_by_name("filter")
            .unwrap()
            .as_int64()
            .unwrap();
        let frac_below_20 = filter.iter().filter(|&&v| v < 20).count() as f64 / filter.len() as f64;
        assert!(
            (frac_below_20 - 0.2).abs() < 0.05,
            "selectivity {frac_below_20} should be ~0.2"
        );
        let frac_below_80 = filter.iter().filter(|&&v| v < 80).count() as f64 / filter.len() as f64;
        assert!((frac_below_80 - 0.8).abs() < 0.05);
    }

    #[test]
    fn ground_truth_pairs_counts_same_cluster() {
        let w = JoinWorkload::generate(
            RelationSpec {
                rows: 10,
                clusters: 2,
                variants_per_cluster: 3,
            },
            RelationSpec {
                rows: 20,
                clusters: 2,
                variants_per_cluster: 3,
            },
            5,
        );
        let expected: usize = w
            .outer_labels
            .iter()
            .map(|&ol| w.inner_labels.iter().filter(|&&il| il == ol).count())
            .sum();
        assert_eq!(w.ground_truth_pairs(), expected);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_rows_panics() {
        JoinWorkload::generate(RelationSpec::with_rows(0), RelationSpec::with_rows(1), 1);
    }
}
