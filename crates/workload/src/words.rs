//! Synonym-cluster word generation.
//!
//! Table II of the paper shows FastText mapping a word to semantically
//! related neighbours (synonyms, plurals, related technologies).  To
//! reproduce that behaviour without the Wikipedia corpus, the generator
//! builds *clusters* of string variants around base concepts: inflections,
//! misspellings, and designated synonyms.  Strings drawn from the same
//! cluster are "semantically equal" ground truth, which tests and examples
//! use to check join quality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Built-in base concepts with hand-written synonyms, giving the generated
/// vocabulary a realistic flavour (the paper's own example words included).
const BASE_CONCEPTS: &[(&str, &[&str])] = &[
    ("barbecue", &["bbq", "grilling", "cookout"]),
    ("database", &["dbms", "rdbms", "datastore"]),
    ("postgres", &["postgresql", "pgsql"]),
    ("clothes", &["clothing", "garments", "apparel"]),
    ("photograph", &["photo", "picture", "snapshot"]),
    ("automobile", &["car", "vehicle", "motorcar"]),
    ("laptop", &["notebook", "ultrabook"]),
    ("holiday", &["vacation", "getaway"]),
    ("restaurant", &["diner", "eatery", "bistro"]),
    ("football", &["soccer", "futbol"]),
];

/// A cluster of string variants that are all "the same thing".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordCluster {
    /// The canonical base word.
    pub base: String,
    /// All variants, including the base itself.
    pub variants: Vec<String>,
}

impl WordCluster {
    /// Number of variants in the cluster.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// `true` when the cluster is empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Whether a string belongs to this cluster.
    pub fn contains(&self, word: &str) -> bool {
        self.variants.iter().any(|v| v == word)
    }
}

/// Deterministic generator of clustered vocabularies.
#[derive(Debug, Clone)]
pub struct WordGenerator {
    rng: StdRng,
}

impl WordGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Introduces a single-character typo (substitution) into `word`.
    pub fn misspell(&mut self, word: &str) -> String {
        let chars: Vec<char> = word.chars().collect();
        if chars.len() < 3 {
            return word.to_string();
        }
        let pos = self.rng.gen_range(1..chars.len() - 1);
        let replacement = (b'a' + self.rng.gen_range(0..26u8)) as char;
        let mut out: Vec<char> = chars.clone();
        out[pos] = replacement;
        out.into_iter().collect()
    }

    /// A plural-ish inflection of `word`.
    pub fn inflect(&mut self, word: &str) -> String {
        if word.ends_with('s') {
            format!("{word}es")
        } else {
            format!("{word}s")
        }
    }

    /// A synthetic random word of the given length (used to pad vocabularies
    /// beyond the built-in concepts).
    pub fn random_word(&mut self, len: usize) -> String {
        const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
        const VOWELS: &[u8] = b"aeiou";
        let mut out = String::with_capacity(len);
        for i in 0..len.max(3) {
            let set = if i % 2 == 0 { CONSONANTS } else { VOWELS };
            out.push(set[self.rng.gen_range(0..set.len())] as char);
        }
        out
    }

    /// Generates `count` clusters, each with roughly `variants_per_cluster`
    /// members (base word, synonyms, inflections, misspellings).  The first
    /// clusters reuse the built-in concepts; the rest use random base words.
    pub fn clusters(&mut self, count: usize, variants_per_cluster: usize) -> Vec<WordCluster> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let (base, synonyms): (String, Vec<String>) =
                if let Some((b, syns)) = BASE_CONCEPTS.get(i) {
                    (b.to_string(), syns.iter().map(|s| s.to_string()).collect())
                } else {
                    (self.random_word(8), Vec::new())
                };
            let mut variants = vec![base.clone()];
            variants.extend(synonyms);
            while variants.len() < variants_per_cluster {
                let source = variants[self.rng.gen_range(0..variants.len().min(2))].clone();
                let variant = match variants.len() % 3 {
                    0 => self.inflect(&source),
                    1 => self.misspell(&source),
                    _ => {
                        let m = self.misspell(&source);
                        self.inflect(&m)
                    }
                };
                if !variants.contains(&variant) {
                    variants.push(variant);
                } else {
                    variants.push(format!("{source}{}", self.rng.gen_range(0..10)));
                }
            }
            variants.truncate(variants_per_cluster.max(1));
            out.push(WordCluster { base, variants });
        }
        out
    }

    /// Draws `count` strings by sampling clusters (uniformly) and then a
    /// variant within the chosen cluster.  Returns the strings and, for each,
    /// the index of the cluster it came from (the ground-truth label).
    pub fn sample_strings(
        &mut self,
        clusters: &[WordCluster],
        count: usize,
    ) -> (Vec<String>, Vec<usize>) {
        assert!(!clusters.is_empty(), "need at least one cluster");
        let mut strings = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for _ in 0..count {
            let c = self.rng.gen_range(0..clusters.len());
            let v = self.rng.gen_range(0..clusters[c].variants.len());
            strings.push(clusters[c].variants[v].clone());
            labels.push(c);
        }
        (strings, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_are_deterministic() {
        let a = WordGenerator::new(7).clusters(12, 6);
        let b = WordGenerator::new(7).clusters(12, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn built_in_concepts_come_first() {
        let clusters = WordGenerator::new(1).clusters(3, 5);
        assert_eq!(clusters[0].base, "barbecue");
        assert!(clusters[0].contains("bbq"));
        assert_eq!(clusters[1].base, "database");
        assert!(clusters[1].contains("dbms"));
    }

    #[test]
    fn misspell_changes_exactly_one_char() {
        let mut g = WordGenerator::new(3);
        let original = "barbecue";
        let typo = g.misspell(original);
        assert_eq!(typo.len(), original.len());
        let diffs = original
            .chars()
            .zip(typo.chars())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs <= 1);
        // very short words are left alone
        assert_eq!(g.misspell("ab"), "ab");
    }

    #[test]
    fn inflect_appends_suffix() {
        let mut g = WordGenerator::new(5);
        assert_eq!(g.inflect("photo"), "photos");
        assert_eq!(g.inflect("glass"), "glasses");
    }

    #[test]
    fn random_word_alternates_letters() {
        let mut g = WordGenerator::new(11);
        let w = g.random_word(8);
        assert_eq!(w.len(), 8);
        assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        // minimum length enforced
        assert!(g.random_word(1).len() >= 3);
    }

    #[test]
    fn sample_strings_respects_cluster_labels() {
        let mut g = WordGenerator::new(13);
        let clusters = g.clusters(5, 4);
        let (strings, labels) = g.sample_strings(&clusters, 100);
        assert_eq!(strings.len(), 100);
        assert_eq!(labels.len(), 100);
        for (s, &l) in strings.iter().zip(labels.iter()) {
            assert!(clusters[l].contains(s), "{s} should belong to cluster {l}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn sampling_from_no_clusters_panics() {
        let mut g = WordGenerator::new(1);
        g.sample_strings(&[], 1);
    }

    #[test]
    fn extra_clusters_use_random_bases() {
        let clusters = WordGenerator::new(2).clusters(BASE_CONCEPTS.len() + 3, 4);
        let extra = &clusters[BASE_CONCEPTS.len()];
        assert!(extra.base.len() >= 3);
        assert!(!BASE_CONCEPTS.iter().any(|(b, _)| *b == extra.base));
    }
}
