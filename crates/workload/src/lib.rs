//! # cej-workload
//!
//! Synthetic workload and data generators for the context-enhanced join
//! experiments.
//!
//! The paper evaluates on (a) a FastText model trained on a Wikipedia subset
//! and (b) synthetic vector/relational data with a fixed RNG seed.  Neither
//! dataset is redistributable here, so this crate generates equivalents with
//! the knobs the experiments actually vary:
//!
//! * [`words`] — synonym-cluster string vocabularies with misspellings and
//!   inflections (drives Table II and the string-join examples),
//! * [`corpus`] — training sentences built from those clusters,
//! * [`relations`] — pairs of relational tables with a string join column and
//!   a selectivity-controllable date / integer filter column (drives the
//!   scan-vs-index experiments, Figures 15-17),
//! * [`vectors`] — clustered or uniform random embedding matrices for
//!   benchmarks that bypass the model (Figures 8-14),
//! * [`zipf`] — Zipfian frequency skew,
//! * [`scale`] — the global `CEJ_SCALE` size knob shared by the benchmark
//!   binaries and the runnable examples.
//!
//! Every generator is deterministic given a seed, mirroring the paper's
//! "same random number generator seed for reproducibility".

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod corpus;
pub mod relations;
pub mod scale;
pub mod vectors;
pub mod words;
pub mod zipf;

pub use corpus::CorpusGenerator;
pub use relations::{JoinWorkload, RelationSpec};
pub use scale::{scale, scaled};
pub use vectors::{clustered_matrix, uniform_matrix};
pub use words::{WordCluster, WordGenerator};
pub use zipf::Zipf;
