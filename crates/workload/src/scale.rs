//! The global workload-size knob.
//!
//! Every experiment binary and runnable example multiplies its hard-coded
//! cardinalities by the `CEJ_SCALE` environment variable (default `1.0`), so
//! the same code serves full-size local runs (`CEJ_SCALE=1`), quick smoke
//! tests (`CEJ_SCALE=0.01`), and scaled-up stress runs (`CEJ_SCALE=4`).

/// Returns the global size-scale factor (`CEJ_SCALE` environment variable,
/// default `1.0`).  Non-finite or non-positive values fall back to `1.0`.
pub fn scale() -> f64 {
    std::env::var("CEJ_SCALE")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

/// Scales a cardinality by the global factor, keeping at least 1.
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        // CEJ_SCALE is unset (or sane) in the test environment; whatever its
        // value, the floor of 1 must hold.
        assert!(scaled(0) >= 1);
        assert!(scaled(1) >= 1);
    }

    #[test]
    fn scale_is_positive_and_finite() {
        let s = scale();
        assert!(s.is_finite() && s > 0.0);
    }
}
