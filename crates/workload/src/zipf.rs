//! Zipfian sampling.
//!
//! Word frequencies in natural-language corpora are Zipf-distributed; the
//! workload generator uses this sampler so synthetic string columns have a
//! realistic skew (a few very frequent words, a long tail of rare ones).

use rand::Rng;

/// A Zipf(θ) sampler over `{0, 1, …, n-1}` using inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (`0.0` = uniform,
    /// `~1.0` = classic Zipf).  `n` must be at least 1.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one item");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be non-negative"
        );
        let mut weights: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // guard against floating point drift
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Self { cdf: weights }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler covers no items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an item index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "uniform sampling should be roughly flat");
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 1 should dominate rank 51");
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 0.8);
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        Zipf::new(5, -1.0);
    }
}
