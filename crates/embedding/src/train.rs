//! Lightweight corpus training ("retrofit") for the FastText-style model.
//!
//! The paper trains a 100-D FastText model on a Wikipedia subset so that
//! semantically related words (synonyms, plurals, related technologies) land
//! near each other (Table II).  Full skip-gram training is out of scope for a
//! join-operator study; what the operators need is a model whose vectors
//! *cluster words that co-occur*.  We achieve that with an iterative
//! retrofitting procedure:
//!
//! 1. every vocabulary word starts from its deterministic subword embedding
//!    (which already places misspellings and inflections close together), and
//! 2. for a number of epochs, each word vector is pulled towards the mean of
//!    the vectors of the words it co-occurs with inside a sliding window.
//!
//! Words that share contexts (the synonym clusters of the synthetic corpus)
//! therefore converge towards a common centroid while unrelated words stay
//! apart, which is sufficient to regenerate the Table II experiment and to
//! drive every performance experiment, whose results depend only on vector
//! dimensionality and cardinalities, not on semantic quality.

use std::collections::HashMap;

use cej_vector::Vector;

use crate::model::{Embedder, FastTextModel};
use crate::tokenizer::Tokenizer;
use crate::{EmbeddingError, Result};

/// Hyper-parameters of the co-occurrence retrofit trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Sliding co-occurrence window (tokens on each side).
    pub window: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Interpolation rate towards the context centroid per epoch, in `(0, 1]`.
    pub learning_rate: f32,
    /// Minimum number of occurrences for a word to receive a trained vector.
    pub min_count: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self {
            window: 4,
            epochs: 10,
            learning_rate: 0.4,
            min_count: 1,
        }
    }
}

impl TrainingConfig {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(EmbeddingError::InvalidConfig("epochs must be > 0".into()));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(EmbeddingError::InvalidConfig(
                "learning_rate must be in (0, 1]".into(),
            ));
        }
        if self.window == 0 {
            return Err(EmbeddingError::InvalidConfig("window must be > 0".into()));
        }
        Ok(())
    }
}

/// Trains (retrofits) `model` on a corpus of sentences, installing trained
/// vectors for every word meeting `min_count`.
///
/// Returns the number of words that received trained vectors.
///
/// # Errors
/// Returns [`EmbeddingError::EmptyCorpus`] when the corpus contains no usable
/// tokens, or [`EmbeddingError::InvalidConfig`] for bad hyper-parameters.
pub fn train_on_corpus(
    model: &mut FastTextModel,
    corpus: &[String],
    config: &TrainingConfig,
) -> Result<usize> {
    config.validate()?;
    let tokenizer = Tokenizer::new(true);

    // Tokenise once; collect per-word counts.
    let sentences: Vec<Vec<String>> = corpus
        .iter()
        .map(|s| tokenizer.tokenize(s))
        .filter(|t| !t.is_empty())
        .collect();
    if sentences.is_empty() {
        return Err(EmbeddingError::EmptyCorpus);
    }
    let mut counts: HashMap<String, u64> = HashMap::new();
    for sentence in &sentences {
        for tok in sentence {
            *counts.entry(tok.clone()).or_insert(0) += 1;
        }
    }

    // Initial vectors: the model's subword embeddings.
    let mut vectors: HashMap<String, Vector> =
        counts.keys().map(|w| (w.clone(), model.embed(w))).collect();

    let dim = model.dim();
    for _ in 0..config.epochs {
        // Accumulate context centroids per word for this epoch.
        let mut context_sum: HashMap<String, Vector> = HashMap::new();
        let mut context_cnt: HashMap<String, usize> = HashMap::new();
        for sentence in &sentences {
            for (i, word) in sentence.iter().enumerate() {
                let lo = i.saturating_sub(config.window);
                let hi = (i + config.window + 1).min(sentence.len());
                for j in lo..hi {
                    if j == i {
                        continue;
                    }
                    let ctx_vec = &vectors[&sentence[j]];
                    context_sum
                        .entry(word.clone())
                        .or_insert_with(|| Vector::zeros(dim))
                        .add_assign(ctx_vec)
                        .expect("training vectors share dimension");
                    *context_cnt.entry(word.clone()).or_insert(0) += 1;
                }
            }
        }
        // Move every word towards its context centroid.
        for (word, sum) in context_sum {
            let cnt = context_cnt[&word] as f32;
            let mut centroid = sum;
            centroid.scale(1.0 / cnt);
            let current = vectors.get_mut(&word).expect("word seen in corpus");
            // v = normalize((1 - lr) * v + lr * centroid)
            current.scale(1.0 - config.learning_rate);
            centroid.scale(config.learning_rate);
            current.add_assign(&centroid).expect("dims match");
            current.normalize();
        }
    }

    // Install trained vectors for sufficiently frequent words.
    let mut installed = 0;
    for (word, count) in &counts {
        if *count >= config.min_count {
            model.set_word_vector(word, vectors[word].clone());
            installed += 1;
        }
    }
    Ok(installed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FastTextConfig;

    fn small_model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 24,
            buckets: 2000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    fn synonym_corpus() -> Vec<String> {
        // Two clusters: cooking words and database words, repeated in shared
        // contexts so the trainer pulls each cluster together.
        let mut corpus = Vec::new();
        for _ in 0..20 {
            corpus.push("barbecue grilling bbq cookout smoker".to_string());
            corpus.push("grilling barbecue cookout bbq charcoal".to_string());
            corpus.push("dbms rdbms postgresql sqlite database".to_string());
            corpus.push("postgresql dbms database rdbms sqlite".to_string());
        }
        corpus
    }

    #[test]
    fn training_installs_vectors() {
        let mut m = small_model();
        let n = train_on_corpus(&mut m, &synonym_corpus(), &TrainingConfig::default()).unwrap();
        assert!(n >= 10, "expected at least 10 trained words, got {n}");
        assert_eq!(m.trained_words(), n);
        assert!(m.vocab().len() >= 10);
    }

    #[test]
    fn training_clusters_cooccurring_words() {
        let mut m = small_model();
        train_on_corpus(&mut m, &synonym_corpus(), &TrainingConfig::default()).unwrap();
        let bbq = m.embed("bbq");
        let grilling = m.embed("grilling");
        let dbms = m.embed("dbms");
        let same_cluster = bbq.cosine_similarity(&grilling).unwrap();
        let cross_cluster = bbq.cosine_similarity(&dbms).unwrap();
        assert!(
            same_cluster > cross_cluster + 0.1,
            "same-cluster sim {same_cluster} should clearly exceed cross-cluster {cross_cluster}"
        );
    }

    #[test]
    fn nearest_words_reflect_clusters() {
        let mut m = small_model();
        train_on_corpus(&mut m, &synonym_corpus(), &TrainingConfig::default()).unwrap();
        let nearest = m.nearest_words("dbms", 3);
        assert_eq!(nearest.len(), 3);
        let db_words = ["rdbms", "postgresql", "sqlite", "database"];
        assert!(
            nearest.iter().all(|(w, _)| db_words.contains(&w.as_str())),
            "nearest of dbms should be database words, got {nearest:?}"
        );
    }

    #[test]
    fn empty_corpus_errors() {
        let mut m = small_model();
        assert!(matches!(
            train_on_corpus(&mut m, &[], &TrainingConfig::default()),
            Err(EmbeddingError::EmptyCorpus)
        ));
        assert!(matches!(
            train_on_corpus(
                &mut m,
                &["the of and".to_string()],
                &TrainingConfig::default()
            ),
            Err(EmbeddingError::EmptyCorpus)
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut m = small_model();
        let corpus = synonym_corpus();
        let bad_epochs = TrainingConfig {
            epochs: 0,
            ..TrainingConfig::default()
        };
        assert!(train_on_corpus(&mut m, &corpus, &bad_epochs).is_err());
        let bad_lr = TrainingConfig {
            learning_rate: 0.0,
            ..TrainingConfig::default()
        };
        assert!(train_on_corpus(&mut m, &corpus, &bad_lr).is_err());
        let bad_window = TrainingConfig {
            window: 0,
            ..TrainingConfig::default()
        };
        assert!(train_on_corpus(&mut m, &corpus, &bad_window).is_err());
    }

    #[test]
    fn min_count_filters_rare_words() {
        let mut m = small_model();
        let mut corpus = synonym_corpus();
        corpus.push("hapaxlegomenon appears once only here".to_string());
        let config = TrainingConfig {
            min_count: 5,
            ..TrainingConfig::default()
        };
        train_on_corpus(&mut m, &corpus, &config).unwrap();
        assert!(m.word_vector("hapaxlegomenon").is_none());
        assert!(m.word_vector("barbecue").is_some());
    }
}
