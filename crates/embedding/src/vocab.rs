//! Vocabulary and the id ↔ string lookup table (`E⁻¹`).
//!
//! The paper's algebra defines a decode operation `E⁻¹_µ(E_µ(R)) = R`
//! (Section III-C).  FastText has no generative decoder, so the paper
//! proposes "a lookup table mechanism [that] can maintain the
//! object-embedding mapping via unique IDs".  [`Vocabulary`] is exactly that
//! mechanism: it interns strings, hands out stable ids, tracks frequencies,
//! and can recover the original string for any id produced during the join.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::EmbeddingError;
use crate::Result;

/// An interned vocabulary with stable ids and occurrence counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    word_to_id: HashMap<String, usize>,
    id_to_word: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id and incrementing its count.
    pub fn add(&mut self, word: &str) -> usize {
        if let Some(&id) = self.word_to_id.get(word) {
            self.counts[id] += 1;
            return id;
        }
        let id = self.id_to_word.len();
        self.word_to_id.insert(word.to_string(), id);
        self.id_to_word.push(word.to_string());
        self.counts.push(1);
        id
    }

    /// Looks up the id of `word` without interning it.
    pub fn id_of(&self, word: &str) -> Option<usize> {
        self.word_to_id.get(word).copied()
    }

    /// The decode operation `E⁻¹`: recovers the string for an id.
    ///
    /// # Errors
    /// Returns [`EmbeddingError::UnknownId`] for ids never interned.
    pub fn decode(&self, id: usize) -> Result<&str> {
        self.id_to_word
            .get(id)
            .map(|s| s.as_str())
            .ok_or(EmbeddingError::UnknownId(id))
    }

    /// Occurrence count of an id (0 when unknown).
    pub fn count(&self, id: usize) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// `true` when the vocabulary holds no words.
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_word
            .iter()
            .enumerate()
            .map(|(i, w)| (i, w.as_str()))
    }

    /// Words sorted by descending frequency (ties by id), useful for
    /// inspecting the head of the distribution in examples and reports.
    pub fn most_frequent(&self, limit: usize) -> Vec<(&str, u64)> {
        let mut entries: Vec<(usize, u64)> = self.counts.iter().copied().enumerate().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries
            .into_iter()
            .take(limit)
            .map(|(id, c)| (self.id_to_word[id].as_str(), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_returns_stable_ids() {
        let mut v = Vocabulary::new();
        let a = v.add("dbms");
        let b = v.add("postgres");
        let a2 = v.add("dbms");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn counts_track_occurrences() {
        let mut v = Vocabulary::new();
        v.add("x");
        v.add("x");
        v.add("y");
        assert_eq!(v.count(v.id_of("x").unwrap()), 2);
        assert_eq!(v.count(v.id_of("y").unwrap()), 1);
        assert_eq!(v.count(99), 0);
    }

    #[test]
    fn decode_roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.add("barbecue");
        assert_eq!(v.decode(id).unwrap(), "barbecue");
    }

    #[test]
    fn decode_unknown_errors() {
        let v = Vocabulary::new();
        assert!(matches!(v.decode(0), Err(EmbeddingError::UnknownId(0))));
    }

    #[test]
    fn id_of_missing_is_none() {
        let v = Vocabulary::new();
        assert!(v.id_of("nope").is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.add("a");
        v.add("b");
        let collected: Vec<(usize, &str)> = v.iter().collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn most_frequent_sorted() {
        let mut v = Vocabulary::new();
        for _ in 0..3 {
            v.add("common");
        }
        v.add("rare");
        v.add("mid");
        v.add("mid");
        let top = v.most_frequent(2);
        assert_eq!(top[0].0, "common");
        assert_eq!(top[1].0, "mid");
    }
}
