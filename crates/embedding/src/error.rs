//! Error type for the embedding substrate.

use std::fmt;

/// Errors raised while building or using an embedding model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// A configuration value was invalid (zero dimension, empty n-gram range…).
    InvalidConfig(String),
    /// The requested word id does not exist in the vocabulary.
    UnknownId(usize),
    /// The training corpus was empty or otherwise unusable.
    EmptyCorpus,
    /// Serialisation / deserialisation of a persisted model failed.
    Serialization(String),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::InvalidConfig(msg) => write!(f, "invalid embedding config: {msg}"),
            EmbeddingError::UnknownId(id) => write!(f, "unknown vocabulary id {id}"),
            EmbeddingError::EmptyCorpus => write!(f, "training corpus is empty"),
            EmbeddingError::Serialization(msg) => write!(f, "model serialization error: {msg}"),
        }
    }
}

impl std::error::Error for EmbeddingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EmbeddingError::InvalidConfig("dim=0".into())
            .to_string()
            .contains("dim=0"));
        assert!(EmbeddingError::UnknownId(7).to_string().contains('7'));
        assert!(EmbeddingError::EmptyCorpus.to_string().contains("empty"));
        assert!(EmbeddingError::Serialization("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<EmbeddingError>();
    }
}
