//! Embedding cache and model-access accounting.
//!
//! The key logical optimisation of the paper (Section IV-A) is that the
//! naive E-NLJ invokes the model `|R| · |S|` times while the prefetch-aware
//! formulation needs only `|R| + |S|` invocations.  To make that difference
//! *measurable and testable* independent of wall-clock noise, every
//! operator-facing model goes through [`CachedEmbedder`], which
//!
//! * counts real model invocations and cache hits ([`EmbeddingStats`]), and
//! * optionally memoises embeddings per distinct input string, which is the
//!   "lookup table" flavour of model access described in the paper.
//!
//! The naive join operator deliberately uses an *uncached* wrapper so its
//! quadratic model cost is observable; the optimised operators prefetch
//! through a cached wrapper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use cej_vector::{Matrix, Vector};
use parking_lot::RwLock;

use crate::cost::ModelCostProfile;
use crate::model::Embedder;

/// Counters describing how an operator interacted with the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmbeddingStats {
    /// Number of real model invocations (cache misses + uncached calls).
    pub model_calls: u64,
    /// Number of calls served from the cache.
    pub cache_hits: u64,
}

impl EmbeddingStats {
    /// Total number of embedding requests observed.
    pub fn total_requests(&self) -> u64 {
        self.model_calls + self.cache_hits
    }
}

/// A counting (and optionally caching) wrapper around any [`Embedder`].
pub struct CachedEmbedder<E> {
    inner: E,
    cache: Option<RwLock<HashMap<String, Vector>>>,
    cost: ModelCostProfile,
    model_calls: AtomicU64,
    cache_hits: AtomicU64,
}

impl<E: Embedder> CachedEmbedder<E> {
    /// Caching wrapper: each distinct input invokes the model once.
    pub fn new(inner: E) -> Self {
        Self {
            inner,
            cache: Some(RwLock::new(HashMap::new())),
            cost: ModelCostProfile::free(),
            model_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Counting-only wrapper: every request invokes the model (used by the
    /// naive join to expose its quadratic model cost).
    pub fn uncached(inner: E) -> Self {
        Self {
            inner,
            cache: None,
            cost: ModelCostProfile::free(),
            model_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Attaches a simulated per-call model cost.
    pub fn with_cost(mut self, cost: ModelCostProfile) -> Self {
        self.cost = cost;
        self
    }

    /// Current counters.
    pub fn stats(&self) -> EmbeddingStats {
        EmbeddingStats {
            model_calls: self.model_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Resets counters (the cache itself is retained).
    pub fn reset_stats(&self) {
        self.model_calls.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }

    /// Clears any memoised embeddings.
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.write().clear();
        }
    }

    /// Number of memoised embeddings (0 for uncached wrappers).
    pub fn cached_entries(&self) -> usize {
        self.cache.as_ref().map(|c| c.read().len()).unwrap_or(0)
    }

    /// Access to the wrapped model.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn invoke_model(&self, input: &str) -> Vector {
        self.model_calls.fetch_add(1, Ordering::Relaxed);
        self.cost.simulate();
        self.inner.embed(input)
    }

    /// Embeds one input and reports whether a *real* model invocation was
    /// paid (`true`) or the request was served from the cache (`false`).
    ///
    /// This is the building block of per-run accounting: a query execution
    /// counting its own calls through this method stays exact even while
    /// other executions hammer the same shared cache — diffing the global
    /// [`CachedEmbedder::stats`] counters around a run would attribute
    /// concurrent runs' calls to this one.
    pub fn embed_counted(&self, input: &str) -> (Vector, bool) {
        match &self.cache {
            None => (self.invoke_model(input), true),
            Some(cache) => {
                if let Some(v) = cache.read().get(input) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return (v.clone(), false);
                }
                let v = self.invoke_model(input);
                cache.write().insert(input.to_string(), v.clone());
                (v, true)
            }
        }
    }

    /// [`Embedder::embed_batch`] plus the exact [`EmbeddingStats`] delta of
    /// *this very call* (model calls paid, cache hits served) — the batch
    /// counterpart of [`CachedEmbedder::embed_counted`].
    pub fn embed_batch_counted(&self, inputs: &[String]) -> (Matrix, EmbeddingStats) {
        let before_len = inputs.len() as u64;
        match &self.cache {
            None => (
                crate::model::embed_batch_with(self.dim(), inputs, |s| self.embed(s)),
                EmbeddingStats {
                    model_calls: before_len,
                    cache_hits: 0,
                },
            ),
            Some(_) => {
                let (matrix, misses) = self.embed_batch_dedup(inputs);
                (
                    matrix,
                    EmbeddingStats {
                        model_calls: misses as u64,
                        cache_hits: before_len - misses as u64,
                    },
                )
            }
        }
    }

    /// The caching batch body shared by [`Embedder::embed_batch`] and
    /// [`CachedEmbedder::embed_batch_counted`]; returns the assembled matrix
    /// and how many distinct uncached inputs invoked the model.
    fn embed_batch_dedup(&self, inputs: &[String]) -> (Matrix, usize) {
        let cache = self.cache.as_ref().expect("caching wrapper");
        if inputs.is_empty() {
            return (Matrix::zeros(0, self.dim()), 0);
        }
        let mut misses: Vec<&String> = Vec::new();
        {
            let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
            let read = cache.read();
            for input in inputs {
                if !read.contains_key(input.as_str()) && seen.insert(input.as_str()) {
                    misses.push(input);
                }
            }
        }
        let fresh =
            cej_exec::ExecPool::global().parallel_map(&misses, |input| self.invoke_model(input));
        {
            let mut write = cache.write();
            for (input, vector) in misses.iter().zip(fresh) {
                write.insert((*input).clone(), vector);
            }
        }
        // Assemble in input order.  The first occurrence of each miss is
        // already accounted as a model call; everything else is a hit,
        // matching what the serial per-input loop would have counted.
        let miss_count = misses.len();
        let mut first_use: std::collections::HashSet<&str> =
            misses.iter().map(|s| s.as_str()).collect();
        let read = cache.read();
        let mut m = Matrix::zeros(0, 0);
        for input in inputs {
            let v = read.get(input.as_str()).expect("filled above");
            if !first_use.remove(input.as_str()) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            m.push_row(v.as_slice()).expect("consistent dimensions");
        }
        (m, miss_count)
    }
}

impl<E: Embedder> Embedder for CachedEmbedder<E> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn embed(&self, input: &str) -> Vector {
        self.embed_counted(input).0
    }

    /// Batch path with exact accounting: the misses are computed first (in
    /// parallel, one model call per *distinct* uncached input), then the
    /// batch is assembled from the cache.  The per-input racy fallback of
    /// [`CachedEmbedder::embed`] — where two threads can both miss on the
    /// same string and double-count a model call — never happens here, so
    /// `model_calls` stays exact even under a multi-threaded pool.
    fn embed_batch(&self, inputs: &[String]) -> Matrix {
        match &self.cache {
            // Uncached wrappers count every request; run the shared
            // (parallel, order-preserving) per-input fan-out.
            None => crate::model::embed_batch_with(self.dim(), inputs, |s| self.embed(s)),
            Some(_) => self.embed_batch_dedup(inputs).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FastTextConfig, FastTextModel};

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn cached_embedder_invokes_model_once_per_distinct_input() {
        let e = CachedEmbedder::new(model());
        for _ in 0..5 {
            e.embed("dbms");
            e.embed("postgres");
        }
        let stats = e.stats();
        assert_eq!(stats.model_calls, 2);
        assert_eq!(stats.cache_hits, 8);
        assert_eq!(stats.total_requests(), 10);
        assert_eq!(e.cached_entries(), 2);
    }

    #[test]
    fn uncached_embedder_counts_every_call() {
        let e = CachedEmbedder::uncached(model());
        for _ in 0..4 {
            e.embed("dbms");
        }
        let stats = e.stats();
        assert_eq!(stats.model_calls, 4);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(e.cached_entries(), 0);
    }

    #[test]
    fn cached_and_uncached_produce_identical_vectors() {
        let cached = CachedEmbedder::new(model());
        let uncached = CachedEmbedder::uncached(model());
        assert_eq!(cached.embed("barbecue"), uncached.embed("barbecue"));
        // second call hits the cache but must return the same vector
        assert_eq!(cached.embed("barbecue"), uncached.embed("barbecue"));
    }

    #[test]
    fn reset_and_clear() {
        let e = CachedEmbedder::new(model());
        e.embed("a");
        e.embed("a");
        e.reset_stats();
        assert_eq!(e.stats(), EmbeddingStats::default());
        assert_eq!(e.cached_entries(), 1);
        e.clear_cache();
        assert_eq!(e.cached_entries(), 0);
        e.embed("a");
        assert_eq!(e.stats().model_calls, 1);
    }

    #[test]
    fn counted_apis_report_per_call_deltas() {
        let e = CachedEmbedder::new(model());
        let (_, paid) = e.embed_counted("a");
        assert!(paid, "first request invokes the model");
        let (_, paid) = e.embed_counted("a");
        assert!(!paid, "second request is a hit");
        let (m, delta) = e.embed_batch_counted(&["a".into(), "b".into(), "b".into()]);
        assert_eq!(m.rows(), 3);
        assert_eq!(delta.model_calls, 1, "only the distinct uncached input");
        assert_eq!(delta.cache_hits, 2);
        // the per-call delta matches what the global counters moved by
        assert_eq!(e.stats().model_calls, 2);
        let un = CachedEmbedder::uncached(model());
        let (_, delta) = un.embed_batch_counted(&["x".into(), "x".into()]);
        assert_eq!(delta.model_calls, 2, "uncached wrappers pay every request");
        assert_eq!(delta.cache_hits, 0);
    }

    #[test]
    fn dim_is_forwarded() {
        let e = CachedEmbedder::new(model());
        assert_eq!(e.dim(), 16);
        assert_eq!(e.inner().dim(), 16);
    }

    #[test]
    fn concurrent_embedding_is_consistent() {
        let e = std::sync::Arc::new(CachedEmbedder::new(model()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                for w in ["alpha", "beta", "gamma"] {
                    let v = e.embed(w);
                    assert_eq!(v.dim(), 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // every thread requested 3 words; each distinct word required at
        // least one and at most 4 model calls (benign race on first fill)
        let stats = e.stats();
        assert!(stats.model_calls >= 3 && stats.model_calls <= 12);
        assert_eq!(stats.total_requests(), 12);
    }
}
