//! Simulated model invocation cost.
//!
//! The paper's cost model (Section IV-A) treats the model cost `M` as a
//! first-class term: it can range "from random access to a lookup table …
//! to expensive computations over deep neural networks", and when embeddings
//! are bought as a service it is literally a monetary cost per call.  Our
//! FastText-style model is cheap, so to study how the operators behave with
//! expensive models (and to make the quadratic-vs-linear model access cost of
//! the naive E-NLJ visible at small scales) the benchmark harness can attach
//! a [`ModelCostProfile`] that adds a deterministic busy-wait per model call.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Simulated per-invocation model cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ModelCostProfile {
    /// Extra latency added to every *real* (non-cached) model invocation, in
    /// nanoseconds.  Zero means "no simulation" and is the default.
    pub per_call_nanos: u64,
    /// How the latency is simulated: `false` (default) busy-waits —
    /// the model *computes* for that long, burning a core — while `true`
    /// sleeps — the model is a *remote service* and the calling thread
    /// blocks on I/O.  The distinction matters for concurrency studies: a
    /// server overlaps blocked remote calls across queries but cannot
    /// overlap busy cores, which is exactly the regime split the serving
    /// benchmarks measure.
    pub blocking: bool,
}

impl ModelCostProfile {
    /// No added cost (the raw model cost only).
    pub fn free() -> Self {
        Self {
            per_call_nanos: 0,
            blocking: false,
        }
    }

    /// Adds `nanos` nanoseconds of busy-wait per model call.
    pub fn from_nanos(nanos: u64) -> Self {
        Self {
            per_call_nanos: nanos,
            blocking: false,
        }
    }

    /// Adds `micros` microseconds of busy-wait per model call — a realistic
    /// magnitude for a transformer encoder on CPU.
    pub fn from_micros(micros: u64) -> Self {
        Self {
            per_call_nanos: micros * 1_000,
            blocking: false,
        }
    }

    /// Simulates a *remote* embedding service with `micros` microseconds of
    /// round-trip latency per model call: the calling thread sleeps (blocks)
    /// instead of spinning, so concurrent queries overlap their model
    /// latency the way real service calls do.  The paper's "embeddings
    /// bought as a service" cost regime.
    pub fn remote_micros(micros: u64) -> Self {
        Self {
            per_call_nanos: micros * 1_000,
            blocking: true,
        }
    }

    /// `true` when no artificial cost is added.
    pub fn is_free(&self) -> bool {
        self.per_call_nanos == 0
    }

    /// Waits for the configured duration (no-op when free): a busy-wait for
    /// compute-style costs, a `thread::sleep` for blocking remote-service
    /// costs.
    ///
    /// The busy-wait exists because sleep granularity on most systems is far
    /// coarser than the sub-microsecond compute costs we simulate; remote
    /// latencies are orders of magnitude above that granularity, so sleeping
    /// is both accurate and faithful (the core is genuinely free).
    #[inline]
    pub fn simulate(&self) {
        if self.per_call_nanos == 0 {
            return;
        }
        let target = Duration::from_nanos(self.per_call_nanos);
        if self.blocking {
            std::thread::sleep(target);
            return;
        }
        let start = Instant::now();
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_profile_is_noop() {
        let p = ModelCostProfile::free();
        assert!(p.is_free());
        let start = Instant::now();
        for _ in 0..1000 {
            p.simulate();
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn from_micros_converts() {
        assert_eq!(ModelCostProfile::from_micros(3).per_call_nanos, 3_000);
        assert!(!ModelCostProfile::from_micros(3).is_free());
    }

    #[test]
    fn simulate_waits_at_least_requested_time() {
        let p = ModelCostProfile::from_micros(200);
        let start = Instant::now();
        p.simulate();
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn default_is_free() {
        assert!(ModelCostProfile::default().is_free());
        assert!(!ModelCostProfile::default().blocking);
    }

    #[test]
    fn remote_profile_sleeps_for_the_requested_time() {
        let p = ModelCostProfile::remote_micros(500);
        assert!(p.blocking);
        assert!(!p.is_free());
        let start = Instant::now();
        p.simulate();
        assert!(start.elapsed() >= Duration::from_micros(500));
    }
}
