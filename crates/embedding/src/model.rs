//! The FastText-style embedding model and the [`Embedder`] abstraction.
//!
//! [`FastTextModel`] reproduces the *inference-time* structure of FastText:
//! a word's embedding is the mean of the vectors of its hashed character
//! n-grams (plus the word itself), optionally overridden by a trained
//! per-word vector for in-vocabulary words.  Bucket vectors are generated
//! deterministically from the bucket id and the model seed, so the model
//! needs no giant parameter table and is bit-for-bit reproducible — the same
//! role the fixed RNG seed plays in the paper's experiments.
//!
//! The join operators never talk to [`FastTextModel`] directly; they use the
//! [`Embedder`] trait, which is all the separation-of-concerns contract the
//! paper requires from a model: *strings in, fixed-dimension vectors out*.

use std::collections::HashMap;

use cej_vector::{Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::error::EmbeddingError;
use crate::hasher::{bucket_of, SplitMix64};
use crate::ngram::{extract_ngrams, NgramRange};
use crate::tokenizer::Tokenizer;
use crate::vocab::Vocabulary;
use crate::Result;

/// The model abstraction used by every context-enhanced operator.
///
/// Implementors must be cheap to share across threads (`Send + Sync`) because
/// the parallel join operators embed tuples from worker threads.
pub trait Embedder: Send + Sync {
    /// Dimensionality of produced embeddings.
    fn dim(&self) -> usize;

    /// Embeds a single string into a `dim()`-dimensional vector.
    fn embed(&self, input: &str) -> Vector;

    /// Embeds a batch of strings into a row-per-input matrix.
    ///
    /// The default implementation fans the inputs out over the shared
    /// worker pool ([`cej_exec::ExecPool::global`], sized by `CEJ_THREADS`)
    /// and reassembles rows in input order, so the result is identical to
    /// the serial loop for every thread count.  Models with real batched
    /// inference can override it.
    fn embed_batch(&self, inputs: &[String]) -> Matrix {
        embed_batch_with(self.dim(), inputs, |input| self.embed(input))
    }
}

/// The shared batch-embedding fan-out: maps `embed` over `inputs` on the
/// global worker pool and reassembles one matrix row per input, in input
/// order.  Used by the [`Embedder::embed_batch`] default and by wrappers
/// (e.g. the counting cache) whose per-input closure differs.
pub(crate) fn embed_batch_with<F>(dim: usize, inputs: &[String], embed: F) -> Matrix
where
    F: Fn(&String) -> Vector + Sync,
{
    if inputs.is_empty() {
        return Matrix::zeros(0, dim);
    }
    let rows = cej_exec::ExecPool::global().parallel_map(inputs, embed);
    let mut m = Matrix::zeros(0, 0);
    for v in rows {
        m.push_row(v.as_slice())
            .expect("embedder produced inconsistent dimensions");
    }
    m
}

/// Configuration of [`FastTextModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastTextConfig {
    /// Embedding dimensionality (the paper uses 100).
    pub dim: usize,
    /// Number of hash buckets shared by all n-grams.
    pub buckets: usize,
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length.
    pub max_n: usize,
    /// Seed for the deterministic bucket-vector generator.
    pub seed: u64,
    /// Whether produced embeddings are L2-normalised.
    pub normalize: bool,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        Self {
            dim: 100,
            buckets: 200_000,
            min_n: 3,
            max_n: 6,
            seed: 42,
            normalize: true,
        }
    }
}

impl FastTextConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`EmbeddingError::InvalidConfig`] for zero dimension, zero
    /// buckets, or an inverted n-gram range.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(EmbeddingError::InvalidConfig("dim must be > 0".into()));
        }
        if self.buckets == 0 {
            return Err(EmbeddingError::InvalidConfig("buckets must be > 0".into()));
        }
        if self.min_n == 0 || self.max_n < self.min_n {
            return Err(EmbeddingError::InvalidConfig(format!(
                "invalid n-gram range {}..={}",
                self.min_n, self.max_n
            )));
        }
        Ok(())
    }

    /// The n-gram range as an [`NgramRange`].
    pub fn ngram_range(&self) -> NgramRange {
        NgramRange::new(self.min_n, self.max_n)
    }
}

/// FastText-style subword hashing embedding model.
#[derive(Debug, Clone)]
pub struct FastTextModel {
    config: FastTextConfig,
    tokenizer: Tokenizer,
    /// Trained per-word vectors that override the subword composition for
    /// in-vocabulary words (populated by [`crate::train::train_on_corpus`]).
    word_vectors: HashMap<String, Vector>,
    /// Vocabulary observed during training; also the `E⁻¹` lookup table.
    vocab: Vocabulary,
}

impl FastTextModel {
    /// Creates an untrained model from a configuration.
    ///
    /// # Errors
    /// Returns [`EmbeddingError::InvalidConfig`] for invalid configurations.
    pub fn new(config: FastTextConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tokenizer: Tokenizer::new(true),
            word_vectors: HashMap::new(),
            vocab: Vocabulary::new(),
        })
    }

    /// Creates a model with the paper's default configuration (100-D).
    pub fn with_dim(dim: usize) -> Result<Self> {
        Self::new(FastTextConfig {
            dim,
            ..FastTextConfig::default()
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &FastTextConfig {
        &self.config
    }

    /// The training vocabulary (empty for untrained models).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Replaces the tokenizer (e.g. to keep stop words).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Number of words with trained (overridden) vectors.
    pub fn trained_words(&self) -> usize {
        self.word_vectors.len()
    }

    /// Deterministically generates the vector of a hash bucket.
    fn bucket_vector(&self, bucket: usize) -> Vector {
        let mut rng = SplitMix64::new(self.config.seed ^ (bucket as u64).wrapping_mul(0x9E3779B9));
        let scale = 1.0 / self.config.dim as f32;
        let data = (0..self.config.dim)
            .map(|_| rng.next_symmetric(scale))
            .collect();
        Vector::new(data)
    }

    /// Composes the subword embedding of a single (already normalised) token.
    fn subword_embedding(&self, token: &str) -> Vector {
        let grams = extract_ngrams(token, self.config.ngram_range());
        let mut acc = Vector::zeros(self.config.dim);
        for gram in &grams {
            let bucket = bucket_of(gram, self.config.buckets);
            acc.add_assign(&self.bucket_vector(bucket))
                .expect("bucket vectors share dim");
        }
        if !grams.is_empty() {
            acc.scale(1.0 / grams.len() as f32);
        }
        acc
    }

    /// Embedding of a single token, preferring a trained vector when present.
    fn token_embedding(&self, token: &str) -> Vector {
        if let Some(v) = self.word_vectors.get(token) {
            return v.clone();
        }
        self.subword_embedding(token)
    }

    /// Installs (or overwrites) a trained vector for `word` and interns the
    /// word into the vocabulary / decode table.  Used by the trainer.
    pub(crate) fn set_word_vector(&mut self, word: &str, vector: Vector) {
        self.vocab.add(word);
        self.word_vectors.insert(word.to_string(), vector);
    }

    /// Returns the trained vector of `word`, if any.
    pub fn word_vector(&self, word: &str) -> Option<&Vector> {
        self.word_vectors.get(word)
    }

    /// Decodes an embedding back to the `k` nearest vocabulary words
    /// (the lookup-table realisation of `E⁻¹` from Section III-C).
    ///
    /// Returns `(word, cosine_similarity)` pairs, best first.  Untrained
    /// models have an empty vocabulary and therefore return an empty list.
    pub fn decode_nearest(&self, embedding: &Vector, k: usize) -> Vec<(String, f32)> {
        let mut scored: Vec<(String, f32)> = self
            .vocab
            .iter()
            .filter_map(|(_, word)| {
                let v = self.token_embedding(word);
                let sim = embedding.cosine_similarity(&v).ok()?;
                Some((word.to_string(), sim))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Convenience wrapper: nearest vocabulary words for a query string,
    /// excluding the query itself — this regenerates Table II rows.
    pub fn nearest_words(&self, query: &str, k: usize) -> Vec<(String, f32)> {
        let normalized_query = self.tokenizer.normalize_word(query);
        let emb = self.embed(query);
        self.decode_nearest(&emb, k + 1)
            .into_iter()
            .filter(|(w, _)| *w != normalized_query)
            .take(k)
            .collect()
    }
}

impl Embedder for FastTextModel {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn embed(&self, input: &str) -> Vector {
        let tokens = self.tokenizer.tokenize(input);
        let mut out = if tokens.is_empty() {
            // Degenerate inputs (empty strings, pure stop words) embed to the
            // zero vector, which never satisfies a positive similarity
            // threshold downstream.
            Vector::zeros(self.config.dim)
        } else {
            let parts: Vec<Vector> = tokens.iter().map(|t| self.token_embedding(t)).collect();
            Vector::mean(&parts).expect("token embeddings share dimensionality")
        };
        if self.config.normalize {
            out.normalize();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FastTextModel {
        FastTextModel::new(FastTextConfig {
            dim: 32,
            buckets: 5_000,
            ..FastTextConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(FastTextConfig {
            dim: 0,
            ..FastTextConfig::default()
        }
        .validate()
        .is_err());
        assert!(FastTextConfig {
            buckets: 0,
            ..FastTextConfig::default()
        }
        .validate()
        .is_err());
        assert!(FastTextConfig {
            min_n: 4,
            max_n: 3,
            ..FastTextConfig::default()
        }
        .validate()
        .is_err());
        assert!(FastTextConfig::default().validate().is_ok());
    }

    #[test]
    fn embeddings_have_configured_dim() {
        let m = model();
        assert_eq!(m.dim(), 32);
        assert_eq!(m.embed("barbecue").dim(), 32);
    }

    #[test]
    fn embedding_is_deterministic() {
        let m1 = model();
        let m2 = model();
        assert_eq!(m1.embed("database systems"), m2.embed("database systems"));
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let a = FastTextModel::new(FastTextConfig {
            dim: 32,
            seed: 1,
            ..FastTextConfig::default()
        })
        .unwrap();
        let b = FastTextModel::new(FastTextConfig {
            dim: 32,
            seed: 2,
            ..FastTextConfig::default()
        })
        .unwrap();
        assert_ne!(a.embed("dbms"), b.embed("dbms"));
    }

    #[test]
    fn normalized_embeddings_have_unit_norm() {
        let m = model();
        let v = m.embed("postgres");
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_input_embeds_to_zero() {
        let m = model();
        let v = m.embed("");
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        // stop words only
        let v2 = m.embed("the of and");
        assert!(v2.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn misspelling_is_closer_than_unrelated_word() {
        let m = model();
        let base = m.embed("barbecue");
        let misspelled = m.embed("barbicue");
        let unrelated = m.embed("spreadsheet");
        let sim_typo = base.cosine_similarity(&misspelled).unwrap();
        let sim_unrelated = base.cosine_similarity(&unrelated).unwrap();
        assert!(
            sim_typo > sim_unrelated,
            "typo sim {sim_typo} should exceed unrelated sim {sim_unrelated}"
        );
    }

    #[test]
    fn plural_shares_subwords_with_singular() {
        let m = model();
        let sim = m
            .embed("barbecue")
            .cosine_similarity(&m.embed("barbecues"))
            .unwrap();
        assert!(sim > 0.5);
    }

    #[test]
    fn multi_word_text_is_mean_of_tokens() {
        let m = FastTextModel::new(FastTextConfig {
            dim: 16,
            buckets: 1000,
            normalize: false,
            ..FastTextConfig::default()
        })
        .unwrap();
        let a = m.embed("alpha");
        let b = m.embed("beta");
        let combined = m.embed("alpha beta");
        let mean = Vector::mean(&[a, b]).unwrap();
        for (x, y) in combined.as_slice().iter().zip(mean.as_slice().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn embed_batch_matches_individual() {
        let m = model();
        let inputs = vec![
            "dbms".to_string(),
            "postgres".to_string(),
            "grill".to_string(),
        ];
        let batch = m.embed_batch(&inputs);
        assert_eq!(batch.rows(), 3);
        for (i, s) in inputs.iter().enumerate() {
            assert_eq!(batch.row(i).unwrap(), m.embed(s).as_slice());
        }
    }

    #[test]
    fn embed_batch_empty_input() {
        let m = model();
        let batch = m.embed_batch(&[]);
        assert_eq!(batch.rows(), 0);
        assert_eq!(batch.cols(), 32);
    }

    #[test]
    fn trained_vector_overrides_subword_composition() {
        let mut m = model();
        let custom = Vector::splat(32, 0.5);
        m.set_word_vector("dbms", custom.clone());
        assert_eq!(m.word_vector("dbms"), Some(&custom));
        assert_eq!(m.trained_words(), 1);
        let emb = m.embed("dbms");
        // normalised version of the custom vector
        assert!((emb.norm() - 1.0).abs() < 1e-5);
        assert!(emb.cosine_similarity(&custom).unwrap() > 0.999);
    }

    #[test]
    fn decode_nearest_finds_trained_words() {
        let mut m = model();
        m.set_word_vector("grill", Vector::splat(32, 0.3));
        m.set_word_vector("barbecue", Vector::splat(32, 0.31));
        let query = m.embed("grill");
        let nearest = m.decode_nearest(&query, 2);
        assert_eq!(nearest.len(), 2);
        assert!(nearest.iter().any(|(w, _)| w == "grill"));
    }

    #[test]
    fn nearest_words_excludes_query() {
        let mut m = model();
        m.set_word_vector("grill", Vector::splat(32, 0.3));
        m.set_word_vector("barbecue", Vector::splat(32, 0.29));
        let out = m.nearest_words("grill", 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, "barbecue");
    }

    #[test]
    fn untrained_model_decodes_to_empty() {
        let m = model();
        assert!(m.decode_nearest(&Vector::zeros(32), 5).is_empty());
    }
}
