//! # cej-embedding
//!
//! FastText-style word/sentence embedding model substrate for the
//! context-enhanced relational join (CEJ) reproduction.
//!
//! The paper uses a FastText model (100-D, trained on Wikipedia) as the
//! context provider `E_mu`: it turns strings — possibly misspelled, inflected
//! or synonymous — into dense vectors that the relational engine can compare
//! with cosine similarity.  The engine itself never interprets the vectors;
//! this *separation of concerns* is the paper's central design principle.
//!
//! This crate rebuilds that substrate from scratch:
//!
//! * [`tokenizer`] — lower-casing, punctuation stripping, stop-word removal.
//! * [`ngram`] — character n-gram extraction with `<` / `>` boundary markers,
//!   exactly like FastText's subword features, which is what makes the model
//!   robust to misspellings and out-of-vocabulary words.
//! * [`hasher`] — FNV-1a hashing of n-grams into a fixed bucket space.
//! * [`model`] — [`FastTextModel`]: composes a word embedding as the mean of
//!   its n-gram bucket vectors; bucket vectors come from a deterministic
//!   seeded projection, optionally refined by corpus training.
//! * [`train`] — a lightweight co-occurrence "retrofit" trainer that pulls
//!   words appearing in similar contexts towards each other, enough to
//!   reproduce the semantic-clustering behaviour of Table II on a synthetic
//!   synonym corpus.
//! * [`vocab`] — the vocabulary and the id ↔ string lookup table, which also
//!   implements the paper's decode operation `E⁻¹` (Section III-C) for models
//!   without a generative decoder.
//! * [`cache`] — an embedding cache with *model access accounting*: every
//!   operator-visible embedding call is counted, so tests and benchmarks can
//!   verify the quadratic-vs-linear model cost claim of the cost model
//!   exactly (Section IV-A, Figure 8).
//! * [`cost`] — an optional simulated per-call model latency, standing in for
//!   expensive deep models or paid embedding APIs.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod cost;
pub mod error;
pub mod hasher;
pub mod model;
pub mod ngram;
pub mod tokenizer;
pub mod train;
pub mod vocab;

pub use cache::{CachedEmbedder, EmbeddingStats};
pub use cost::ModelCostProfile;
pub use error::EmbeddingError;
pub use model::{Embedder, FastTextConfig, FastTextModel};
pub use tokenizer::Tokenizer;
pub use train::{train_on_corpus, TrainingConfig};
pub use vocab::Vocabulary;

/// Result alias for the embedding substrate.
pub type Result<T> = std::result::Result<T, EmbeddingError>;
