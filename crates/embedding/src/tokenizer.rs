//! String normalisation and tokenisation.
//!
//! The paper's dataset preparation cleans the Wikipedia corpus of stop words
//! before training the FastText model (Section VI-A).  The tokenizer here
//! performs the equivalent normalisation for both training sentences and the
//! strings flowing through the join: lower-casing, punctuation and digit
//! stripping, whitespace splitting, and optional stop-word removal.

use std::collections::HashSet;

/// A small English stop-word list; enough to mirror the paper's
/// "cleaned of stopwords" preprocessing on synthetic corpora.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

/// Configurable tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    remove_stopwords: bool,
    stopwords: HashSet<String>,
    min_token_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new(true)
    }
}

impl Tokenizer {
    /// Creates a tokenizer; `remove_stopwords` controls stop-word filtering.
    pub fn new(remove_stopwords: bool) -> Self {
        Self {
            remove_stopwords,
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect(),
            min_token_len: 1,
        }
    }

    /// Replaces the stop-word list.
    pub fn with_stopwords<I: IntoIterator<Item = String>>(mut self, words: I) -> Self {
        self.stopwords = words.into_iter().collect();
        self
    }

    /// Sets a minimum token length; shorter tokens are discarded.
    pub fn with_min_token_len(mut self, len: usize) -> Self {
        self.min_token_len = len.max(1);
        self
    }

    /// Normalises a single word: lower-case, keep only alphanumeric characters.
    pub fn normalize_word(&self, word: &str) -> String {
        word.chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(|c| c.to_lowercase())
            .collect()
    }

    /// Splits `text` into normalised tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| c.is_whitespace() || c == '-' || c == '_' || c == '/')
            .map(|w| self.normalize_word(w))
            .filter(|w| w.len() >= self.min_token_len)
            .filter(|w| !self.remove_stopwords || !self.stopwords.contains(w))
            .collect()
    }

    /// `true` when the (already normalised) token is a stop word.
    pub fn is_stopword(&self, token: &str) -> bool {
        self.stopwords.contains(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        let t = Tokenizer::new(false);
        assert_eq!(t.normalize_word("Bar-B.Q!"), "barbq");
        assert_eq!(t.tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn removes_stopwords_when_enabled() {
        let t = Tokenizer::new(true);
        assert_eq!(
            t.tokenize("the quick brown fox is fast"),
            vec!["quick", "brown", "fox", "fast"]
        );
    }

    #[test]
    fn keeps_stopwords_when_disabled() {
        let t = Tokenizer::new(false);
        assert!(t.tokenize("the fox").contains(&"the".to_string()));
    }

    #[test]
    fn splits_on_hyphen_underscore_slash() {
        let t = Tokenizer::new(false);
        assert_eq!(
            t.tokenize("data-base_system/engine"),
            vec!["data", "base", "system", "engine"]
        );
    }

    #[test]
    fn min_token_len_filters_short_tokens() {
        let t = Tokenizer::new(false).with_min_token_len(3);
        assert_eq!(t.tokenize("a an the dbms"), vec!["the", "dbms"]);
    }

    #[test]
    fn custom_stopwords() {
        let t = Tokenizer::new(true).with_stopwords(vec!["dbms".to_string()]);
        assert_eq!(t.tokenize("the dbms rocks"), vec!["the", "rocks"]);
        assert!(t.is_stopword("dbms"));
        assert!(!t.is_stopword("the"));
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let t = Tokenizer::new(false);
        assert_eq!(t.tokenize("Zürich café"), vec!["zürich", "café"]);
    }

    #[test]
    fn digits_are_kept_as_alphanumeric() {
        let t = Tokenizer::new(false);
        assert_eq!(t.tokenize("ipv6 2024"), vec!["ipv6", "2024"]);
    }
}
