//! Character n-gram extraction with word boundary markers.
//!
//! FastText represents each word as the bag of its character n-grams plus the
//! whole word, where the word is wrapped in `<` and `>` boundary markers
//! (e.g. `where` with n = 3 yields `<wh`, `whe`, `her`, `ere`, `re>` and the
//! special sequence `<where>`).  Sharing n-grams is what gives the model its
//! robustness to misspellings and out-of-vocabulary words — the property the
//! paper relies on for context-aware joins over dirty strings.

/// Inclusive n-gram length range used for subword extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NgramRange {
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length (inclusive).
    pub max_n: usize,
}

impl Default for NgramRange {
    fn default() -> Self {
        // FastText's default subword range.
        Self { min_n: 3, max_n: 6 }
    }
}

impl NgramRange {
    /// Creates a new range, clamping degenerate values to at least 1.
    pub fn new(min_n: usize, max_n: usize) -> Self {
        let min_n = min_n.max(1);
        Self {
            min_n,
            max_n: max_n.max(min_n),
        }
    }
}

/// Wraps a word with the FastText boundary markers.
pub fn wrap_word(word: &str) -> String {
    let mut s = String::with_capacity(word.len() + 2);
    s.push('<');
    s.push_str(word);
    s.push('>');
    s
}

/// Extracts the character n-grams of `word` (with boundary markers) for every
/// length in `range`, plus the full wrapped word itself.
///
/// Extraction is performed over Unicode scalar values, not bytes, so
/// multi-byte characters never get split.
pub fn extract_ngrams(word: &str, range: NgramRange) -> Vec<String> {
    let wrapped = wrap_word(word);
    let chars: Vec<char> = wrapped.chars().collect();
    let mut out = Vec::new();
    for n in range.min_n..=range.max_n {
        if n > chars.len() {
            break;
        }
        for start in 0..=(chars.len() - n) {
            out.push(chars[start..start + n].iter().collect());
        }
    }
    // The full word sequence is always included (even when longer than max_n)
    // so that frequent exact words keep a dedicated feature.
    if !out.contains(&wrapped) {
        out.push(wrapped);
    }
    out
}

/// Jaccard overlap between the n-gram sets of two words — a cheap diagnostic
/// used in tests to confirm that misspellings share most of their subwords.
pub fn ngram_overlap(a: &str, b: &str, range: NgramRange) -> f32 {
    use std::collections::HashSet;
    let sa: HashSet<String> = extract_ngrams(a, range).into_iter().collect();
    let sb: HashSet<String> = extract_ngrams(b, range).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_with_markers() {
        assert_eq!(wrap_word("abc"), "<abc>");
    }

    #[test]
    fn extracts_expected_trigrams() {
        let grams = extract_ngrams("ab", NgramRange::new(3, 3));
        // "<ab>" has chars < a b > : trigrams "<ab", "ab>", plus full "<ab>"
        assert!(grams.contains(&"<ab".to_string()));
        assert!(grams.contains(&"ab>".to_string()));
        assert!(grams.contains(&"<ab>".to_string()));
        assert_eq!(grams.len(), 3);
    }

    #[test]
    fn range_of_lengths() {
        let grams = extract_ngrams("cat", NgramRange::new(2, 3));
        // wrapped "<cat>" : 2-grams: <c ca at t> ; 3-grams: <ca cat at>
        assert!(grams.contains(&"<c".to_string()));
        assert!(grams.contains(&"at>".to_string()));
        assert!(grams.contains(&"cat".to_string()));
        assert!(grams.contains(&"<cat>".to_string()));
    }

    #[test]
    fn full_word_always_included() {
        let grams = extract_ngrams("barbecue", NgramRange::new(3, 4));
        assert!(grams.contains(&"<barbecue>".to_string()));
    }

    #[test]
    fn short_word_with_large_min_n() {
        let grams = extract_ngrams("a", NgramRange::new(5, 6));
        // only the wrapped word "<a>" survives
        assert_eq!(grams, vec!["<a>".to_string()]);
    }

    #[test]
    fn unicode_not_split_mid_character() {
        let grams = extract_ngrams("über", NgramRange::new(3, 3));
        for g in &grams {
            assert!(g.chars().count() <= 6);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn misspellings_share_most_ngrams() {
        let overlap_misspelling = ngram_overlap("barbecue", "barbicue", NgramRange::default());
        let overlap_unrelated = ngram_overlap("barbecue", "database", NgramRange::default());
        assert!(overlap_misspelling > 0.1, "got {overlap_misspelling}");
        assert!(overlap_unrelated < overlap_misspelling);
    }

    #[test]
    fn degenerate_range_clamped() {
        let r = NgramRange::new(0, 0);
        assert_eq!(r.min_n, 1);
        assert_eq!(r.max_n, 1);
        let r2 = NgramRange::new(5, 2);
        assert_eq!(r2.max_n, 5);
    }

    #[test]
    fn default_range_is_fasttext_default() {
        let r = NgramRange::default();
        assert_eq!((r.min_n, r.max_n), (3, 6));
    }
}
