//! FNV-1a hashing of n-grams into a fixed bucket space.
//!
//! FastText does not store a vector per distinct n-gram; it hashes n-grams
//! into a fixed number of buckets (2 M by default) and learns one vector per
//! bucket.  We reproduce the same trick with the classic 64-bit FNV-1a hash,
//! which is deterministic across runs and platforms — determinism matters
//! because the paper's experiments fix the random seed for reproducibility.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// Hashes a byte string with 64-bit FNV-1a.
#[inline]
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes an n-gram string into a bucket index in `[0, buckets)`.
///
/// # Panics
/// Panics if `buckets == 0`; the model configuration validates this earlier.
#[inline]
pub fn bucket_of(ngram: &str, buckets: usize) -> usize {
    assert!(buckets > 0, "bucket count must be non-zero");
    (fnv1a(ngram.as_bytes()) % buckets as u64) as usize
}

/// A deterministic pseudo-random stream seeded from a hash value, used to
/// initialise bucket vectors without an external RNG dependency.
///
/// This is the SplitMix64 generator: tiny, fast, and good enough for
/// initialising embedding components uniformly in `[-0.5/dim, 0.5/dim)`, the
/// same initialisation scale FastText uses.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next `f32` uniform in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Next `f32` uniform in `[-scale, scale)`.
    #[inline]
    pub fn next_symmetric(&mut self, scale: f32) -> f32 {
        (self.next_f32() * 2.0 - 1.0) * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv1a(b"dbms"), fnv1a(b"dbms"));
        assert_ne!(fnv1a(b"dbms"), fnv1a(b"rdbms"));
    }

    #[test]
    fn fnv_known_value_for_empty_input() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn bucket_within_range() {
        for word in ["a", "barbecue", "<dbms>", "ngram with spaces"] {
            let b = bucket_of(word, 1000);
            assert!(b < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "bucket count")]
    fn zero_buckets_panics() {
        bucket_of("x", 0);
    }

    #[test]
    fn splitmix_deterministic_with_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_symmetric_in_range_and_not_degenerate() {
        let mut g = SplitMix64::new(9);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..1000 {
            let v = g.next_symmetric(0.1);
            assert!((-0.1..0.1).contains(&v));
            saw_negative |= v < 0.0;
            saw_positive |= v > 0.0;
        }
        assert!(saw_negative && saw_positive);
    }
}
