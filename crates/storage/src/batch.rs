//! Column batches with selection vectors — the unit of work exchanged by the
//! vectorised executor.
//!
//! Following the MonetDB/X100 design, operators pass around fixed-size
//! *batches* of rows instead of whole tables.  A batch never copies data out
//! of its base [`Table`]: it is a window `[start, end)` of row positions plus
//! a **selection vector** listing the lanes that are still alive after
//! filtering.  `Filter` shrinks the selection vector, `Project` narrows the
//! set of visible columns, and only a materialising boundary (`Embed`, join
//! probe, final drain) gathers the surviving lanes into contiguous storage.

use crate::column::Column;
use crate::error::StorageError;
use crate::table::Table;
use crate::Result;

/// Default number of rows per batch handed between operators.
///
/// 1024 rows keeps a batch's working set inside the L1/L2 caches for typical
/// schemas while amortising per-batch dispatch overhead, matching the
/// X100-recommended vector length.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// A zero-copy view over a subset of a table's rows and columns.
///
/// `sel` holds **absolute row indices** into `table` (ascending, no repeats
/// for pipeline batches; gather-style repeats are allowed), and `visible`
/// holds the schema positions of the columns the view exposes, in output
/// order.
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    table: &'a Table,
    sel: &'a [u32],
    visible: &'a [usize],
}

impl<'a> BatchView<'a> {
    /// Creates a validated view.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] when a selection lane exceeds
    /// the row count or a visible index exceeds the column count.
    pub fn new(table: &'a Table, sel: &'a [u32], visible: &'a [usize]) -> Result<Self> {
        for &lane in sel {
            if lane as usize >= table.num_rows() {
                return Err(StorageError::RowOutOfBounds {
                    row: lane as usize,
                    rows: table.num_rows(),
                });
            }
        }
        for &col in visible {
            if col >= table.num_columns() {
                return Err(StorageError::RowOutOfBounds {
                    row: col,
                    rows: table.num_columns(),
                });
            }
        }
        Ok(Self {
            table,
            sel,
            visible,
        })
    }

    /// The base table the view windows into.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The selection vector (absolute row indices into the base table).
    pub fn selection(&self) -> &'a [u32] {
        self.sel
    }

    /// The visible column positions, in output order.
    pub fn visible(&self) -> &'a [usize] {
        self.visible
    }

    /// Number of selected lanes (the batch's logical row count).
    pub fn num_selected(&self) -> usize {
        self.sel.len()
    }

    /// `true` when no lanes survive.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Materialises the view into an owned table: visible columns only, in
    /// view order, with exactly the selected lanes.
    ///
    /// # Errors
    /// Propagates column gather / table construction errors.
    pub fn gather(&self) -> Result<Table> {
        let mut names = Vec::with_capacity(self.visible.len());
        let mut columns = Vec::with_capacity(self.visible.len());
        for &col in self.visible {
            names.push(self.table.schema().fields()[col].name.as_str());
            columns.push(self.table.column(col)?.gather(self.sel)?);
        }
        let schema = self.table.schema().project(&names)?;
        Table::new(schema, columns)
    }

    /// Borrows a visible column of the base table by *view* position.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] when `i` exceeds the number
    /// of visible columns.
    pub fn column(&self, i: usize) -> Result<&'a Column> {
        let &base = self.visible.get(i).ok_or(StorageError::RowOutOfBounds {
            row: i,
            rows: self.visible.len(),
        })?;
        self.table.column(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::scalar::ScalarValue;
    use crate::schema::{Field, Schema};

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("word", DataType::Utf8),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::Int64(vec![10, 20, 30, 40]),
                Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn view_validates_bounds() {
        let t = sample();
        assert!(BatchView::new(&t, &[0, 4], &[0]).is_err());
        assert!(BatchView::new(&t, &[0], &[2]).is_err());
        let v = BatchView::new(&t, &[1, 3], &[1, 0]).unwrap();
        assert_eq!(v.num_selected(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn gather_materialises_selected_lanes_and_visible_columns() {
        let t = sample();
        let v = BatchView::new(&t, &[3, 1], &[1]).unwrap();
        let out = v.gather().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.value(0, "word").unwrap(), ScalarValue::Utf8("d".into()));
        assert_eq!(out.value(1, "word").unwrap(), ScalarValue::Utf8("b".into()));
    }

    #[test]
    fn column_resolves_view_positions() {
        let t = sample();
        let v = BatchView::new(&t, &[0], &[1, 0]).unwrap();
        assert_eq!(v.column(0).unwrap().data_type(), DataType::Utf8);
        assert_eq!(v.column(1).unwrap().data_type(), DataType::Int64);
        assert!(v.column(2).is_err());
    }

    #[test]
    fn empty_selection_gathers_zero_rows() {
        let t = sample();
        let v = BatchView::new(&t, &[], &[0, 1]).unwrap();
        let out = v.gather().unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }
}
