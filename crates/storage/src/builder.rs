//! Convenient typed table construction.

use cej_vector::Vector;

use crate::column::Column;
use crate::datatype::DataType;
use crate::error::StorageError;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::Result;

/// Incremental, column-at-a-time table builder.
///
/// The builder validates lengths and types only at [`TableBuilder::build`]
/// time, which keeps workload generators simple.
#[derive(Debug, Default)]
pub struct TableBuilder {
    fields: Vec<Field>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an `Int64` column.
    #[must_use]
    pub fn int64(mut self, name: &str, values: Vec<i64>) -> Self {
        self.fields.push(Field::new(name, DataType::Int64));
        self.columns.push(Column::Int64(values));
        self
    }

    /// Adds a `Float64` column.
    #[must_use]
    pub fn float64(mut self, name: &str, values: Vec<f64>) -> Self {
        self.fields.push(Field::new(name, DataType::Float64));
        self.columns.push(Column::Float64(values));
        self
    }

    /// Adds a `Utf8` column.
    #[must_use]
    pub fn utf8(mut self, name: &str, values: Vec<String>) -> Self {
        self.fields.push(Field::new(name, DataType::Utf8));
        self.columns.push(Column::Utf8(values));
        self
    }

    /// Adds a `Date` column (days since the epoch).
    #[must_use]
    pub fn date(mut self, name: &str, values: Vec<i32>) -> Self {
        self.fields.push(Field::new(name, DataType::Date));
        self.columns.push(Column::Date(values));
        self
    }

    /// Adds a `Bool` column.
    #[must_use]
    pub fn bool(mut self, name: &str, values: Vec<bool>) -> Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self.columns.push(Column::Bool(values));
        self
    }

    /// Adds an embedding column from owned vectors.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidArgument`] for empty or ragged input.
    pub fn vectors(mut self, name: &str, values: &[Vector]) -> Result<Self> {
        let column = Column::from_vectors(values)?;
        self.fields.push(Field::new(name, column.data_type()));
        self.columns.push(column);
        Ok(self)
    }

    /// Adds an already-constructed column.
    #[must_use]
    pub fn column(mut self, name: &str, column: Column) -> Self {
        self.fields.push(Field::new(name, column.data_type()));
        self.columns.push(column);
        self
    }

    /// Builds the table, validating shapes and names.
    ///
    /// # Errors
    /// Propagates schema (duplicate names) and table (length / type
    /// mismatch) validation failures; an empty builder yields an error.
    pub fn build(self) -> Result<Table> {
        if self.fields.is_empty() {
            return Err(StorageError::InvalidArgument(
                "table must have at least one column".into(),
            ));
        }
        let schema = Schema::new(self.fields)?;
        Table::new(schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_multi_typed_table() {
        let t = TableBuilder::new()
            .int64("id", vec![1, 2])
            .utf8("word", vec!["a".into(), "b".into()])
            .date("taken", vec![0, 10])
            .bool("flag", vec![true, false])
            .float64("score", vec![0.5, 0.6])
            .vectors("emb", &[Vector::zeros(4), Vector::zeros(4)])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 6);
        assert_eq!(
            t.schema().field("emb").unwrap().data_type,
            DataType::Vector(4)
        );
    }

    #[test]
    fn mismatched_lengths_rejected_at_build() {
        let res = TableBuilder::new()
            .int64("id", vec![1, 2, 3])
            .utf8("word", vec!["a".into()])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn duplicate_names_rejected_at_build() {
        let res = TableBuilder::new()
            .int64("x", vec![1])
            .float64("x", vec![1.0])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(TableBuilder::new().build().is_err());
    }

    #[test]
    fn ragged_vectors_rejected() {
        let res = TableBuilder::new().vectors("emb", &[Vector::zeros(2), Vector::zeros(3)]);
        assert!(res.is_err());
    }

    #[test]
    fn generic_column_method() {
        let t = TableBuilder::new()
            .column("c", Column::Int64(vec![9]))
            .build()
            .unwrap();
        assert_eq!(t.value(0, "c").unwrap().as_i64(), Some(9));
    }
}
