//! Table deltas: the mutation primitive of incremental view maintenance.
//!
//! A [`Delta`] describes a batch change to a registered table — appended
//! rows, rows deleted by key, or an upsert batch (delete-matching-keys then
//! append).  Applying a delta never mutates the current snapshot: it
//! produces a *new* [`Table`] plus the exact multiset of [`AppliedDelta::added`]
//! and [`AppliedDelta::removed`] rows, which is what the delta-propagation
//! engine in `cej-core` pushes through standing query plans.
//!
//! [`TableVersion`] threads the snapshots into a chain: every applied delta
//! yields a new head version while live plans keep the `Arc` snapshot they
//! resolved — the storage-level contract that lets mutation and query
//! execution overlap without locks on the data itself.  The chain is capped
//! ([`MAX_VERSION_CHAIN`]) so a hot table does not retain its whole history.

use std::collections::HashSet;
use std::sync::Arc;

use crate::column::Column;
use crate::error::StorageError;
use crate::scalar::ScalarValue;
use crate::schema::Schema;
use crate::table::Table;
use crate::Result;

/// How many predecessor snapshots a [`TableVersion`] chain retains.
pub const MAX_VERSION_CHAIN: usize = 8;

/// A batch mutation against a registered table.
#[derive(Debug, Clone)]
pub enum Delta {
    /// Append these rows (schema must match the table exactly).
    Append(Table),
    /// Delete every row whose `key_column` value is in `keys` (multiset
    /// semantics: all matching rows go).
    DeleteByKey {
        /// The column the keys are matched against.
        key_column: String,
        /// The key values to delete.
        keys: Vec<ScalarValue>,
    },
    /// Delete every row matching a key of `rows`' `key_column`, then append
    /// all of `rows` — insert-or-replace in one batch.
    Upsert {
        /// The column upsert keys are matched against.
        key_column: String,
        /// The replacement rows (schema must match the table exactly).
        rows: Table,
    },
}

/// The outcome of applying a [`Delta`] to a snapshot: the new snapshot plus
/// the exact added/removed row multisets (both in the table's schema).
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The post-delta table.
    pub table: Table,
    /// Rows present after but not before (appended / upserted rows).
    pub added: Table,
    /// Rows present before but not after (deleted / replaced rows).
    pub removed: Table,
}

impl AppliedDelta {
    /// Total changed rows (|added| + |removed|) — the "delta size" cost
    /// thresholds compare against table size.
    pub fn changed_rows(&self) -> usize {
        self.added.num_rows() + self.removed.num_rows()
    }
}

/// A hashable join/delete key value.  `Float64` and `Vector` key columns are
/// rejected up front ([`Delta::check`]), mirroring the equi-join key rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DeltaKey {
    Int(i64),
    Date(i32),
    Bool(bool),
    Str(String),
}

fn scalar_key(value: &ScalarValue) -> Result<DeltaKey> {
    Ok(match value {
        ScalarValue::Int64(v) => DeltaKey::Int(*v),
        ScalarValue::Date(v) => DeltaKey::Date(*v),
        ScalarValue::Bool(v) => DeltaKey::Bool(*v),
        ScalarValue::Utf8(s) => DeltaKey::Str(s.clone()),
        other => {
            return Err(StorageError::TypeMismatch {
                expected: "hashable key (int64/date/bool/utf8)".into(),
                actual: format!("{:?}", other.data_type()),
            })
        }
    })
}

fn column_keys(column: &Column) -> Result<Vec<DeltaKey>> {
    Ok(match column {
        Column::Int64(v) => v.iter().map(|&x| DeltaKey::Int(x)).collect(),
        Column::Date(v) => v.iter().map(|&x| DeltaKey::Date(x)).collect(),
        Column::Bool(v) => v.iter().map(|&x| DeltaKey::Bool(x)).collect(),
        Column::Utf8(v) => v.iter().map(|s| DeltaKey::Str(s.clone())).collect(),
        other => {
            return Err(StorageError::TypeMismatch {
                expected: "hashable key column (int64/date/bool/utf8)".into(),
                actual: format!("{:?}", other.data_type()),
            })
        }
    })
}

fn check_same_schema(expected: &Schema, actual: &Schema) -> Result<()> {
    if expected.fields() != actual.fields() {
        return Err(StorageError::TypeMismatch {
            expected: format!(
                "delta schema [{}]",
                expected
                    .fields()
                    .iter()
                    .map(|f| format!("{}: {:?}", f.name, f.data_type))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            actual: format!(
                "[{}]",
                actual
                    .fields()
                    .iter()
                    .map(|f| format!("{}: {:?}", f.name, f.data_type))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    Ok(())
}

impl Delta {
    /// The verb name (`APPEND` / `DELETE` / `UPSERT`).
    pub fn verb(&self) -> &'static str {
        match self {
            Delta::Append(_) => "APPEND",
            Delta::DeleteByKey { .. } => "DELETE",
            Delta::Upsert { .. } => "UPSERT",
        }
    }

    /// Size of the delta payload: appended/upserted rows or delete keys.
    pub fn payload_rows(&self) -> usize {
        match self {
            Delta::Append(rows) | Delta::Upsert { rows, .. } => rows.num_rows(),
            Delta::DeleteByKey { keys, .. } => keys.len(),
        }
    }

    /// Whether this delta only adds rows (never removes any) — the fast
    /// path that lets persistent HNSW indexes be extended in place instead
    /// of invalidated.
    pub fn is_append_only(&self) -> bool {
        matches!(self, Delta::Append(_))
    }

    /// Validates this delta against a table schema: appended/upserted rows
    /// must carry the identical schema, and key columns must exist with a
    /// hashable type.
    ///
    /// # Errors
    /// [`StorageError::TypeMismatch`] on schema or key-type mismatch,
    /// [`StorageError::ColumnNotFound`] for an unknown key column.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        match self {
            Delta::Append(rows) => check_same_schema(schema, rows.schema()),
            Delta::DeleteByKey { key_column, keys } => {
                let field = schema.field(key_column)?;
                for key in keys {
                    let k = scalar_key(key)?;
                    let matches = matches!(
                        (&k, field.data_type),
                        (DeltaKey::Int(_), crate::DataType::Int64)
                            | (DeltaKey::Date(_), crate::DataType::Date)
                            | (DeltaKey::Bool(_), crate::DataType::Bool)
                            | (DeltaKey::Str(_), crate::DataType::Utf8)
                    );
                    if !matches {
                        return Err(StorageError::TypeMismatch {
                            expected: format!("{:?} key for column {key_column}", field.data_type),
                            actual: format!("{:?}", key.data_type()),
                        });
                    }
                }
                Ok(())
            }
            Delta::Upsert { key_column, rows } => {
                check_same_schema(schema, rows.schema())?;
                // key column must exist and be hashable
                let column = rows.column_by_name(key_column)?;
                column_keys(column).map(|_| ())
            }
        }
    }

    /// Applies this delta to a snapshot, producing the new table and the
    /// exact added/removed row multisets.  The snapshot itself is untouched.
    ///
    /// Row order is deterministic: surviving rows keep their relative order
    /// and appended rows land at the end — so repeated replays of the same
    /// delta stream produce byte-identical tables.
    ///
    /// # Errors
    /// Schema/key validation errors (see [`Delta::check`]) and propagated
    /// storage errors.
    pub fn apply(&self, current: &Table) -> Result<AppliedDelta> {
        self.check(current.schema())?;
        let empty = current.take(&[])?;
        match self {
            Delta::Append(rows) => Ok(AppliedDelta {
                table: Table::concat(&[current, rows])?,
                added: rows.clone(),
                removed: empty,
            }),
            Delta::DeleteByKey { key_column, keys } => {
                let key_set: HashSet<DeltaKey> =
                    keys.iter().map(scalar_key).collect::<Result<_>>()?;
                let (kept, removed) = split_by_keys(current, key_column, &key_set)?;
                Ok(AppliedDelta {
                    table: kept,
                    added: empty,
                    removed,
                })
            }
            Delta::Upsert { key_column, rows } => {
                let key_set: HashSet<DeltaKey> = column_keys(rows.column_by_name(key_column)?)?
                    .into_iter()
                    .collect();
                let (kept, removed) = split_by_keys(current, key_column, &key_set)?;
                Ok(AppliedDelta {
                    table: Table::concat(&[&kept, rows])?,
                    added: rows.clone(),
                    removed,
                })
            }
        }
    }
}

/// Splits `table` into (rows whose key is NOT in `keys`, rows whose key is).
fn split_by_keys(
    table: &Table,
    key_column: &str,
    keys: &HashSet<DeltaKey>,
) -> Result<(Table, Table)> {
    let column_values = column_keys(table.column_by_name(key_column)?)?;
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, k) in column_values.iter().enumerate() {
        if keys.contains(k) {
            removed.push(i);
        } else {
            kept.push(i);
        }
    }
    Ok((table.take(&kept)?, table.take(&removed)?))
}

/// One immutable snapshot in a table's mutation history.
///
/// The head version is what the catalog publishes; applying a delta yields a
/// new head whose `parent` points at this one.  Live plans that resolved the
/// table keep their `Arc<Table>` snapshot regardless of how far the head
/// advances.  The parent chain is capped at [`MAX_VERSION_CHAIN`] links so a
/// hot table does not pin its whole history in memory.
#[derive(Debug, Clone)]
pub struct TableVersion {
    version: u64,
    table: Arc<Table>,
    parent: Option<Arc<TableVersion>>,
}

impl TableVersion {
    /// Wraps a freshly registered table as version 0 with no history.
    pub fn initial(table: Arc<Table>) -> Arc<Self> {
        Arc::new(Self {
            version: 0,
            table,
            parent: None,
        })
    }

    /// The monotonically increasing version number (0 at registration).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The immutable snapshot of this version.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The predecessor version, if still retained.
    pub fn parent(&self) -> Option<&Arc<TableVersion>> {
        self.parent.as_ref()
    }

    /// Number of versions reachable from this one (including itself);
    /// bounded by [`MAX_VERSION_CHAIN`].
    pub fn chain_len(&self) -> usize {
        let mut len = 1;
        let mut cursor = self.parent.as_ref();
        while let Some(v) = cursor {
            len += 1;
            cursor = v.parent.as_ref();
        }
        len
    }

    /// Applies a delta to this version, returning the new head version and
    /// the applied row sets.  `self` (and every snapshot it shares) is
    /// untouched.
    ///
    /// # Errors
    /// Propagates [`Delta::apply`] errors.
    pub fn apply(self: &Arc<Self>, delta: &Delta) -> Result<(Arc<TableVersion>, AppliedDelta)> {
        let applied = delta.apply(self.table.as_ref())?;
        let head = Arc::new(TableVersion {
            version: self.version + 1,
            table: Arc::new(applied.table.clone()),
            parent: Some(truncate_chain(
                self,
                MAX_VERSION_CHAIN.saturating_sub(1).max(1),
            )),
        });
        Ok((head, applied))
    }
}

/// Returns a version equal to `head` with `chain_len() <= max_len`
/// (rebuilding the tail nodes; snapshots stay shared).
fn truncate_chain(head: &Arc<TableVersion>, max_len: usize) -> Arc<TableVersion> {
    match &head.parent {
        None => head.clone(),
        Some(_) if max_len <= 1 => Arc::new(TableVersion {
            version: head.version,
            table: head.table.clone(),
            parent: None,
        }),
        Some(parent) => {
            if head.chain_len() <= max_len {
                head.clone()
            } else {
                Arc::new(TableVersion {
                    version: head.version,
                    table: head.table.clone(),
                    parent: Some(truncate_chain(parent, max_len - 1)),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    fn base() -> Table {
        TableBuilder::new()
            .int64("id", vec![1, 2, 3])
            .utf8("name", vec!["a".into(), "b".into(), "c".into()])
            .build()
            .unwrap()
    }

    fn rows(ids: Vec<i64>, names: Vec<&str>) -> Table {
        TableBuilder::new()
            .int64("id", ids)
            .utf8("name", names.into_iter().map(String::from).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn append_extends_and_reports_added() {
        let delta = Delta::Append(rows(vec![4], vec!["d"]));
        assert!(delta.is_append_only());
        assert_eq!(delta.verb(), "APPEND");
        assert_eq!(delta.payload_rows(), 1);
        let applied = delta.apply(&base()).unwrap();
        assert_eq!(applied.table.num_rows(), 4);
        assert_eq!(applied.added.num_rows(), 1);
        assert_eq!(applied.removed.num_rows(), 0);
        assert_eq!(applied.changed_rows(), 1);
        let ids = applied
            .table
            .column_by_name("id")
            .unwrap()
            .as_int64()
            .unwrap();
        assert_eq!(ids, &[1, 2, 3, 4]);
    }

    #[test]
    fn delete_by_key_removes_all_matches() {
        let t = Table::concat(&[&base(), &rows(vec![2], vec!["dup"])]).unwrap();
        let delta = Delta::DeleteByKey {
            key_column: "id".into(),
            keys: vec![ScalarValue::Int64(2), ScalarValue::Int64(99)],
        };
        assert!(!delta.is_append_only());
        let applied = delta.apply(&t).unwrap();
        assert_eq!(applied.removed.num_rows(), 2, "both id=2 rows go");
        assert_eq!(applied.added.num_rows(), 0);
        let ids = applied
            .table
            .column_by_name("id")
            .unwrap()
            .as_int64()
            .unwrap();
        assert_eq!(ids, &[1, 3], "survivors keep their order");
    }

    #[test]
    fn upsert_replaces_matching_keys_and_appends() {
        let delta = Delta::Upsert {
            key_column: "id".into(),
            rows: rows(vec![2, 4], vec!["B", "d"]),
        };
        let applied = delta.apply(&base()).unwrap();
        assert_eq!(applied.removed.num_rows(), 1, "old id=2 replaced");
        assert_eq!(applied.added.num_rows(), 2);
        let ids = applied
            .table
            .column_by_name("id")
            .unwrap()
            .as_int64()
            .unwrap();
        assert_eq!(ids, &[1, 3, 2, 4]);
        let names = applied
            .table
            .column_by_name("name")
            .unwrap()
            .as_utf8()
            .unwrap();
        assert_eq!(names, &["a", "c", "B", "d"]);
    }

    #[test]
    fn schema_and_key_checking() {
        let wrong = TableBuilder::new().int64("id", vec![9]).build().unwrap();
        assert!(Delta::Append(wrong).apply(&base()).is_err());
        let bad_key = Delta::DeleteByKey {
            key_column: "name".into(),
            keys: vec![ScalarValue::Int64(1)],
        };
        assert!(
            bad_key.apply(&base()).is_err(),
            "key type must match column"
        );
        let missing = Delta::DeleteByKey {
            key_column: "ghost".into(),
            keys: vec![ScalarValue::Int64(1)],
        };
        assert!(missing.apply(&base()).is_err());
        let float_key = TableBuilder::new()
            .float64("score", vec![1.0])
            .build()
            .unwrap();
        let delta = Delta::Upsert {
            key_column: "score".into(),
            rows: float_key.clone(),
        };
        assert!(delta.apply(&float_key).is_err(), "float keys rejected");
    }

    #[test]
    fn version_chain_advances_and_caps() {
        let mut head = TableVersion::initial(Arc::new(base()));
        assert_eq!(head.version(), 0);
        assert_eq!(head.chain_len(), 1);
        for i in 0..20 {
            let delta = Delta::Append(rows(vec![100 + i], vec!["x"]));
            let (next, applied) = head.apply(&delta).unwrap();
            assert_eq!(applied.added.num_rows(), 1);
            head = next;
        }
        assert_eq!(head.version(), 20);
        assert_eq!(head.table().num_rows(), 23);
        assert!(head.chain_len() <= MAX_VERSION_CHAIN);
        // parents retain their immutable snapshots
        let parent = head.parent().unwrap();
        assert_eq!(parent.table().num_rows(), 22);
    }
}
