//! Column- and table-level statistics: the input of cost-based planning.
//!
//! An `ANALYZE` pass ([`TableStats::analyze`]) computes, per column: row and
//! null counts, a hash-based distinct count, min/max, an equi-depth histogram
//! for orderable types, and the average string length for `Utf8` columns.
//! The planner turns these into selectivity estimates (see
//! `cej-relational`'s estimator), replacing the classic "every filter keeps
//! half the rows" constant that made the advisor's scan-vs-probe choice blind
//! to the true inner selectivity of the paper's Figures 15-17.
//!
//! Equi-depth (equal-mass) histograms are used instead of equi-width ones
//! because the workloads here are exactly the hard case for equi-width:
//! Zipf-distributed attributes concentrate most of the mass in a few values,
//! and equi-depth buckets degenerate into single-value buckets around heavy
//! hitters — making both range and equality estimates exact where the data
//! is skewed.

use std::collections::HashMap;
use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::scalar::ScalarValue;
use crate::table::Table;

/// Default number of equi-depth buckets (capped by the row count).
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 64;

/// An equi-depth histogram over the `f64`-mapped domain of an orderable
/// column (`Int64`, `Float64`, `Date`, `Bool`).
///
/// Each bucket holds (approximately) the same number of rows; buckets around
/// heavy hitters degenerate to `low == high`, which makes their mass exactly
/// attributable — the property the skew-convergence tests rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lows: Vec<f64>,
    highs: Vec<f64>,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds an equi-depth histogram from (unsorted) values.  Returns `None`
    /// for empty input.
    pub fn equi_depth(mut values: Vec<f64>, buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len();
        let b = buckets.min(n);
        let mut lows = Vec::with_capacity(b);
        let mut highs = Vec::with_capacity(b);
        let mut counts = Vec::with_capacity(b);
        for i in 0..b {
            let start = i * n / b;
            let end = ((i + 1) * n / b).max(start + 1).min(n);
            if start >= n {
                break;
            }
            lows.push(values[start]);
            highs.push(values[end - 1]);
            counts.push(end - start);
        }
        Some(Self {
            lows,
            highs,
            counts,
            total: n,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total rows summarised.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Estimated fraction of rows with value `< x`.
    pub fn fraction_lt(&self, x: f64) -> f64 {
        self.fraction(x, false)
    }

    /// Estimated fraction of rows with value `<= x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        self.fraction(x, true)
    }

    fn fraction(&self, x: f64, inclusive: bool) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut rows = 0.0;
        for i in 0..self.counts.len() {
            let (low, high, count) = (self.lows[i], self.highs[i], self.counts[i] as f64);
            let full = if inclusive { high <= x } else { high < x };
            if full {
                rows += count;
            } else if (low < x || (inclusive && low <= x)) && high > low {
                // linear interpolation inside a mixed bucket; error is
                // bounded by the bucket mass (1/buckets of the rows).
                // A degenerate bucket (low == high) holds only `low`, which
                // already failed the strict/inclusive test above.
                rows += count * ((x - low) / (high - low)).clamp(0.0, 1.0);
            }
        }
        (rows / self.total as f64).clamp(0.0, 1.0)
    }

    /// Re-scales the histogram to summarise `new_total` rows, preserving the
    /// bucket boundaries and the relative mass distribution.
    ///
    /// This is the cross-join-boundary propagation primitive: an equi-join
    /// neither reorders a column's value distribution nor (under the
    /// uniform-matching assumption) skews it, it only multiplies the row
    /// count — so the shape survives and only the per-bucket masses scale.
    /// Returns `None` when `new_total` is zero (no rows, no histogram).
    pub fn scaled(&self, new_total: usize) -> Option<Self> {
        if new_total == 0 || self.total == 0 {
            return None;
        }
        let factor = new_total as f64 / self.total as f64;
        // Cumulative rounding keeps the scaled counts summing to exactly
        // `new_total` (bucket-local rounding would drift by up to b/2 rows).
        let mut counts = Vec::with_capacity(self.counts.len());
        let mut acc = 0.0f64;
        let mut emitted = 0usize;
        for &c in &self.counts {
            acc += c as f64 * factor;
            let upto = acc.round() as usize;
            counts.push(upto.saturating_sub(emitted));
            emitted = upto;
        }
        Some(Self {
            lows: self.lows.clone(),
            highs: self.highs.clone(),
            counts,
            total: new_total,
        })
    }

    /// Merges two histograms summarising disjoint row sets into one
    /// summarising their union.
    ///
    /// Because [`Histogram::fraction_lt`]/[`eq_mass`](Histogram::eq_mass) sum
    /// per-bucket contributions independently, a histogram whose buckets
    /// overlap is still a valid *mixture* model — so the merge is simply the
    /// concatenation of both bucket lists (sorted by lower bound) with the
    /// totals added.  When the combined list exceeds
    /// `2 × DEFAULT_HISTOGRAM_BUCKETS`, adjacent bucket pairs are fused
    /// (union of bounds, sum of counts) so repeated delta merges cannot grow
    /// the summary without bound; fusion loses per-pair resolution but keeps
    /// every estimate within the usual one-bucket error bound.
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let mut buckets: Vec<(f64, f64, usize)> =
            Vec::with_capacity(self.buckets() + other.buckets());
        for h in [self, other] {
            for i in 0..h.counts.len() {
                buckets.push((h.lows[i], h.highs[i], h.counts[i]));
            }
        }
        buckets.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        while buckets.len() > 2 * DEFAULT_HISTOGRAM_BUCKETS {
            let mut fused = Vec::with_capacity(buckets.len() / 2 + 1);
            let mut iter = buckets.chunks(2);
            for chunk in &mut iter {
                match chunk {
                    [a, b] => {
                        // Never fuse a degenerate (single-value) bucket into a
                        // wider one — that would destroy exact heavy-hitter
                        // masses, the property the skew tests rely on.
                        if (a.0 == a.1 || b.0 == b.1) && !(a.0 == a.1 && a.1 == b.0 && b.0 == b.1) {
                            fused.push(*a);
                            fused.push(*b);
                        } else {
                            fused.push((a.0, b.1.max(a.1), a.2 + b.2));
                        }
                    }
                    [a] => fused.push(*a),
                    _ => unreachable!(),
                }
            }
            if fused.len() == buckets.len() {
                break; // nothing fusible (all degenerate) — stop growing-proofing
            }
            buckets = fused;
        }
        Histogram {
            lows: buckets.iter().map(|b| b.0).collect(),
            highs: buckets.iter().map(|b| b.1).collect(),
            counts: buckets.iter().map(|b| b.2).collect(),
            total: self.total + other.total,
        }
    }

    /// Estimates equi-join output rows by bucket-wise intersection of the
    /// two key-domain histograms — the refinement over the classic
    /// `|L|·|R| / max(ndv)` formula, which silently assumes the key domains
    /// coincide and over-counts whenever one side references only part of
    /// the other's domain (e.g. a fact table that only points at old
    /// dimension keys).
    ///
    /// `self` summarises the left key column (`self_rows` rows, `self_ndv`
    /// distinct keys), `other` the right.  For each right bucket, the left
    /// mass falling inside its bounds is read off this histogram's CDF and
    /// the classic per-key matching formula is applied *locally*, with
    /// per-bucket ndvs apportioned by mass (degenerate single-value buckets
    /// pin ndv to 1, keeping heavy-hitter joins exact).  Buckets outside the
    /// left domain contribute nothing.
    pub fn join_rows(
        &self,
        other: &Histogram,
        self_rows: f64,
        self_ndv: f64,
        other_rows: f64,
        other_ndv: f64,
    ) -> f64 {
        // Each directed pass handles the *other* side's heavy hitters
        // exactly (degenerate buckets carry their true key mass) but
        // apportions its own skewed mass uniformly — so run both directions
        // and keep the larger estimate, which is the one whose hitters were
        // resolved exactly.
        let a = self.join_rows_directed(other, self_rows, self_ndv, other_rows, other_ndv);
        let b = other.join_rows_directed(self, other_rows, other_ndv, self_rows, self_ndv);
        a.max(b)
    }

    /// One direction of [`Histogram::join_rows`]: walk `other`'s buckets,
    /// reading the matching `self` mass off this histogram's CDF.
    fn join_rows_directed(
        &self,
        other: &Histogram,
        self_rows: f64,
        self_ndv: f64,
        other_rows: f64,
        other_ndv: f64,
    ) -> f64 {
        if other.total == 0 || self.total == 0 {
            return 0.0;
        }
        let mut est = 0.0;
        for i in 0..other.counts.len() {
            let (lo, hi) = (other.lows[i], other.highs[i]);
            let frac_other = other.counts[i] as f64 / other.total as f64;
            if frac_other <= 0.0 {
                continue;
            }
            if lo == hi {
                // Single-value bucket: every self row with this exact key
                // matches every row of the bucket — no ndv division.
                est += self_rows * self.eq_frac(lo, self_ndv) * other_rows * frac_other;
                continue;
            }
            let frac_self = (self.fraction_leq(hi) - self.fraction_lt(lo)).max(0.0);
            if frac_self <= 0.0 {
                continue;
            }
            // Apportion each side's keys to the bucket by mass (uniform
            // mass-per-key within the range), then match per key.
            let ndv_self = (self_ndv * frac_self).max(1.0);
            let ndv_other = (other_ndv * frac_other).max(1.0);
            est += (self_rows * frac_self) * (other_rows * frac_other) / ndv_self.max(ndv_other);
        }
        est.max(0.0)
    }

    /// Fraction of rows exactly equal to `x`: the degenerate-bucket mass
    /// when present, `1/ndv` when `x` falls inside a bucket, `0` outside
    /// the domain.
    fn eq_frac(&self, x: f64, ndv: f64) -> f64 {
        if let Some(mass) = self.eq_mass(x) {
            return mass;
        }
        let in_domain = (0..self.counts.len()).any(|i| self.lows[i] <= x && x <= self.highs[i]);
        if in_domain {
            1.0 / ndv.max(1.0)
        } else {
            0.0
        }
    }

    /// Exact mass of `x` when it occupies degenerate (single-value) buckets —
    /// the heavy-hitter refinement over the `1/ndv` equality estimate.
    /// `None` when no degenerate bucket holds `x`.
    pub fn eq_mass(&self, x: f64) -> Option<f64> {
        let mut rows = 0usize;
        let mut found = false;
        for i in 0..self.counts.len() {
            if self.lows[i] == x && self.highs[i] == x {
                rows += self.counts[i];
                found = true;
            }
        }
        if found && self.total > 0 {
            Some(rows as f64 / self.total as f64)
        } else {
            None
        }
    }
}

/// Statistics of one column, computed by an `ANALYZE` pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows.
    pub row_count: usize,
    /// Number of null rows (the storage layer has no nulls today; kept so
    /// downstream estimators do not change shape when nulls arrive).
    pub null_count: usize,
    /// Hash-based exact distinct count.
    pub distinct_count: usize,
    /// Minimum value (orderable types only).
    pub min: Option<ScalarValue>,
    /// Maximum value (orderable types only).
    pub max: Option<ScalarValue>,
    /// Equi-depth histogram over the numeric-mapped domain (orderable types
    /// only).
    pub histogram: Option<Histogram>,
    /// Average string length (`Utf8` columns only) — the estimator's proxy
    /// for per-tuple embedding cost.
    pub avg_utf8_len: Option<f64>,
}

/// Maps an orderable scalar into the histogram's `f64` domain.
pub fn numeric_domain(value: &ScalarValue) -> Option<f64> {
    match value {
        ScalarValue::Int64(v) => Some(*v as f64),
        ScalarValue::Float64(v) => Some(*v),
        ScalarValue::Date(v) => Some(*v as f64),
        ScalarValue::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
        ScalarValue::Utf8(_) | ScalarValue::Vector(_) => None,
    }
}

impl ColumnStats {
    /// Analyzes one column.
    pub fn analyze(column: &Column) -> Self {
        let row_count = column.len();
        let (distinct_count, numeric, min, max, avg_utf8_len) = match column {
            Column::Int64(v) => {
                let distinct = v.iter().collect::<HashSet<_>>().len();
                let numeric: Vec<f64> = v.iter().map(|&x| x as f64).collect();
                let min = v.iter().min().map(|&x| ScalarValue::Int64(x));
                let max = v.iter().max().map(|&x| ScalarValue::Int64(x));
                (distinct, Some(numeric), min, max, None)
            }
            Column::Float64(v) => {
                let distinct = v.iter().map(|x| x.to_bits()).collect::<HashSet<_>>().len();
                let min = v
                    .iter()
                    .cloned()
                    .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
                    .map(ScalarValue::Float64);
                let max = v
                    .iter()
                    .cloned()
                    .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
                    .map(ScalarValue::Float64);
                (distinct, Some(v.clone()), min, max, None)
            }
            Column::Date(v) => {
                let distinct = v.iter().collect::<HashSet<_>>().len();
                let numeric: Vec<f64> = v.iter().map(|&x| x as f64).collect();
                let min = v.iter().min().map(|&x| ScalarValue::Date(x));
                let max = v.iter().max().map(|&x| ScalarValue::Date(x));
                (distinct, Some(numeric), min, max, None)
            }
            Column::Bool(v) => {
                let distinct = v.iter().collect::<HashSet<_>>().len();
                let numeric: Vec<f64> = v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect();
                let min = v.iter().min().map(|&x| ScalarValue::Bool(x));
                let max = v.iter().max().map(|&x| ScalarValue::Bool(x));
                (distinct, Some(numeric), min, max, None)
            }
            Column::Utf8(v) => {
                let distinct = v.iter().collect::<HashSet<_>>().len();
                let min = v.iter().min().map(|s| ScalarValue::Utf8(s.clone()));
                let max = v.iter().max().map(|s| ScalarValue::Utf8(s.clone()));
                let avg = if v.is_empty() {
                    None
                } else {
                    Some(v.iter().map(|s| s.len()).sum::<usize>() as f64 / v.len() as f64)
                };
                (distinct, None, min, max, avg)
            }
            // Embeddings are opaque to the relational estimator.
            Column::Vector(_) => (row_count, None, None, None, None),
        };
        let histogram =
            numeric.and_then(|values| Histogram::equi_depth(values, DEFAULT_HISTOGRAM_BUCKETS));
        Self {
            row_count,
            null_count: 0,
            distinct_count,
            min,
            max,
            histogram,
            avg_utf8_len,
        }
    }

    /// Derives the statistics this column would have after an operator that
    /// keeps the value distribution but changes the row count to `new_rows`
    /// (equi-join fan-out / fan-in, uniform filters).
    ///
    /// Min/max and the histogram *shape* are preserved; per-bucket masses,
    /// null count, and the distinct count (capped at the new row count) scale.
    pub fn scaled(&self, new_rows: usize) -> Self {
        let factor = if self.row_count == 0 {
            0.0
        } else {
            new_rows as f64 / self.row_count as f64
        };
        Self {
            row_count: new_rows,
            null_count: ((self.null_count as f64 * factor).round() as usize).min(new_rows),
            // A join never invents values: ndv is bounded by both the old ndv
            // and the new cardinality.
            distinct_count: self.distinct_count.min(new_rows.max(1)),
            min: self.min.clone(),
            max: self.max.clone(),
            histogram: self.histogram.as_ref().and_then(|h| h.scaled(new_rows)),
            avg_utf8_len: self.avg_utf8_len,
        }
    }

    /// Merges statistics of two disjoint row sets of the same column — the
    /// incremental-maintenance path for appended delta batches.
    ///
    /// Counts and string-length averages merge exactly; histograms merge as
    /// mixtures ([`Histogram::merge`]); the distinct count is approximate:
    /// when the two value ranges are disjoint the ndvs add, otherwise the
    /// merge takes the larger one (a lower bound, since overlap may still
    /// contribute new values), always capped by the merged row count.  An
    /// explicit `ANALYZE` stays exact and resets the approximation.
    pub fn merged(&self, other: &ColumnStats) -> ColumnStats {
        let row_count = self.row_count + other.row_count;
        let disjoint = match (&self.min, &self.max, &other.min, &other.max) {
            (Some(_), Some(a_max), Some(b_min), Some(_)) => {
                matches!(
                    a_max.partial_cmp_same_type(b_min),
                    Ok(std::cmp::Ordering::Less)
                ) || matches!(
                    other
                        .max
                        .as_ref()
                        .unwrap()
                        .partial_cmp_same_type(self.min.as_ref().unwrap()),
                    Ok(std::cmp::Ordering::Less)
                )
            }
            _ => false,
        };
        let distinct_count = if disjoint {
            self.distinct_count + other.distinct_count
        } else {
            self.distinct_count.max(other.distinct_count)
        }
        .min(row_count.max(1));
        let pick =
            |a: &Option<ScalarValue>, b: &Option<ScalarValue>, want: std::cmp::Ordering| match (
                a, b,
            ) {
                (Some(x), Some(y)) => match x.partial_cmp_same_type(y) {
                    Ok(o) if o == want => Some(x.clone()),
                    Ok(_) => Some(y.clone()),
                    Err(_) => Some(x.clone()),
                },
                (Some(x), None) => Some(x.clone()),
                (None, Some(y)) => Some(y.clone()),
                (None, None) => None,
            };
        let histogram = match (&self.histogram, &other.histogram) {
            (Some(a), Some(b)) => Some(a.merge(b)),
            (Some(a), None) if other.row_count == 0 => Some(a.clone()),
            (None, Some(b)) if self.row_count == 0 => Some(b.clone()),
            _ => None,
        };
        let avg_utf8_len = match (self.avg_utf8_len, other.avg_utf8_len) {
            (Some(a), Some(b)) if row_count > 0 => {
                Some((a * self.row_count as f64 + b * other.row_count as f64) / row_count as f64)
            }
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            _ => None,
        };
        ColumnStats {
            row_count,
            null_count: self.null_count + other.null_count,
            distinct_count,
            min: pick(&self.min, &other.min, std::cmp::Ordering::Less),
            max: pick(&self.max, &other.max, std::cmp::Ordering::Greater),
            histogram,
            avg_utf8_len,
        }
    }

    /// Estimated fraction of rows with value `< v` (`None` when the column
    /// has no histogram or `v` is not in its domain).
    pub fn fraction_lt(&self, v: &ScalarValue) -> Option<f64> {
        let x = numeric_domain(v)?;
        Some(self.histogram.as_ref()?.fraction_lt(x))
    }

    /// Estimated fraction of rows with value `<= v`.
    pub fn fraction_leq(&self, v: &ScalarValue) -> Option<f64> {
        let x = numeric_domain(v)?;
        Some(self.histogram.as_ref()?.fraction_leq(x))
    }

    /// Estimated fraction of rows equal to `v`: exact for heavy hitters
    /// (degenerate histogram buckets), `1/ndv` otherwise, `0` outside the
    /// observed [min, max] range.
    pub fn eq_fraction(&self, v: &ScalarValue) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            let below = v
                .partial_cmp_same_type(min)
                .map(|o| o == std::cmp::Ordering::Less);
            let above = v
                .partial_cmp_same_type(max)
                .map(|o| o == std::cmp::Ordering::Greater);
            if below == Ok(true) || above == Ok(true) {
                return 0.0;
            }
        }
        if let Some(x) = numeric_domain(v) {
            if let Some(mass) = self.histogram.as_ref().and_then(|h| h.eq_mass(x)) {
                return mass;
            }
        }
        1.0 / self.distinct_count.max(1) as f64
    }
}

/// Statistics of a whole table: the "statistics view" the planner consumes
/// in place of raw catalog row counts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of rows at analyze time.
    pub row_count: usize,
    columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Runs the `ANALYZE` pass over every column of `table`.
    pub fn analyze(table: &Table) -> Self {
        let mut columns = HashMap::new();
        for (field, column) in table.schema().fields().iter().zip(table.columns()) {
            columns.insert(field.name.clone(), ColumnStats::analyze(column));
        }
        Self {
            row_count: table.num_rows(),
            columns,
        }
    }

    /// Builds a statistics view from already-derived column stats — how the
    /// planner synthesises statistics for join *outputs* (where no base table
    /// exists to `ANALYZE`).
    pub fn from_columns(row_count: usize, columns: HashMap<String, ColumnStats>) -> Self {
        Self { row_count, columns }
    }

    /// The statistics of one column, if analyzed.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Names of analyzed columns (unsorted).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }

    /// Merges in the statistics of an appended row batch (computed by
    /// analyzing just the delta) — the incremental alternative to a full
    /// re-`ANALYZE` after an append.  Columns present in only one side keep
    /// that side's stats.
    pub fn merged_append(&self, added: &TableStats) -> TableStats {
        let mut columns = self.columns.clone();
        for (name, stats) in &added.columns {
            columns
                .entry(name.clone())
                .and_modify(|existing| *existing = existing.merged(stats))
                .or_insert_with(|| stats.clone());
        }
        TableStats {
            row_count: self.row_count + added.row_count,
            columns,
        }
    }

    /// Derives the statistics view after uniformly removing rows down to
    /// `new_rows` — the incremental path for deletes, where re-scanning the
    /// table would defeat O(delta) maintenance.  Distribution shape is
    /// assumed preserved ([`ColumnStats::scaled`]); skewed deletes drift
    /// until the next explicit `ANALYZE`.
    pub fn scaled(&self, new_rows: usize) -> TableStats {
        TableStats {
            row_count: new_rows,
            columns: self
                .columns
                .iter()
                .map(|(name, stats)| (name.clone(), stats.scaled(new_rows)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    #[test]
    fn equi_depth_uniform_fractions() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::equi_depth(values, 64).unwrap();
        assert_eq!(h.total(), 1000);
        assert!(h.buckets() <= 64);
        assert!((h.fraction_lt(500.0) - 0.5).abs() < 0.05);
        assert!((h.fraction_leq(250.0) - 0.25).abs() < 0.05);
        assert_eq!(h.fraction_lt(-1.0), 0.0);
        assert_eq!(h.fraction_leq(1e9), 1.0);
    }

    #[test]
    fn equi_depth_heavy_hitter_is_exact() {
        // 70% of rows are the value 5 — equi-depth buckets degenerate there.
        let mut values = vec![5.0; 700];
        values.extend((0..300).map(|i| 100.0 + i as f64));
        let h = Histogram::equi_depth(values, 32).unwrap();
        let mass = h.eq_mass(5.0).unwrap();
        assert!((mass - 0.7).abs() < 0.04, "heavy hitter mass {mass}");
        // strictly-less-than excludes the hitter, leq includes it
        assert!(h.fraction_lt(5.0) < 0.01);
        assert!((h.fraction_leq(5.0) - 0.7).abs() < 0.04);
        assert!(h.eq_mass(100.0).is_none() || h.eq_mass(100.0).unwrap() < 0.1);
    }

    #[test]
    fn empty_and_degenerate_input() {
        assert!(Histogram::equi_depth(vec![], 8).is_none());
        assert!(Histogram::equi_depth(vec![1.0], 0).is_none());
        let h = Histogram::equi_depth(vec![7.0], 8).unwrap();
        assert_eq!(h.buckets(), 1);
        assert_eq!(h.eq_mass(7.0), Some(1.0));
    }

    #[test]
    fn column_stats_int64() {
        let c = Column::Int64((0..100).map(|i| i % 10).collect());
        let s = ColumnStats::analyze(&c);
        assert_eq!(s.row_count, 100);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct_count, 10);
        assert_eq!(s.min, Some(ScalarValue::Int64(0)));
        assert_eq!(s.max, Some(ScalarValue::Int64(9)));
        assert!(s.histogram.is_some());
        // eq inside the range: 1/ndv or exact hitter mass — both 0.1 here
        assert!((s.eq_fraction(&ScalarValue::Int64(3)) - 0.1).abs() < 0.02);
        // eq outside the range is impossible
        assert_eq!(s.eq_fraction(&ScalarValue::Int64(50)), 0.0);
        let lt5 = s.fraction_lt(&ScalarValue::Int64(5)).unwrap();
        assert!((lt5 - 0.5).abs() < 0.1, "lt5 = {lt5}");
    }

    #[test]
    fn column_stats_utf8() {
        let c = Column::Utf8(vec!["aa".into(), "bb".into(), "aa".into(), "cccc".into()]);
        let s = ColumnStats::analyze(&c);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.min, Some(ScalarValue::Utf8("aa".into())));
        assert_eq!(s.max, Some(ScalarValue::Utf8("cccc".into())));
        assert!(s.histogram.is_none());
        assert!((s.avg_utf8_len.unwrap() - 2.5).abs() < 1e-9);
        assert!((s.eq_fraction(&ScalarValue::Utf8("bb".into())) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.eq_fraction(&ScalarValue::Utf8("zz".into())), 0.0);
    }

    #[test]
    fn column_stats_float_date_bool_vector() {
        let f = ColumnStats::analyze(&Column::Float64(vec![2.5, 1.5, 2.5]));
        assert_eq!(f.distinct_count, 2);
        assert_eq!(f.min, Some(ScalarValue::Float64(1.5)));
        assert_eq!(f.max, Some(ScalarValue::Float64(2.5)));

        let d = ColumnStats::analyze(&Column::Date(vec![10, 20]));
        assert_eq!(d.min, Some(ScalarValue::Date(10)));
        assert!(d.histogram.is_some());

        let b = ColumnStats::analyze(&Column::Bool(vec![true, false, true, true]));
        assert_eq!(b.distinct_count, 2);
        let true_mass = b.eq_fraction(&ScalarValue::Bool(true));
        assert!((true_mass - 0.75).abs() < 0.01, "true mass {true_mass}");

        let v = ColumnStats::analyze(&Column::Vector(cej_vector::Matrix::zeros(3, 4)));
        assert_eq!(v.row_count, 3);
        assert!(v.histogram.is_none() && v.min.is_none());
    }

    #[test]
    fn histogram_merge_is_a_mixture() {
        let a = Histogram::equi_depth((0..500).map(|i| i as f64).collect(), 32).unwrap();
        let b = Histogram::equi_depth((500..1000).map(|i| i as f64).collect(), 32).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.total(), 1000);
        assert!((m.fraction_lt(500.0) - 0.5).abs() < 0.05);
        assert!((m.fraction_lt(250.0) - 0.25).abs() < 0.05);
        // repeated merges stay bounded
        let mut acc = a.clone();
        for _ in 0..20 {
            acc = acc.merge(&b);
        }
        assert!(acc.buckets() <= 2 * DEFAULT_HISTOGRAM_BUCKETS + 1);
    }

    #[test]
    fn histogram_merge_keeps_heavy_hitters_exact() {
        let a = Histogram::equi_depth(vec![5.0; 700], 32).unwrap();
        let b = Histogram::equi_depth((0..300).map(|i| 100.0 + i as f64).collect(), 32).unwrap();
        let m = a.merge(&b);
        let mass = m.eq_mass(5.0).unwrap();
        assert!((mass - 0.7).abs() < 0.05, "hitter mass {mass}");
    }

    #[test]
    fn join_rows_partial_domain_overlap() {
        // fact keys uniform over 0..100, dim unique over 50..150: only half
        // the fact rows find a partner.  The classic |L|·|R|/max(ndv)
        // formula says 1000; the intersection must say ~500.
        let fact =
            Histogram::equi_depth((0..1000).map(|i| (i % 100) as f64).collect(), 64).unwrap();
        let dim = Histogram::equi_depth((50..150).map(|i| i as f64).collect(), 64).unwrap();
        let est = fact.join_rows(&dim, 1000.0, 100.0, 100.0, 100.0);
        assert!((400.0..=620.0).contains(&est), "partial overlap est {est}");
        // fully disjoint domains join to nothing
        let far = Histogram::equi_depth((500..600).map(|i| i as f64).collect(), 64).unwrap();
        assert!(fact.join_rows(&far, 1000.0, 100.0, 100.0, 100.0) < 1.0);
    }

    #[test]
    fn join_rows_heavy_hitter_is_exact() {
        // 500 fact rows share key 75 (inside the dim domain): those alone
        // contribute 500 output rows, which mass-uniform ndv apportionment
        // would miss — the degenerate-bucket direction must recover it.
        let mut keys: Vec<f64> = vec![75.0; 500];
        keys.extend((0..500).map(|i| (i % 100) as f64));
        let fact = Histogram::equi_depth(keys, 64).unwrap();
        let dim = Histogram::equi_depth((50..150).map(|i| i as f64).collect(), 64).unwrap();
        let est = fact.join_rows(&dim, 1000.0, 100.0, 100.0, 100.0);
        // true output: 500 (hitter) + 250 (uniform half in overlap) = 750
        assert!((600.0..=900.0).contains(&est), "hitter est {est}");
    }

    #[test]
    fn column_stats_merged_append() {
        let a = ColumnStats::analyze(&Column::Int64((0..100).collect()));
        let b = ColumnStats::analyze(&Column::Int64((100..150).collect()));
        let m = a.merged(&b);
        assert_eq!(m.row_count, 150);
        assert_eq!(m.distinct_count, 150, "disjoint ranges: ndvs add");
        assert_eq!(m.min, Some(ScalarValue::Int64(0)));
        assert_eq!(m.max, Some(ScalarValue::Int64(149)));
        let lt75 = m.fraction_lt(&ScalarValue::Int64(75)).unwrap();
        assert!((lt75 - 0.5).abs() < 0.05, "lt75 = {lt75}");

        // overlapping ranges: ndv is max of the two (lower bound)
        let c = ColumnStats::analyze(&Column::Int64((50..120).collect()));
        let o = a.merged(&c);
        assert_eq!(o.distinct_count, 100);

        let u1 = ColumnStats::analyze(&Column::Utf8(vec!["aa".into(), "bb".into()]));
        let u2 = ColumnStats::analyze(&Column::Utf8(vec!["cccc".into(), "dddd".into()]));
        let um = u1.merged(&u2);
        assert_eq!(um.row_count, 4);
        assert!((um.avg_utf8_len.unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(um.max, Some(ScalarValue::Utf8("dddd".into())));
    }

    #[test]
    fn table_stats_incremental_paths() {
        let base = TableBuilder::new()
            .int64("id", (0..100).collect())
            .utf8("word", (0..100).map(|i| format!("w{}", i % 5)).collect())
            .build()
            .unwrap();
        let delta = TableBuilder::new()
            .int64("id", (100..110).collect())
            .utf8("word", (0..10).map(|i| format!("w{i}")).collect())
            .build()
            .unwrap();
        let merged = TableStats::analyze(&base).merged_append(&TableStats::analyze(&delta));
        assert_eq!(merged.row_count, 110);
        assert_eq!(merged.column("id").unwrap().distinct_count, 110);
        assert_eq!(
            merged.column("id").unwrap().max,
            Some(ScalarValue::Int64(109))
        );

        let shrunk = merged.scaled(55);
        assert_eq!(shrunk.row_count, 55);
        assert_eq!(shrunk.column("id").unwrap().row_count, 55);
        assert!(shrunk.column("id").unwrap().distinct_count <= 55);
    }

    #[test]
    fn table_stats_analyze() {
        let t = TableBuilder::new()
            .int64("id", (0..50).collect())
            .utf8("word", (0..50).map(|i| format!("w{}", i % 5)).collect())
            .build()
            .unwrap();
        let stats = TableStats::analyze(&t);
        assert_eq!(stats.row_count, 50);
        assert_eq!(stats.column("id").unwrap().distinct_count, 50);
        assert_eq!(stats.column("word").unwrap().distinct_count, 5);
        assert!(stats.column("missing").is_none());
        assert_eq!(stats.column_names().len(), 2);
        // Table::analyze is the convenience entry point
        assert_eq!(t.analyze(), stats);
    }
}
