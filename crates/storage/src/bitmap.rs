//! Selection bitmaps (selection vectors).
//!
//! Relational pre-filtering is central to the paper's scan-vs-probe study
//! (Section VI-E): the date predicate produces a selection over each input
//! relation, and the join only considers selected tuples.  A
//! [`SelectionBitmap`] represents such a selection and supports the boolean
//! algebra needed to combine multiple predicates.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::Result;

/// A per-row boolean selection over a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionBitmap {
    bits: Vec<bool>,
}

impl SelectionBitmap {
    /// A bitmap selecting every row of an `len`-row relation.
    pub fn all(len: usize) -> Self {
        Self {
            bits: vec![true; len],
        }
    }

    /// A bitmap selecting no rows.
    pub fn none(len: usize) -> Self {
        Self {
            bits: vec![false; len],
        }
    }

    /// Builds a bitmap from raw booleans.
    pub fn from_bools(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Builds a bitmap of length `len` selecting exactly the given indices.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut bits = vec![false; len];
        for &i in indices {
            if i < len {
                bits[i] = true;
            }
        }
        Self { bits }
    }

    /// Number of rows covered (selected or not).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether row `i` is selected (out-of-range rows are not selected).
    pub fn is_selected(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Marks row `i` as selected or not.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for out-of-range rows.
    pub fn set(&mut self, i: usize, selected: bool) -> Result<()> {
        if i >= self.bits.len() {
            return Err(StorageError::RowOutOfBounds {
                row: i,
                rows: self.bits.len(),
            });
        }
        self.bits[i] = selected;
        Ok(())
    }

    /// Number of selected rows.
    pub fn count_selected(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of rows selected (`0.0` for an empty bitmap).
    pub fn selectivity(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.count_selected() as f64 / self.bits.len() as f64
        }
    }

    /// Indices of the selected rows, ascending.
    pub fn selected_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterates over the selected row indices without allocating.
    pub fn iter_selected(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
    }

    /// Logical AND with another bitmap of the same length.
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when lengths differ.
    pub fn and(&self, other: &SelectionBitmap) -> Result<SelectionBitmap> {
        if self.len() != other.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(SelectionBitmap {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| *a && *b)
                .collect(),
        })
    }

    /// Logical OR with another bitmap of the same length.
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when lengths differ.
    pub fn or(&self, other: &SelectionBitmap) -> Result<SelectionBitmap> {
        if self.len() != other.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(SelectionBitmap {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| *a || *b)
                .collect(),
        })
    }

    /// Logical NOT.
    pub fn not(&self) -> SelectionBitmap {
        SelectionBitmap {
            bits: self.bits.iter().map(|b| !b).collect(),
        }
    }

    /// Borrow the raw booleans.
    pub fn as_bools(&self) -> &[bool] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        assert_eq!(SelectionBitmap::all(3).count_selected(), 3);
        assert_eq!(SelectionBitmap::none(3).count_selected(), 0);
        assert!(SelectionBitmap::all(0).is_empty());
    }

    #[test]
    fn from_indices_selects_only_those() {
        let b = SelectionBitmap::from_indices(5, &[1, 3, 99]);
        assert!(b.is_selected(1));
        assert!(b.is_selected(3));
        assert!(!b.is_selected(0));
        assert!(!b.is_selected(99));
        assert_eq!(b.count_selected(), 2);
        assert_eq!(b.selected_indices(), vec![1, 3]);
    }

    #[test]
    fn set_and_bounds() {
        let mut b = SelectionBitmap::none(2);
        b.set(1, true).unwrap();
        assert!(b.is_selected(1));
        assert!(b.set(5, true).is_err());
    }

    #[test]
    fn selectivity_fraction() {
        let b = SelectionBitmap::from_bools(vec![true, false, true, false]);
        assert!((b.selectivity() - 0.5).abs() < 1e-12);
        assert_eq!(SelectionBitmap::all(0).selectivity(), 0.0);
    }

    #[test]
    fn boolean_algebra() {
        let a = SelectionBitmap::from_bools(vec![true, true, false, false]);
        let b = SelectionBitmap::from_bools(vec![true, false, true, false]);
        assert_eq!(a.and(&b).unwrap().as_bools(), &[true, false, false, false]);
        assert_eq!(a.or(&b).unwrap().as_bools(), &[true, true, true, false]);
        assert_eq!(a.not().as_bools(), &[false, false, true, true]);
    }

    #[test]
    fn length_mismatch_errors() {
        let a = SelectionBitmap::all(2);
        let b = SelectionBitmap::all(3);
        assert!(a.and(&b).is_err());
        assert!(a.or(&b).is_err());
    }

    #[test]
    fn iter_selected_matches_selected_indices() {
        let b = SelectionBitmap::from_bools(vec![false, true, true, false, true]);
        let via_iter: Vec<usize> = b.iter_selected().collect();
        assert_eq!(via_iter, b.selected_indices());
    }
}
