//! Tables: schemas plus equal-length columns.

use serde::{Deserialize, Serialize};

use crate::bitmap::SelectionBitmap;
use crate::column::Column;
use crate::error::StorageError;
use crate::scalar::ScalarValue;
use crate::schema::Schema;
use crate::Result;

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table from a schema and matching columns.
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when column counts or row
    /// counts disagree, and [`StorageError::TypeMismatch`] when a column's
    /// type differs from its schema field.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(StorageError::LengthMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (field, column) in schema.fields().iter().zip(columns.iter()) {
            if column.len() != rows {
                return Err(StorageError::LengthMismatch {
                    expected: rows,
                    actual: column.len(),
                });
            }
            if column.data_type() != field.data_type {
                return Err(StorageError::TypeMismatch {
                    expected: field.data_type.to_string(),
                    actual: column.data_type().to_string(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
        })
    }

    /// An empty table with an empty schema.
    pub fn empty() -> Self {
        Self {
            schema: Schema::empty(),
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at schema position `i`.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] when `i` exceeds the column
    /// count (reusing the bounds error with column semantics).
    pub fn column(&self, i: usize) -> Result<&Column> {
        self.columns.get(i).ok_or(StorageError::RowOutOfBounds {
            row: i,
            rows: self.columns.len(),
        })
    }

    /// The column with the given name.
    ///
    /// # Errors
    /// Returns [`StorageError::ColumnNotFound`] when absent.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// The value at (`row`, `column name`).
    ///
    /// # Errors
    /// Propagates column lookup and row bound errors.
    pub fn value(&self, row: usize, column: &str) -> Result<ScalarValue> {
        self.column_by_name(column)?.get(row)
    }

    /// Returns a new table containing only the selected rows.
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when the bitmap length does
    /// not match the row count.
    pub fn filter(&self, selection: &SelectionBitmap) -> Result<Table> {
        if selection.len() != self.rows {
            return Err(StorageError::LengthMismatch {
                expected: self.rows,
                actual: selection.len(),
            });
        }
        let columns: Result<Vec<Column>> =
            self.columns.iter().map(|c| c.filter(selection)).collect();
        Table::new(self.schema.clone(), columns?)
    }

    /// Returns a new table with the rows at `indices` (repeats allowed).
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for out-of-range indices.
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::new(self.schema.clone(), columns?)
    }

    /// Returns a new table restricted to the named columns, in order.
    ///
    /// # Errors
    /// Returns [`StorageError::ColumnNotFound`] for unknown columns.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for name in names {
            columns.push(self.column_by_name(name)?.clone());
        }
        Table::new(schema, columns)
    }

    /// Returns a new table with the rows named by a `u32` selection vector
    /// (repeats allowed) — the lane-compaction twin of [`Table::take`] used
    /// by the vectorised executor when a batch is materialised.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for out-of-range lanes.
    pub fn gather(&self, sel: &[u32]) -> Result<Table> {
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.gather(sel)).collect();
        let columns = columns?;
        let rows = sel.len();
        if columns.is_empty() {
            // keep the schema even for zero-column tables
            return Table::new(self.schema.clone(), columns);
        }
        Ok(Self {
            schema: self.schema.clone(),
            columns,
            rows,
        })
    }

    /// Vertically concatenates tables that share a schema.
    ///
    /// This reassembles the per-batch outputs of the vectorised executor into
    /// one materialised result table.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidArgument`] for an empty input and
    /// [`StorageError::TypeMismatch`] when schemas disagree; column-level
    /// incompatibilities propagate from [`Column::concat`].
    pub fn concat(parts: &[&Table]) -> Result<Table> {
        let first = parts
            .first()
            .ok_or_else(|| StorageError::InvalidArgument("concat of zero tables".into()))?;
        if parts.len() == 1 {
            return Ok((*first).clone());
        }
        for part in &parts[1..] {
            if part.schema != first.schema {
                return Err(StorageError::TypeMismatch {
                    expected: format!("{:?}", first.schema),
                    actual: format!("{:?}", part.schema),
                });
            }
        }
        let mut columns = Vec::with_capacity(first.num_columns());
        for i in 0..first.num_columns() {
            let slices: Vec<&Column> = parts.iter().map(|p| &p.columns[i]).collect();
            columns.push(Column::concat(&slices)?);
        }
        let rows = parts.iter().map(|p| p.rows).sum();
        Ok(Self {
            schema: first.schema.clone(),
            columns,
            rows,
        })
    }

    /// Runs the `ANALYZE` pass: per-column row/null counts, distinct counts,
    /// min/max, equi-depth histograms, and average string lengths (see
    /// [`crate::stats`]).  The result is a point-in-time snapshot — callers
    /// that keep tables mutable-by-replacement (the catalog) recompute it on
    /// re-registration.
    pub fn analyze(&self) -> crate::stats::TableStats {
        crate::stats::TableStats::analyze(self)
    }

    /// Returns a new table with an extra column appended.
    ///
    /// This is how the embedding operator `E_µ` materialises its output: the
    /// embedded column is appended alongside the original relational columns,
    /// never replacing them (the original data stays addressable for decode /
    /// post-verification).
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when the new column's length
    /// differs from the row count, or [`StorageError::InvalidArgument`] for a
    /// duplicate name.
    pub fn with_column(&self, name: &str, column: Column) -> Result<Table> {
        if column.len() != self.rows {
            return Err(StorageError::LengthMismatch {
                expected: self.rows,
                actual: column.len(),
            });
        }
        let mut fields = self.schema.fields().to_vec();
        fields.push(crate::schema::Field::new(name, column.data_type()));
        let schema = Schema::new(fields)?;
        let mut columns = self.columns.clone();
        columns.push(column);
        Table::new(schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Field;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("word", DataType::Utf8),
            Field::new("taken", DataType::Date),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::Int64(vec![1, 2, 3]),
                Column::Utf8(vec!["bbq".into(), "grill".into(), "dbms".into()]),
                Column::Date(vec![100, 200, 300]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_shapes_and_types() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]).unwrap();
        assert!(Table::new(schema.clone(), vec![]).is_err());
        assert!(Table::new(schema.clone(), vec![Column::Utf8(vec!["x".into()])]).is_err());
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        assert!(Table::new(
            schema2,
            vec![Column::Int64(vec![1, 2]), Column::Int64(vec![1])]
        )
        .is_err());
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.schema().len(), 3);
        assert_eq!(t.column(1).unwrap().data_type(), DataType::Utf8);
        assert!(t.column(9).is_err());
        assert_eq!(t.value(0, "word").unwrap(), ScalarValue::Utf8("bbq".into()));
        assert!(t.column_by_name("missing").is_err());
    }

    #[test]
    fn filter_preserves_schema() {
        let t = sample();
        let sel = SelectionBitmap::from_bools(vec![true, false, true]);
        let f = t.filter(&sel).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.schema(), t.schema());
        assert_eq!(
            f.value(1, "word").unwrap(),
            ScalarValue::Utf8("dbms".into())
        );
        assert!(t.filter(&SelectionBitmap::all(5)).is_err());
    }

    #[test]
    fn take_materialises_join_output_order() {
        let t = sample();
        let out = t.take(&[2, 2, 0]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "id").unwrap(), ScalarValue::Int64(3));
        assert_eq!(out.value(2, "id").unwrap(), ScalarValue::Int64(1));
    }

    #[test]
    fn project_subsets_columns() {
        let t = sample();
        let p = t.project(&["word"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.num_rows(), 3);
        assert!(t.project(&["nope"]).is_err());
    }

    #[test]
    fn with_column_appends() {
        let t = sample();
        let t2 = t
            .with_column("flag", Column::Bool(vec![true, false, true]))
            .unwrap();
        assert_eq!(t2.num_columns(), 4);
        assert_eq!(t2.value(2, "flag").unwrap(), ScalarValue::Bool(true));
        // wrong length rejected
        assert!(t.with_column("bad", Column::Bool(vec![true])).is_err());
        // duplicate name rejected
        assert!(t
            .with_column("id", Column::Bool(vec![true, false, true]))
            .is_err());
    }

    #[test]
    fn gather_compacts_lanes() {
        let t = sample();
        let g = t.gather(&[2, 0]).unwrap();
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.schema(), t.schema());
        assert_eq!(g.value(0, "id").unwrap(), ScalarValue::Int64(3));
        assert_eq!(g.value(1, "word").unwrap(), ScalarValue::Utf8("bbq".into()));
        assert_eq!(t.gather(&[]).unwrap().num_rows(), 0);
        assert!(t.gather(&[3]).is_err());
    }

    #[test]
    fn concat_stacks_batches() {
        let t = sample();
        let a = t.gather(&[0]).unwrap();
        let b = t.gather(&[]).unwrap();
        let c = t.gather(&[1, 2]).unwrap();
        let whole = Table::concat(&[&a, &b, &c]).unwrap();
        assert_eq!(whole, t);
        assert!(Table::concat(&[]).is_err());
        let other = t.project(&["id"]).unwrap();
        assert!(Table::concat(&[&t, &other]).is_err());
        // single part is a plain clone
        assert_eq!(Table::concat(&[&t]).unwrap(), t);
    }

    #[test]
    fn empty_table() {
        let t = Table::empty();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }
}
