//! Scalar (single-row) values.

use std::cmp::Ordering;
use std::fmt;

use cej_vector::Vector;
use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::error::StorageError;
use crate::Result;

/// A single value of any supported [`DataType`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarValue {
    /// 64-bit integer value.
    Int64(i64),
    /// 64-bit float value.
    Float64(f64),
    /// String value.
    Utf8(String),
    /// Date value as days since the Unix epoch.
    Date(i32),
    /// Boolean value.
    Bool(bool),
    /// Embedding value.
    Vector(Vector),
}

impl ScalarValue {
    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarValue::Int64(_) => DataType::Int64,
            ScalarValue::Float64(_) => DataType::Float64,
            ScalarValue::Utf8(_) => DataType::Utf8,
            ScalarValue::Date(_) => DataType::Date,
            ScalarValue::Bool(_) => DataType::Bool,
            ScalarValue::Vector(v) => DataType::Vector(v.dim()),
        }
    }

    /// Compares two values of the same orderable type.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for cross-type comparisons or
    /// non-orderable types (vectors).
    pub fn partial_cmp_same_type(&self, other: &ScalarValue) -> Result<Ordering> {
        let mismatch = || StorageError::TypeMismatch {
            expected: self.data_type().to_string(),
            actual: other.data_type().to_string(),
        };
        match (self, other) {
            (ScalarValue::Int64(a), ScalarValue::Int64(b)) => Ok(a.cmp(b)),
            (ScalarValue::Float64(a), ScalarValue::Float64(b)) => {
                Ok(a.partial_cmp(b).unwrap_or(Ordering::Equal))
            }
            (ScalarValue::Utf8(a), ScalarValue::Utf8(b)) => Ok(a.cmp(b)),
            (ScalarValue::Date(a), ScalarValue::Date(b)) => Ok(a.cmp(b)),
            (ScalarValue::Bool(a), ScalarValue::Bool(b)) => Ok(a.cmp(b)),
            _ => Err(mismatch()),
        }
    }

    /// Extracts a string reference, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ScalarValue::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts an `i64`, if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ScalarValue::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f64`, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::Float64(v) => Some(*v),
            ScalarValue::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts the embedding, if this is a vector value.
    pub fn as_vector(&self) -> Option<&Vector> {
        match self {
            ScalarValue::Vector(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Int64(v) => write!(f, "{v}"),
            ScalarValue::Float64(v) => write!(f, "{v}"),
            ScalarValue::Utf8(v) => write!(f, "{v}"),
            ScalarValue::Date(v) => write!(f, "{}", date::format_days(*v)),
            ScalarValue::Bool(v) => write!(f, "{v}"),
            ScalarValue::Vector(v) => write!(f, "<vector dim={}>", v.dim()),
        }
    }
}

/// Minimal proleptic-Gregorian date helpers (days since 1970-01-01).
///
/// A full calendar implementation is unnecessary for the experiments: the
/// paper only uses date columns as a selectivity knob.  These helpers are
/// exact for the years they are used with (1970-2262) and are tested against
/// known anchors.
pub mod date {
    use super::*;

    /// Days in each month of a non-leap year.
    const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

    fn is_leap(year: i64) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    fn days_in_year(year: i64) -> i64 {
        if is_leap(year) {
            366
        } else {
            365
        }
    }

    /// Converts a calendar date to days since 1970-01-01.
    ///
    /// # Errors
    /// Returns [`StorageError::Parse`] for out-of-range months or days.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Result<i32> {
        if !(1..=12).contains(&month) {
            return Err(StorageError::Parse(format!("month {month} out of range")));
        }
        let mut dim = DAYS_IN_MONTH[(month - 1) as usize];
        if month == 2 && is_leap(year) {
            dim += 1;
        }
        if day == 0 || day as i64 > dim {
            return Err(StorageError::Parse(format!(
                "day {day} out of range for month {month}"
            )));
        }
        let mut days: i64 = 0;
        if year >= 1970 {
            for y in 1970..year {
                days += days_in_year(y);
            }
        } else {
            for y in year..1970 {
                days -= days_in_year(y);
            }
        }
        for m in 1..month {
            days += DAYS_IN_MONTH[(m - 1) as usize];
            if m == 2 && is_leap(year) {
                days += 1;
            }
        }
        days += day as i64 - 1;
        Ok(days as i32)
    }

    /// Parses an ISO `YYYY-MM-DD` literal into days since the epoch.
    ///
    /// # Errors
    /// Returns [`StorageError::Parse`] for malformed literals.
    pub fn parse_iso(s: &str) -> Result<i32> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(StorageError::Parse(format!("malformed date literal: {s}")));
        }
        let year: i64 = parts[0]
            .parse()
            .map_err(|_| StorageError::Parse(format!("bad year in {s}")))?;
        let month: u32 = parts[1]
            .parse()
            .map_err(|_| StorageError::Parse(format!("bad month in {s}")))?;
        let day: u32 = parts[2]
            .parse()
            .map_err(|_| StorageError::Parse(format!("bad day in {s}")))?;
        from_ymd(year, month, day)
    }

    /// Formats days since the epoch back into `YYYY-MM-DD`.
    pub fn format_days(days: i32) -> String {
        let mut remaining = days as i64;
        let mut year = 1970i64;
        loop {
            let dy = days_in_year(year);
            if remaining >= dy {
                remaining -= dy;
                year += 1;
            } else if remaining < 0 {
                year -= 1;
                remaining += days_in_year(year);
            } else {
                break;
            }
        }
        let mut month = 1u32;
        loop {
            let mut dim = DAYS_IN_MONTH[(month - 1) as usize];
            if month == 2 && is_leap(year) {
                dim += 1;
            }
            if remaining >= dim {
                remaining -= dim;
                month += 1;
            } else {
                break;
            }
        }
        format!("{year:04}-{month:02}-{:02}", remaining + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(ScalarValue::Int64(1).data_type(), DataType::Int64);
        assert_eq!(
            ScalarValue::Vector(Vector::zeros(7)).data_type(),
            DataType::Vector(7)
        );
    }

    #[test]
    fn same_type_comparisons() {
        assert_eq!(
            ScalarValue::Int64(1)
                .partial_cmp_same_type(&ScalarValue::Int64(2))
                .unwrap(),
            Ordering::Less
        );
        assert_eq!(
            ScalarValue::Utf8("b".into())
                .partial_cmp_same_type(&ScalarValue::Utf8("a".into()))
                .unwrap(),
            Ordering::Greater
        );
        assert_eq!(
            ScalarValue::Date(10)
                .partial_cmp_same_type(&ScalarValue::Date(10))
                .unwrap(),
            Ordering::Equal
        );
    }

    #[test]
    fn cross_type_comparison_errors() {
        assert!(ScalarValue::Int64(1)
            .partial_cmp_same_type(&ScalarValue::Utf8("1".into()))
            .is_err());
        assert!(ScalarValue::Vector(Vector::zeros(2))
            .partial_cmp_same_type(&ScalarValue::Vector(Vector::zeros(2)))
            .is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(ScalarValue::Utf8("x".into()).as_str(), Some("x"));
        assert_eq!(ScalarValue::Int64(5).as_i64(), Some(5));
        assert_eq!(ScalarValue::Int64(5).as_f64(), Some(5.0));
        assert_eq!(ScalarValue::Float64(2.5).as_f64(), Some(2.5));
        assert!(ScalarValue::Bool(true).as_f64().is_none());
        assert!(ScalarValue::Vector(Vector::zeros(3)).as_vector().is_some());
        assert!(ScalarValue::Int64(1).as_vector().is_none());
    }

    #[test]
    fn display_values() {
        assert_eq!(ScalarValue::Int64(3).to_string(), "3");
        assert_eq!(
            ScalarValue::Vector(Vector::zeros(4)).to_string(),
            "<vector dim=4>"
        );
        assert_eq!(ScalarValue::Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn date_epoch_anchor() {
        assert_eq!(date::from_ymd(1970, 1, 1).unwrap(), 0);
        assert_eq!(date::from_ymd(1970, 1, 2).unwrap(), 1);
        assert_eq!(date::from_ymd(1971, 1, 1).unwrap(), 365);
    }

    #[test]
    fn date_known_values() {
        // 2000-01-01 is 10957 days after the epoch (known constant)
        assert_eq!(date::from_ymd(2000, 1, 1).unwrap(), 10957);
        // 2023-12-05 (a date from the paper's running example era)
        assert_eq!(
            date::format_days(date::from_ymd(2023, 12, 5).unwrap()),
            "2023-12-05"
        );
    }

    #[test]
    fn date_leap_year_handling() {
        assert_eq!(
            date::from_ymd(2024, 3, 1).unwrap() - date::from_ymd(2024, 2, 28).unwrap(),
            2
        );
        assert!(date::from_ymd(2023, 2, 29).is_err());
        assert!(date::from_ymd(2024, 2, 29).is_ok());
    }

    #[test]
    fn date_parse_and_format_roundtrip() {
        for iso in ["1970-01-01", "1999-12-31", "2024-02-29", "2031-07-15"] {
            let days = date::parse_iso(iso).unwrap();
            assert_eq!(date::format_days(days), iso);
        }
    }

    #[test]
    fn date_parse_rejects_malformed() {
        assert!(date::parse_iso("2024/01/01").is_err());
        assert!(date::parse_iso("2024-13-01").is_err());
        assert!(date::parse_iso("2024-01-32").is_err());
        assert!(date::parse_iso("not-a-date").is_err());
        assert!(date::parse_iso("2024-01").is_err());
    }

    #[test]
    fn date_before_epoch() {
        let days = date::from_ymd(1969, 12, 31).unwrap();
        assert_eq!(days, -1);
        assert_eq!(date::format_days(-1), "1969-12-31");
    }
}
