//! Schemas: named, typed fields.

use serde::{Deserialize, Serialize};

use crate::datatype::DataType;
use crate::error::StorageError;
use crate::Result;

/// A single named, typed column description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidArgument`] for duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|other| other.name == f.name) {
                return Err(StorageError::InvalidArgument(format!(
                    "duplicate column name: {}",
                    f.name
                )));
            }
        }
        Ok(Self { fields })
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Self { fields: Vec::new() }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    ///
    /// # Errors
    /// Returns [`StorageError::ColumnNotFound`] when absent.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// The field with the given name.
    ///
    /// # Errors
    /// Returns [`StorageError::ColumnNotFound`] when absent.
    pub fn field(&self, name: &str) -> Result<&Field> {
        let idx = self.index_of(name)?;
        Ok(&self.fields[idx])
    }

    /// Returns a new schema restricted to the given columns, in the given
    /// order.
    ///
    /// # Errors
    /// Returns [`StorageError::ColumnNotFound`] if any name is absent.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(self.field(name)?.clone());
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("title", DataType::Utf8),
            Field::new("taken", DataType::Date),
            Field::new("embedding", DataType::Vector(100)),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_field_lookup() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("taken").unwrap(), 2);
        assert_eq!(
            s.field("embedding").unwrap().data_type,
            DataType::Vector(100)
        );
        assert!(matches!(
            s.index_of("missing"),
            Err(StorageError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn project_reorders_and_subsets() {
        let s = schema();
        let p = s.project(&["title", "id"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fields()[0].name, "title");
        assert_eq!(p.fields()[1].name, "id");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn empty_schema() {
        assert!(Schema::empty().is_empty());
        assert_eq!(Schema::default(), Schema::empty());
    }
}
