//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by schema, column, and table operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A column with this name does not exist in the schema.
    ColumnNotFound(String),
    /// The value or column type differs from the schema type.
    TypeMismatch {
        /// What the schema or operation expected.
        expected: String,
        /// What was actually provided.
        actual: String,
    },
    /// Columns of a table (or a bitmap) have inconsistent lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// A value could not be parsed (e.g. a malformed date literal).
    Parse(String),
    /// Any other invalid argument.
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StorageError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            StorageError::RowOutOfBounds { row, rows } => {
                write!(f, "row {row} out of bounds ({rows} rows)")
            }
            StorageError::Parse(msg) => write!(f, "parse error: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(StorageError::ColumnNotFound("x".into())
            .to_string()
            .contains("x"));
        assert!(StorageError::TypeMismatch {
            expected: "Int64".into(),
            actual: "Utf8".into()
        }
        .to_string()
        .contains("Int64"));
        assert!(StorageError::LengthMismatch {
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("3"));
        assert!(StorageError::RowOutOfBounds { row: 9, rows: 2 }
            .to_string()
            .contains("9"));
        assert!(StorageError::Parse("bad date".into())
            .to_string()
            .contains("bad date"));
        assert!(StorageError::InvalidArgument("nope".into())
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<StorageError>();
    }
}
