//! Typed columnar storage.

use cej_vector::{Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::bitmap::SelectionBitmap;
use crate::datatype::DataType;
use crate::error::StorageError;
use crate::scalar::ScalarValue;
use crate::Result;

/// A single typed column of values.
///
/// Embedding columns store their vectors contiguously as a [`Matrix`]
/// (one row per tuple), which is exactly the layout the tensor join consumes —
/// materialising an embedding column therefore costs nothing beyond the
/// embedding itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Utf8(Vec<String>),
    /// Dates as days since the epoch.
    Date(Vec<i32>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dense embeddings, one row per tuple.
    Vector(Matrix),
}

impl Column {
    /// The logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Date(_) => DataType::Date,
            Column::Bool(_) => DataType::Bool,
            Column::Vector(m) => DataType::Vector(m.cols()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Vector(m) => m.rows(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i`.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for out-of-range rows.
    pub fn get(&self, i: usize) -> Result<ScalarValue> {
        if i >= self.len() {
            return Err(StorageError::RowOutOfBounds {
                row: i,
                rows: self.len(),
            });
        }
        Ok(match self {
            Column::Int64(v) => ScalarValue::Int64(v[i]),
            Column::Float64(v) => ScalarValue::Float64(v[i]),
            Column::Utf8(v) => ScalarValue::Utf8(v[i].clone()),
            Column::Date(v) => ScalarValue::Date(v[i]),
            Column::Bool(v) => ScalarValue::Bool(v[i]),
            Column::Vector(m) => {
                ScalarValue::Vector(m.row_vector(i).expect("row bound already checked"))
            }
        })
    }

    /// Returns a new column containing only the selected rows (in order).
    ///
    /// # Errors
    /// Returns [`StorageError::LengthMismatch`] when the bitmap length does
    /// not match the column length.
    pub fn filter(&self, selection: &SelectionBitmap) -> Result<Column> {
        if selection.len() != self.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.len(),
                actual: selection.len(),
            });
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(selection.iter_selected().map(|i| v[i]).collect()),
            Column::Float64(v) => {
                Column::Float64(selection.iter_selected().map(|i| v[i]).collect())
            }
            Column::Utf8(v) => {
                Column::Utf8(selection.iter_selected().map(|i| v[i].clone()).collect())
            }
            Column::Date(v) => Column::Date(selection.iter_selected().map(|i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(selection.iter_selected().map(|i| v[i]).collect()),
            Column::Vector(m) => {
                let mut out = Matrix::zeros(0, m.cols());
                for i in selection.iter_selected() {
                    out.push_row(m.row(i).expect("selected row in range"))
                        .expect("row widths agree");
                }
                Column::Vector(out)
            }
        })
    }

    /// Returns a new column containing the rows at `indices` (with repeats
    /// allowed) — the classic `take` kernel used to materialise join results.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for any out-of-range index.
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        for &i in indices {
            if i >= self.len() {
                return Err(StorageError::RowOutOfBounds {
                    row: i,
                    rows: self.len(),
                });
            }
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i]).collect()),
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i]).collect()),
            Column::Utf8(v) => Column::Utf8(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Date(v) => Column::Date(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Vector(m) => {
                let mut out = Matrix::zeros(0, m.cols());
                for &i in indices {
                    out.push_row(m.row(i).expect("index already validated"))
                        .expect("row widths agree");
                }
                Column::Vector(out)
            }
        })
    }

    /// Returns a new column containing the rows named by a selection vector
    /// (repeats allowed) — the `u32`-lane variant of [`Column::take`] used
    /// by the vectorised executor to compact a batch's survivors.
    ///
    /// # Errors
    /// Returns [`StorageError::RowOutOfBounds`] for any out-of-range lane.
    pub fn gather(&self, sel: &[u32]) -> Result<Column> {
        for &lane in sel {
            if lane as usize >= self.len() {
                return Err(StorageError::RowOutOfBounds {
                    row: lane as usize,
                    rows: self.len(),
                });
            }
        }
        Ok(match self {
            Column::Int64(v) => Column::Int64(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float64(v) => Column::Float64(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Utf8(v) => Column::Utf8(sel.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Date(v) => Column::Date(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Bool(v) => Column::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Vector(m) => {
                Column::Vector(m.gather_rows(sel).expect("lanes already validated"))
            }
        })
    }

    /// Vertically concatenates columns of the same type into one column.
    ///
    /// Used by the vectorised executor to reassemble per-batch outputs into
    /// a materialised table.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidArgument`] for an empty input and
    /// [`StorageError::TypeMismatch`] when the parts disagree on type
    /// (including vector dimensionality, except that empty vector parts
    /// adopt the established dimension).
    pub fn concat(parts: &[&Column]) -> Result<Column> {
        let first = parts
            .first()
            .ok_or_else(|| StorageError::InvalidArgument("concat of zero columns".into()))?;
        for part in &parts[1..] {
            let compatible = match (first, part) {
                // empty vector parts carry a possibly-unknown dimension
                (Column::Vector(a), Column::Vector(b)) => {
                    a.cols() == b.cols() || a.is_empty() || b.is_empty()
                }
                _ => first.data_type() == part.data_type(),
            };
            if !compatible {
                return Err(StorageError::TypeMismatch {
                    expected: first.data_type().to_string(),
                    actual: part.data_type().to_string(),
                });
            }
        }
        Ok(match first {
            Column::Int64(_) => Column::Int64(
                parts
                    .iter()
                    .flat_map(|p| p.as_int64().expect("checked").iter().copied())
                    .collect(),
            ),
            Column::Float64(_) => Column::Float64(
                parts
                    .iter()
                    .flat_map(|p| p.as_float64().expect("checked").iter().copied())
                    .collect(),
            ),
            Column::Utf8(_) => Column::Utf8(
                parts
                    .iter()
                    .flat_map(|p| p.as_utf8().expect("checked").iter().cloned())
                    .collect(),
            ),
            Column::Date(_) => Column::Date(
                parts
                    .iter()
                    .flat_map(|p| p.as_date().expect("checked").iter().copied())
                    .collect(),
            ),
            Column::Bool(_) => {
                let mut out = Vec::new();
                for part in parts {
                    if let Column::Bool(v) = part {
                        out.extend_from_slice(v);
                    }
                }
                Column::Bool(out)
            }
            Column::Vector(first_m) => {
                let cols = parts
                    .iter()
                    .filter_map(|p| match p {
                        Column::Vector(m) if !m.is_empty() => Some(m.cols()),
                        _ => None,
                    })
                    .next()
                    .unwrap_or(first_m.cols());
                let mut rows = 0usize;
                let mut data = Vec::new();
                for part in parts {
                    if let Column::Vector(m) = part {
                        rows += m.rows();
                        data.extend_from_slice(m.as_slice());
                    }
                }
                Column::Vector(
                    Matrix::from_flat(rows, cols, data)
                        .map_err(|e| StorageError::InvalidArgument(e.to_string()))?,
                )
            }
        })
    }

    /// Borrows the strings of a `Utf8` column.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for other column types.
    pub fn as_utf8(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: "Utf8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrows the values of an `Int64` column.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for other column types.
    pub fn as_int64(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: "Int64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrows the values of a `Float64` column.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for other column types.
    pub fn as_float64(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: "Float64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrows the values of a `Date` column.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for other column types.
    pub fn as_date(&self) -> Result<&[i32]> {
        match self {
            Column::Date(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: "Date".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrows the embedding matrix of a `Vector` column.
    ///
    /// # Errors
    /// Returns [`StorageError::TypeMismatch`] for other column types.
    pub fn as_vectors(&self) -> Result<&Matrix> {
        match self {
            Column::Vector(m) => Ok(m),
            other => Err(StorageError::TypeMismatch {
                expected: "Vector".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Builds a vector column from owned vectors.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidArgument`] when rows disagree on
    /// dimensionality or the input is empty (dimension would be unknown).
    pub fn from_vectors(vectors: &[Vector]) -> Result<Column> {
        let m =
            Matrix::from_rows(vectors).map_err(|e| StorageError::InvalidArgument(e.to_string()))?;
        Ok(Column::Vector(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn utf8_col() -> Column {
        Column::Utf8(vec!["a".into(), "b".into(), "c".into()])
    }

    #[test]
    fn data_type_and_len() {
        assert_eq!(utf8_col().data_type(), DataType::Utf8);
        assert_eq!(utf8_col().len(), 3);
        assert!(!utf8_col().is_empty());
        let vcol = Column::Vector(Matrix::zeros(2, 8));
        assert_eq!(vcol.data_type(), DataType::Vector(8));
        assert_eq!(vcol.len(), 2);
    }

    #[test]
    fn get_values_and_bounds() {
        let c = Column::Int64(vec![10, 20]);
        assert_eq!(c.get(1).unwrap(), ScalarValue::Int64(20));
        assert!(c.get(2).is_err());
        let v = Column::Vector(Matrix::from_rows(&[Vector::new(vec![1.0, 2.0])]).unwrap());
        assert_eq!(
            v.get(0).unwrap().as_vector().unwrap().as_slice(),
            &[1.0, 2.0]
        );
    }

    #[test]
    fn filter_selects_rows() {
        let c = utf8_col();
        let sel = SelectionBitmap::from_bools(vec![true, false, true]);
        let f = c.filter(&sel).unwrap();
        assert_eq!(f.as_utf8().unwrap(), &["a".to_string(), "c".to_string()]);
        assert!(c.filter(&SelectionBitmap::all(2)).is_err());
    }

    #[test]
    fn filter_vector_column() {
        let m = Matrix::from_rows(&[
            Vector::new(vec![1.0, 0.0]),
            Vector::new(vec![0.0, 1.0]),
            Vector::new(vec![0.5, 0.5]),
        ])
        .unwrap();
        let c = Column::Vector(m);
        let sel = SelectionBitmap::from_bools(vec![false, true, true]);
        let f = c.filter(&sel).unwrap();
        let fm = f.as_vectors().unwrap();
        assert_eq!(fm.rows(), 2);
        assert_eq!(fm.row(0).unwrap(), &[0.0, 1.0]);
    }

    #[test]
    fn take_with_repeats() {
        let c = Column::Int64(vec![5, 6, 7]);
        let t = c.take(&[2, 0, 2]).unwrap();
        assert_eq!(t.as_int64().unwrap(), &[7, 5, 7]);
        assert!(c.take(&[3]).is_err());
    }

    #[test]
    fn take_on_every_type() {
        let cols = vec![
            Column::Int64(vec![1, 2]),
            Column::Float64(vec![1.0, 2.0]),
            utf8_col(),
            Column::Date(vec![0, 1]),
            Column::Bool(vec![true, false]),
            Column::Vector(Matrix::zeros(2, 3)),
        ];
        for c in cols {
            let t = c.take(&[0]).unwrap();
            assert_eq!(t.len(), 1);
            assert_eq!(t.data_type(), c.data_type());
        }
    }

    #[test]
    fn typed_accessors_enforce_types() {
        assert!(utf8_col().as_utf8().is_ok());
        assert!(utf8_col().as_int64().is_err());
        assert!(Column::Int64(vec![1]).as_int64().is_ok());
        assert!(Column::Float64(vec![1.0]).as_float64().is_ok());
        assert!(Column::Date(vec![1]).as_date().is_ok());
        assert!(Column::Date(vec![1]).as_vectors().is_err());
    }

    #[test]
    fn from_vectors_builds_matrix_column() {
        let c = Column::from_vectors(&[Vector::new(vec![1.0]), Vector::new(vec![2.0])]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.data_type(), DataType::Vector(1));
        assert!(Column::from_vectors(&[]).is_err());
    }
}
