//! # cej-storage
//!
//! Columnar relational storage substrate for the context-enhanced join
//! reproduction.
//!
//! The paper's motivating queries join two tables over a *context-rich*
//! column (strings / image blobs) while also filtering on ordinary relational
//! attributes (dates), so the engine needs a small but real relational
//! substrate:
//!
//! * [`DataType`] / [`ScalarValue`] — the type system, including a
//!   first-class fixed-dimension `Vector` type, mirroring the paper's view of
//!   embeddings as *atomic* values (Section IV).
//! * [`Schema`] / [`Field`] — named, typed columns.
//! * [`Column`] — typed columnar storage (`i64`, `f64`, strings, dates,
//!   booleans, embeddings).
//! * [`Table`] — a bundle of equal-length columns with filter / project /
//!   slice operations.
//! * [`SelectionBitmap`] — selection vectors used to push relational
//!   predicates below the embedding operator (the paper's pre-filtering).
//! * [`BatchView`] — zero-copy column batches (window + selection vector)
//!   exchanged by the vectorised executor (MonetDB/X100 style).
//! * [`builder`] — convenient typed table construction.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod bitmap;
pub mod builder;
pub mod column;
pub mod datatype;
pub mod delta;
pub mod error;
pub mod scalar;
pub mod schema;
pub mod stats;
pub mod table;

pub use batch::{BatchView, DEFAULT_BATCH_ROWS};
pub use bitmap::SelectionBitmap;
pub use builder::TableBuilder;
pub use column::Column;
pub use datatype::DataType;
pub use delta::{AppliedDelta, Delta, TableVersion, MAX_VERSION_CHAIN};
pub use error::StorageError;
pub use scalar::ScalarValue;
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::Table;

/// Result alias for the storage substrate.
pub type Result<T> = std::result::Result<T, StorageError>;
