//! The type system of the relational substrate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Logical data types supported by the storage layer.
///
/// `Vector(d)` is a first-class type: the paper argues embeddings should be
/// treated as *atomic* values by the DBMS (they satisfy 1NF because the
/// engine never decomposes them), so a column of embeddings is just another
/// typed column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string (the paper's context-rich column).
    Utf8,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
    /// Dense `f32` embedding of the given dimensionality.
    Vector(usize),
}

impl DataType {
    /// `true` for types with a total order usable in range predicates.
    pub fn is_orderable(&self) -> bool {
        matches!(
            self,
            DataType::Int64 | DataType::Float64 | DataType::Date | DataType::Utf8
        )
    }

    /// `true` for the numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// `true` when this is an embedding column.
    pub fn is_vector(&self) -> bool {
        matches!(self, DataType::Vector(_))
    }

    /// Embedding dimensionality, when applicable.
    pub fn vector_dim(&self) -> Option<usize> {
        match self {
            DataType::Vector(d) => Some(*d),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int64 => write!(f, "Int64"),
            DataType::Float64 => write!(f, "Float64"),
            DataType::Utf8 => write!(f, "Utf8"),
            DataType::Date => write!(f, "Date"),
            DataType::Bool => write!(f, "Bool"),
            DataType::Vector(d) => write!(f, "Vector({d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int64.to_string(), "Int64");
        assert_eq!(DataType::Vector(100).to_string(), "Vector(100)");
    }

    #[test]
    fn orderable_and_numeric_classification() {
        assert!(DataType::Int64.is_orderable());
        assert!(DataType::Date.is_orderable());
        assert!(DataType::Utf8.is_orderable());
        assert!(!DataType::Vector(4).is_orderable());
        assert!(!DataType::Bool.is_orderable());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn vector_dim_accessor() {
        assert_eq!(DataType::Vector(64).vector_dim(), Some(64));
        assert_eq!(DataType::Int64.vector_dim(), None);
        assert!(DataType::Vector(64).is_vector());
        assert!(!DataType::Date.is_vector());
    }
}
