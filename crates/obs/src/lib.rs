//! # cej-obs
//!
//! The engine's observability substrate: a unified metrics registry and a
//! lock-cheap structured tracer.  Every other runtime crate records *into*
//! this one; nothing in here knows about plans, tables, or sockets, so the
//! dependency arrow only ever points down.
//!
//! ## Metrics ([`metrics`])
//!
//! [`Counter`] / [`Gauge`] / [`Histogram`] are `Arc`-cloneable handles over
//! atomics — register once, increment from anywhere without a lock.  The
//! [`Histogram`] is fixed log-bucketed (16 sub-buckets per octave, ≈4.4%
//! relative bucket width) and mergeable, so percentile summaries cost one
//! array walk and memory stays bounded no matter how many samples arrive.
//! A [`Registry`] names the handles, supports zero-cost *collector*
//! closures over pre-existing stat structs, and renders the whole surface
//! in Prometheus text exposition format ([`Registry::render`]).
//!
//! ## Tracing ([`trace`])
//!
//! [`Trace`] is a per-query span recorder with a process-unique id,
//! monotonic clocks, parent links, and typed attributes.  A disabled trace
//! is a `None` — every recording call branches on the sampled flag and
//! allocates nothing, which is the hard requirement that lets the tracer
//! ride inside the executor hot path.  Finished traces land in a bounded
//! in-process ring ([`trace::trace_by_id`] / [`trace::last_trace`]) and
//! queries slower than `CEJ_SLOW_QUERY_MS` are force-captured into the
//! slow-query log regardless of the `CEJ_TRACE_SAMPLE` sampling policy.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{
    last_trace, set_slow_query_ms, set_trace_sample, slow_queries, slow_query_count, slow_query_us,
    trace_by_id, traces_captured, AttrValue, FinishedTrace, SlowQuery, SpanGuard, SpanId,
    SpanRecord, Trace,
};
