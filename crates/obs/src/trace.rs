//! Per-query structured tracing: spans with monotonic clocks, parent
//! links, and typed attributes, recorded into a bounded in-process ring.
//!
//! ## Cost model
//!
//! A [`Trace`] is either *sampled* (it holds an `Arc` of span storage) or
//! *disabled* (`None` inside).  Every recording call first branches on
//! that flag; the disabled path performs **no allocation and no locking**,
//! which is what lets trace calls sit on the query path unconditionally.
//! Sampled recording takes one short mutex per span open/close — queries
//! record a handful of spans, morsel-level work is aggregated into the
//! per-operator metrics the executor already maintains per worker and only
//! converted into spans after the run, so the tracer never contends on the
//! morsel hot path.
//!
//! ## Policy knobs
//!
//! * `CEJ_TRACE_SAMPLE` — sampling rate for [`Trace::start`]: `1` / unset
//!   traces every query, `0` / `off` none, a fraction `r` every
//!   `round(1/r)`-th ([`set_trace_sample`] overrides at runtime).
//! * `CEJ_SLOW_QUERY_MS` — queries at or above this total wall time are
//!   recorded in the slow-query log with their full trace and plan
//!   fingerprint, *even when sampling is off* (the execution layer
//!   force-captures them post-hoc from its always-on operator metrics).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Free text.
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:.2}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Identifies a span within its trace (index into the span table; the root
/// span is always id 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Parent span id (`None` only for the root).
    pub parent: Option<u32>,
    /// Span name (operator, phase, or event).
    pub name: String,
    /// Start offset from the trace origin, microseconds (monotonic clock).
    pub start_us: u64,
    /// Wall duration in microseconds (0 for point events).
    pub dur_us: u64,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct TraceInner {
    id: u64,
    label: String,
    origin: Instant,
    fingerprint: AtomicU64,
    finished: AtomicBool,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A per-query span recorder.  Cheap to clone (an `Arc` — or nothing at
/// all when disabled); see the module docs for the cost model.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

/// RAII guard for an open span: records the duration on drop.
pub struct SpanGuard {
    trace: Trace,
    id: SpanId,
}

impl Trace {
    /// A trace honoring the sampling policy: sampled per
    /// `CEJ_TRACE_SAMPLE`, disabled otherwise.
    pub fn start(label: &str) -> Trace {
        if should_sample() {
            Trace::forced(label)
        } else {
            Trace::disabled()
        }
    }

    /// An always-sampled trace (slow-query capture, tests, `obs_gate`).
    pub fn forced(label: &str) -> Trace {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let inner = TraceInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            label: label.to_string(),
            origin: Instant::now(),
            fingerprint: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            spans: Mutex::new(vec![SpanRecord {
                parent: None,
                name: label.to_string(),
                start_us: 0,
                dur_us: 0,
                attrs: Vec::new(),
            }]),
        };
        Trace {
            inner: Some(Arc::new(inner)),
        }
    }

    /// The no-op trace: every call branches out without allocating.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_sampled(&self) -> bool {
        self.inner.is_some()
    }

    /// The process-unique trace id (None when disabled).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// The root span (always id 0).
    pub fn root(&self) -> SpanId {
        SpanId(0)
    }

    /// Attaches the executed plan's fingerprint (rendered by `TRACE` and
    /// carried into the slow-query log).
    pub fn set_fingerprint(&self, fingerprint: u64) {
        if let Some(inner) = &self.inner {
            inner.fingerprint.store(fingerprint, Ordering::Relaxed);
        }
    }

    /// Opens a child span of the root.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_under(self.root(), name)
    }

    /// Opens a child span of `parent`.
    pub fn span_under(&self, parent: SpanId, name: &str) -> SpanGuard {
        let id = match &self.inner {
            None => SpanId(0),
            Some(inner) => {
                let start_us = inner.origin.elapsed().as_micros() as u64;
                let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
                let id = SpanId(spans.len() as u32);
                spans.push(SpanRecord {
                    parent: Some(parent.0),
                    name: name.to_string(),
                    start_us,
                    dur_us: 0,
                    attrs: Vec::new(),
                });
                id
            }
        };
        SpanGuard {
            trace: self.clone(),
            id,
        }
    }

    /// Records a completed span with an explicit start offset and duration
    /// — how per-operator timings measured by the executor's own metrics
    /// are converted into spans after the run.
    pub fn add_span(
        &self,
        parent: SpanId,
        name: &str,
        start_us: u64,
        dur_us: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId(0);
        };
        let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        let id = SpanId(spans.len() as u32);
        spans.push(SpanRecord {
            parent: Some(parent.0),
            name: name.to_string(),
            start_us,
            dur_us,
            attrs,
        });
        id
    }

    /// Records a zero-duration event span under `parent`.
    pub fn event(&self, parent: SpanId, name: &str, attrs: Vec<(&'static str, AttrValue)>) {
        if self.is_sampled() {
            let start_us = self
                .inner
                .as_ref()
                .map(|i| i.origin.elapsed().as_micros() as u64)
                .unwrap_or(0);
            self.add_span(parent, name, start_us, 0, attrs);
        }
    }

    /// Attaches an attribute to a span.
    pub fn attr_on(&self, span: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = &self.inner {
            let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(record) = spans.get_mut(span.0 as usize) {
                record.attrs.push((key, value.into()));
            }
        }
    }

    /// Attaches an attribute to the root span.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        self.attr_on(self.root(), key, value);
    }

    /// Finalises the trace: closes the root span, publishes the trace into
    /// the bounded ring, and — when the total wall time reaches the
    /// `CEJ_SLOW_QUERY_MS` threshold — records a slow-query log entry.
    /// Returns the trace id, `None` when disabled.  Idempotent.
    pub fn finish(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        if inner.finished.swap(true, Ordering::AcqRel) {
            return Some(inner.id);
        }
        let total_us = inner.origin.elapsed().as_micros() as u64;
        let spans = {
            let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(root) = spans.first_mut() {
                root.dur_us = total_us;
            }
            spans.clone()
        };
        let finished = Arc::new(FinishedTrace {
            id: inner.id,
            label: inner.label.clone(),
            fingerprint: inner.fingerprint.load(Ordering::Relaxed),
            total_us,
            spans,
        });
        publish(finished);
        Some(inner.id)
    }
}

impl SpanGuard {
    /// The recorded span's id (parent for nested spans).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches an attribute to this span.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        self.trace.attr_on(self.id, key, value);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.trace.inner {
            let elapsed = inner.origin.elapsed().as_micros() as u64;
            let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(record) = spans.get_mut(self.id.0 as usize) {
                record.dur_us = elapsed.saturating_sub(record.start_us);
            }
        }
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Trace(disabled)"),
            Some(inner) => f
                .debug_struct("Trace")
                .field("id", &inner.id)
                .field("label", &inner.label)
                .finish(),
        }
    }
}

/// A completed, immutable trace as stored in the ring.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Process-unique trace id.
    pub id: u64,
    /// The root label (verb and statement, or `query`).
    pub label: String,
    /// Physical-plan fingerprint (0 when not set).
    pub fingerprint: u64,
    /// Total wall time of the traced request, microseconds.
    pub total_us: u64,
    /// All recorded spans; index 0 is the root.
    pub spans: Vec<SpanRecord>,
}

impl FinishedTrace {
    /// Renders the span tree: one header line, then one line per span,
    /// indented by depth, with wall times and attributes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} label=\"{}\" total_us={} spans={} fingerprint={:016x}",
            self.id,
            self.label,
            self.total_us,
            self.spans.len(),
            self.fingerprint,
        );
        // children in recording order, grouped under their parents
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        for (idx, span) in self.spans.iter().enumerate() {
            if let Some(parent) = span.parent {
                if (parent as usize) < self.spans.len() && parent as usize != idx {
                    children[parent as usize].push(idx);
                }
            }
        }
        let mut stack = vec![(0usize, 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            let span = &self.spans[idx];
            let mut attrs = String::new();
            for (key, value) in &span.attrs {
                let _ = write!(attrs, " {key}={value}");
            }
            let _ = writeln!(
                out,
                "{}{} {}us{}",
                "  ".repeat(depth),
                span.name,
                span.dur_us,
                attrs
            );
            for child in children[idx].iter().rev() {
                stack.push((*child, depth + 1));
            }
        }
        out
    }
}

/// Bounded ring of recently finished traces.
const TRACE_RING_CAPACITY: usize = 128;
/// Bounded slow-query log depth.
const SLOW_LOG_CAPACITY: usize = 64;

/// One slow-query log entry.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The captured trace's id (look it up with [`trace_by_id`]).
    pub trace_id: u64,
    /// The trace label (verb and statement).
    pub label: String,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Physical-plan fingerprint (0 when unknown).
    pub fingerprint: u64,
}

struct Store {
    ring: Mutex<VecDeque<Arc<FinishedTrace>>>,
    slow: Mutex<VecDeque<SlowQuery>>,
    captured: AtomicU64,
    slow_count: AtomicU64,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        ring: Mutex::new(VecDeque::new()),
        slow: Mutex::new(VecDeque::new()),
        captured: AtomicU64::new(0),
        slow_count: AtomicU64::new(0),
    })
}

fn publish(trace: Arc<FinishedTrace>) {
    let s = store();
    s.captured.fetch_add(1, Ordering::Relaxed);
    if let Some(limit) = slow_query_us() {
        if trace.total_us >= limit {
            s.slow_count.fetch_add(1, Ordering::Relaxed);
            let mut slow = s.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() >= SLOW_LOG_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(SlowQuery {
                trace_id: trace.id,
                label: trace.label.clone(),
                total_us: trace.total_us,
                fingerprint: trace.fingerprint,
            });
        }
    }
    let mut ring = s.ring.lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() >= TRACE_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(trace);
}

/// Looks a finished trace up by id (while it is still in the ring).
pub fn trace_by_id(id: u64) -> Option<Arc<FinishedTrace>> {
    let ring = store().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.iter().rev().find(|t| t.id == id).cloned()
}

/// The most recently finished trace, if any.
pub fn last_trace() -> Option<Arc<FinishedTrace>> {
    let ring = store().ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.back().cloned()
}

/// Total traces captured into the ring since process start.
pub fn traces_captured() -> u64 {
    store().captured.load(Ordering::Relaxed)
}

/// Total slow-query log entries recorded since process start.
pub fn slow_query_count() -> u64 {
    store().slow_count.load(Ordering::Relaxed)
}

/// The slow-query log, oldest first (bounded window).
pub fn slow_queries() -> Vec<SlowQuery> {
    store()
        .slow
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Sampling cadence: 0 = never, 1 = every query, N = every N-th.
fn sample_every_cell() -> &'static AtomicU64 {
    static CELL: OnceLock<AtomicU64> = OnceLock::new();
    CELL.get_or_init(|| {
        let every = match std::env::var("CEJ_TRACE_SAMPLE") {
            Err(_) => 1,
            Ok(raw) => parse_sample(&raw),
        };
        AtomicU64::new(every)
    })
}

fn parse_sample(raw: &str) -> u64 {
    match raw.trim() {
        "off" | "never" | "0" | "0.0" => 0,
        "on" | "always" => 1,
        other => match other.parse::<f64>() {
            Ok(rate) if rate <= 0.0 => 0,
            Ok(rate) if rate >= 1.0 => 1,
            Ok(rate) => (1.0 / rate).round() as u64,
            Err(_) => 1,
        },
    }
}

/// Overrides the `CEJ_TRACE_SAMPLE` policy at runtime: a rate in `[0, 1]`
/// (0 disables sampling, 1 traces every query).
pub fn set_trace_sample(rate: f64) {
    let every = if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1
    } else {
        (1.0 / rate).round() as u64
    };
    sample_every_cell().store(every, Ordering::Relaxed);
}

fn should_sample() -> bool {
    match sample_every_cell().load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        every => {
            static TICKS: AtomicU64 = AtomicU64::new(0);
            TICKS.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
        }
    }
}

/// Slow-query threshold in microseconds (`u64::MAX` sentinel = disabled).
fn slow_us_cell() -> &'static AtomicU64 {
    static CELL: OnceLock<AtomicU64> = OnceLock::new();
    CELL.get_or_init(|| {
        let us = std::env::var("CEJ_SLOW_QUERY_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .map(|ms| ms.saturating_mul(1_000))
            .unwrap_or(u64::MAX);
        AtomicU64::new(us)
    })
}

/// The active slow-query threshold in microseconds, `None` when disabled.
pub fn slow_query_us() -> Option<u64> {
    match slow_us_cell().load(Ordering::Relaxed) {
        u64::MAX => None,
        us => Some(us),
    }
}

/// Overrides the `CEJ_SLOW_QUERY_MS` threshold at runtime (`None`
/// disables slow-query capture).
pub fn set_slow_query_ms(ms: Option<u64>) {
    let us = ms.map(|m| m.saturating_mul(1_000)).unwrap_or(u64::MAX);
    slow_us_cell().store(us, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_returns_no_id() {
        let trace = Trace::disabled();
        assert!(!trace.is_sampled());
        let guard = trace.span("work");
        guard.attr("rows", 3u64);
        drop(guard);
        trace.attr("k", "v");
        assert_eq!(trace.finish(), None);
        assert_eq!(trace.id(), None);
    }

    #[test]
    fn sampled_trace_builds_a_parented_span_tree() {
        let trace = Trace::forced("unit");
        trace.attr("kind", "test");
        let outer = trace.span("outer");
        let inner = trace.span_under(outer.id(), "inner");
        inner.attr("rows", 42u64);
        drop(inner);
        drop(outer);
        trace.add_span(trace.root(), "synth", 0, 7, vec![("micros", 7u64.into())]);
        let id = trace.finish().expect("sampled traces finish with an id");
        let stored = trace_by_id(id).expect("trace must be in the ring");
        assert_eq!(stored.spans.len(), 4);
        assert_eq!(stored.spans[0].parent, None);
        assert_eq!(stored.spans[2].name, "inner");
        assert_eq!(stored.spans[2].parent, Some(1));
        let rendered = stored.render();
        assert!(rendered.contains("label=\"unit\""), "{rendered}");
        assert!(rendered.contains("    inner"), "{rendered}");
        assert!(rendered.contains("rows=42"), "{rendered}");
        assert!(rendered.contains("synth 7us"), "{rendered}");
        // finish is idempotent
        assert_eq!(trace.finish(), Some(id));
    }

    #[test]
    fn trace_ids_are_unique_and_ring_serves_last() {
        let a = Trace::forced("a").finish().unwrap();
        let b = Trace::forced("b").finish().unwrap();
        assert_ne!(a, b);
        assert!(trace_by_id(b).is_some());
        assert!(traces_captured() >= 2);
    }

    #[test]
    fn sample_parsing_maps_rates_to_cadence() {
        assert_eq!(parse_sample("0"), 0);
        assert_eq!(parse_sample("off"), 0);
        assert_eq!(parse_sample("1"), 1);
        assert_eq!(parse_sample("always"), 1);
        assert_eq!(parse_sample("0.5"), 2);
        assert_eq!(parse_sample("0.01"), 100);
        assert_eq!(parse_sample("garbage"), 1);
    }
}
